"""Benchmark regenerating Figure 8(h): restructuring shift-size distribution."""

from benchmarks.conftest import attach_series
from repro.experiments import fig8h_shift_sizes


def test_fig8h_shift_sizes(benchmark, scale):
    """Shift sizes lean small; long shifts are rare."""
    result = benchmark.pedantic(
        lambda: fig8h_shift_sizes.run(scale),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    counts = [row["count"] for row in result.rows]
    assert sum(counts) >= 0  # histogram may be empty at tiny scales

