"""Benchmark regenerating Figure 8(e): range query cost."""

from benchmarks.conftest import attach_series
from repro.experiments import fig8e_range_query


def test_fig8e_range_query(benchmark, scale):
    """BATON O(log N + X) lowest; Chord ring-walk shows the O(N) cliff."""
    result = benchmark.pedantic(
        lambda: fig8e_range_query.run(scale),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    baton = result.column("messages", where={"system": "baton"})
    chord = result.column("messages", where={"system": "chord_ring_walk"})
    assert all(b < c for b, c in zip(baton, chord))

