"""Benchmark regenerating Figure 8(b): routing-table update cost."""

from benchmarks.conftest import attach_series
from repro.experiments import fig8b_table_updates


def test_fig8b_table_updates(benchmark, scale):
    """BATON updates in O(log N); Chord pays ~log^2 N."""
    result = benchmark.pedantic(
        lambda: fig8b_table_updates.run(scale),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    baton = result.column("join_update", where={"system": "baton"})
    chord = result.column("join_update", where={"system": "chord"})
    assert all(b < c for b, c in zip(baton, chord))

