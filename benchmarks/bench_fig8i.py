"""Benchmark regenerating Figure 8(i): network dynamics (concurrent churn)."""

from benchmarks.conftest import attach_series
from repro.experiments import fig8i_dynamics


def test_fig8i_dynamics(benchmark, scale):
    """Extra messages per query grow with concurrent churn."""
    result = benchmark.pedantic(
        lambda: fig8i_dynamics.run(scale, levels=(2, 8)),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    extras = result.column("extra")
    assert extras[-1] > 0
    assert all(v == 0 for v in result.column("violations"))

