"""Ablation: two-tier load balancing vs adjacent-only (DESIGN.md item 2).

§IV-D argues that balancing only with adjacent nodes lets migrations
"ripple through the network" under skew.  This bench runs the same Zipf(1.0)
stream through both configurations and compares (a) how evenly the load
ends up spread and (b) how much balancing traffic was spent per insert.
"""

import statistics

from repro.core import BatonConfig, BatonNetwork, LoadBalanceConfig
from repro.workloads.generators import ZipfianKeys


def _run_stream(allow_rejoin: bool, n_peers: int, n_inserts: int, seed: int):
    config = BatonConfig(
        balance=LoadBalanceConfig(
            capacity=40, enabled=True, allow_rejoin=allow_rejoin
        )
    )
    net = BatonNetwork.build(n_peers, seed=seed, config=config)
    gen = ZipfianKeys(theta=1.0, seed=seed + 1)
    balance_messages = 0
    for _ in range(n_inserts):
        outcome = net.insert(gen.draw())
        if outcome.balance_trace is not None:
            balance_messages += outcome.balance_trace.total
    sizes = [len(peer.store) for peer in net.peers.values()]
    return {
        "balance_messages": balance_messages,
        "max_load": max(sizes),
        "mean_load": statistics.fmean(sizes),
        "stdev_load": statistics.pstdev(sizes),
    }


def test_ablation_two_tier_balancing(benchmark):
    """Two-tier balancing must cap hot-spot growth better than adjacent-only."""
    n_peers, n_inserts, seed = 80, 4000, 3

    def run_both():
        return {
            "two_tier": _run_stream(True, n_peers, n_inserts, seed),
            "adjacent_only": _run_stream(False, n_peers, n_inserts, seed),
        }

    results = benchmark.pedantic(run_both, iterations=1, rounds=1)
    benchmark.extra_info["results"] = results
    two_tier = results["two_tier"]
    adjacent_only = results["adjacent_only"]
    # The recruit mechanism bounds the hottest store harder than pure
    # neighbour diffusion does.
    assert two_tier["max_load"] <= adjacent_only["max_load"]
