"""Benchmark configuration.

Each ``bench_fig8*.py`` regenerates one panel of Figure 8: the benchmark
body *is* the experiment driver, so ``pytest benchmarks/ --benchmark-only``
both times the reproduction and prints the measured series the paper plots
(via the ``extra_info`` attached to every benchmark).

Scale: benchmark runs use a reduced sweep so the suite completes in minutes;
set ``REPRO_FULL_SCALE=1`` for the paper's 1000–10000-peer sweep.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import ExperimentScale


def bench_scale() -> ExperimentScale:
    """The scale benchmarks run at (smaller than the experiment default)."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return ExperimentScale(
            sizes=(1000, 2500, 5000, 10000),
            seeds=tuple(range(10)),
            data_per_node=1000,
            n_queries=1000,
            n_trials=100,
        )
    return ExperimentScale(
        sizes=(128, 256, 512),
        seeds=(0,),
        data_per_node=20,
        n_queries=60,
        n_trials=20,
    )


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


def attach_series(benchmark, result) -> None:
    """Expose the measured series in the benchmark report."""
    benchmark.extra_info["figure"] = result.figure
    benchmark.extra_info["expectation"] = result.expectation
    benchmark.extra_info["rows"] = [
        {k: v for k, v in row.items()} for row in result.rows
    ]
