"""Benchmark regenerating Figure 8(a): finding join/replacement nodes."""

from benchmarks.conftest import attach_series
from repro.experiments import fig8a_join_leave_find


def test_fig8a_join_leave_find(benchmark, scale):
    """BATON join/leave discovery stays low; Chord join grows with N."""
    result = benchmark.pedantic(
        lambda: fig8a_join_leave_find.run(scale),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    baton = result.column("join_find", where={"system": "baton"})
    chord = result.column("join_find", where={"system": "chord"})
    assert max(baton) < max(chord)

