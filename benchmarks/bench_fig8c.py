"""Benchmark regenerating Figure 8(c): insert and delete cost."""

from benchmarks.conftest import attach_series
from repro.experiments import fig8c_insert_delete


def test_fig8c_insert_delete(benchmark, scale):
    """BATON ~ Chord for updates; multiway far above both."""
    result = benchmark.pedantic(
        lambda: fig8c_insert_delete.run(scale),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    baton = result.column("insert", where={"system": "baton"})
    multiway = result.column("insert", where={"system": "multiway"})
    assert all(b < m for b, m in zip(baton, multiway))

