"""Ablation: data-aware (median) vs arithmetic (midpoint) range splits.

DESIGN.md item 4.  When a network grows *around* an already-skewed dataset,
median splits hand each child half the parent's actual content, so store
sizes stay comparable; midpoint splits track the key space instead and leave
hot-range peers holding most of the data.
"""

import statistics

from repro.core import BatonConfig, BatonNetwork
from repro.workloads.generators import zipfian_keys


def _grow_around_data(split_policy: str, n_peers: int, seed: int):
    config = BatonConfig(split_policy=split_policy)
    net = BatonNetwork(config=config, seed=seed)
    root = net.bootstrap()
    net.peer(root).store.extend(zipfian_keys(n_peers * 50, theta=1.0, seed=seed))
    for _ in range(n_peers - 1):
        net.join()
    sizes = [len(peer.store) for peer in net.peers.values()]
    return {
        "max_load": max(sizes),
        "mean_load": statistics.fmean(sizes),
        "p99_load": sorted(sizes)[int(0.99 * (len(sizes) - 1))],
    }


def test_ablation_split_policy(benchmark):
    """Median splits must spread a skewed dataset far better than midpoint."""
    n_peers, seed = 120, 5

    def run_both():
        return {
            "median": _grow_around_data("median", n_peers, seed),
            "midpoint": _grow_around_data("midpoint", n_peers, seed),
        }

    results = benchmark.pedantic(run_both, iterations=1, rounds=1)
    benchmark.extra_info["results"] = results
    assert results["median"]["max_load"] < results["midpoint"]["max_load"]
