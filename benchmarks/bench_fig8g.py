"""Benchmark regenerating Figure 8(g): load-balancing message overhead."""

from benchmarks.conftest import attach_series
from repro.experiments import fig8g_load_balancing


def test_fig8g_load_balancing(benchmark, scale):
    """Zipf(1.0) balancing traffic dominates uniform."""
    result = benchmark.pedantic(
        lambda: fig8g_load_balancing.run(scale),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    rows = {row["distribution"]: row for row in result.rows}
    # Single-seed bench scale is noisy; the strict zipf>=uniform ordering is
    # asserted at multi-seed scale in tests/test_experiments.py.  Here we
    # require the shape essentials: balancing fires under skew and its
    # cumulative cost grows monotonically.
    assert rows["zipf"]["balance_msgs"] > 0
    timeline = [
        row["balance_msgs"]
        for row in result.rows
        if row["distribution"] == "zipf_timeline"
    ]
    assert timeline == sorted(timeline)

