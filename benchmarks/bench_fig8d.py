"""Benchmark regenerating Figure 8(d): exact-match query cost."""

from benchmarks.conftest import attach_series
from repro.experiments import fig8d_exact_query


def test_fig8d_exact_query(benchmark, scale):
    """BATON ~ Chord (1.44 factor); multiway far above; all hits found."""
    result = benchmark.pedantic(
        lambda: fig8d_exact_query.run(scale),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    assert all(rate == 1.0 for rate in result.column("hit_rate"))
    baton = result.column("messages", where={"system": "baton"})
    multiway = result.column("messages", where={"system": "multiway"})
    assert all(b < m for b, m in zip(baton, multiway))

