"""Benchmark: wall-clock scale profile of the event runtime.

The measured object is the repository's own machinery — engine, hop
pricing, workload driver — not the overlay: :func:`profile_run` times the
build and the churn+query drive for one population (see
``experiments/scale_profile.py``).  The N=1000 cell is the benchmark
trajectory's anchor (``BENCH_scale.json`` at the repo root holds the
checked-in point; ``python -m repro profile --out`` refreshes it), and the
regression test fails when the driver gets more than
``REPRO_BENCH_FACTOR``x (default 2x) slower than that baseline.

The shortened N=10k cell — the paper's headline population — and the
N=30k bulk-build stand-in are gated behind ``REPRO_SCALE_SMOKE=1`` (CI's
benchmark job sets it) so ordinary test runs stay fast; the full N=100k
cell — bulk build plus a ~10⁶-event drive — needs ``REPRO_FULL_SCALE=1``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import scale_profile

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"


def _baseline_row(n_peers: int, workload=None):
    """The checked-in trajectory point for one population, if present.

    Standard rows carry no ``workload`` tag; the pub/sub dissemination
    cell is tagged ``"pubsub"`` so it never shadows the standard gate.
    """
    if not BASELINE_PATH.exists():
        return None
    with open(BASELINE_PATH) as handle:
        payload = json.load(handle)
    if payload.get("schema") != scale_profile.BENCH_SCHEMA:
        return None
    for row in payload.get("rows", []):
        if row.get("n_peers") == n_peers and row.get("workload") == workload:
            return row
    return None


def test_n1000_driver(benchmark):
    """The acceptance driver: N=1000 build + concurrent churn/query drive.

    Guards the refactor's speedup: the run must stay within
    REPRO_BENCH_FACTOR (default 2x) of the committed baseline's wall
    clock — a trajectory point that itself documents the >=2x speedup
    over the pre-refactor driver.
    """
    row = benchmark.pedantic(
        lambda: scale_profile.profile_run(1000, seed=0), iterations=1, rounds=1
    )
    benchmark.extra_info["row"] = row
    assert row["queries"] > 0
    assert row["success"] > 0.9
    assert row["events"] > 0
    # Cancellation tombstones must not balloon the heap: its high-water
    # mark stays far below the total number of events pushed through it.
    assert row["peak_heap"] < row["events"]

    baseline = _baseline_row(1000)
    if baseline is None:
        pytest.skip("no BENCH_scale.json baseline committed for N=1000")
    factor = float(os.environ.get("REPRO_BENCH_FACTOR", "2.0"))
    budget = factor * float(baseline["total_s"])
    assert row["total_s"] <= budget, (
        f"scale regression: N=1000 build+drive took {row['total_s']:.2f}s, "
        f"baseline {baseline['total_s']:.2f}s (budget {budget:.2f}s); "
        f"if this is an intentional trade, refresh BENCH_scale.json via "
        f"'python -m repro profile --out BENCH_scale.json'"
    )
    # The throughput gate: events/sec through the engine must stay within
    # the same factor of the committed row (wall-clock alone would let a
    # slower engine hide behind a cheaper build).
    floor = float(baseline["events_per_s"]) / factor
    assert row["events_per_s"] >= floor, (
        f"engine regression: N=1000 drive ran {row['events_per_s']:.0f} "
        f"events/s, baseline {baseline['events_per_s']:.0f} "
        f"(floor {floor:.0f}); refresh BENCH_scale.json if intentional"
    )


def test_n1000_pubsub_driver(benchmark):
    """The dissemination cell: publish/subscribe traffic on the N=1000
    window, gated on engine events/sec against the committed pubsub row
    (multicast fan-outs dominate the extra events, so this is the
    multicast-path throughput gate)."""
    row = benchmark.pedantic(
        lambda: scale_profile.profile_run(
            1000,
            seed=0,
            publish_rate=scale_profile.PUBSUB_PUBLISH_RATE,
            subscribe_rate=scale_profile.PUBSUB_SUBSCRIBE_RATE,
        ),
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["row"] = row
    assert row["workload"] == "pubsub"
    assert row["multicast_deliveries"] > 0
    assert row["subscriptions"] > 0
    assert row["success"] > 0.9
    assert row["peak_heap"] < row["events"]

    baseline = _baseline_row(1000, workload="pubsub")
    if baseline is None:
        pytest.skip("no BENCH_scale.json pubsub baseline committed")
    factor = float(os.environ.get("REPRO_BENCH_FACTOR", "2.0"))
    floor = float(baseline["events_per_s"]) / factor
    assert row["events_per_s"] >= floor, (
        f"dissemination regression: N=1000 pubsub drive ran "
        f"{row['events_per_s']:.0f} events/s, baseline "
        f"{baseline['events_per_s']:.0f} (floor {floor:.0f}); refresh "
        f"BENCH_scale.json if intentional"
    )


def test_n1000_inert_faultplan_zero_overhead(benchmark):
    """The chaos wrapper must be free when unused.

    An inert :class:`~repro.sim.faults.FaultPlan` (no rates, no windows)
    routes every hop through the chaos transmit path, but with nothing to
    inject it must behave like the plain transport: the very same events
    execute (the inert plan consumes no randomness, so the run is
    event-for-event identical), and the engine's throughput stays within
    5% of the fast path.  The drive window is short, so wall clock is
    noisy: both variants run several *interleaved* rounds over a doubled
    window (frequency drift and warm-up then hit both sides alike) and
    the best (highest events/s) of each side is compared.
    """
    rounds = 5
    window = scale_profile.DURATION * 2
    plain, inert = [], []
    for _ in range(rounds):
        plain.append(
            scale_profile.profile_run(1000, seed=0, duration=window)
        )
        inert.append(
            scale_profile.profile_run(
                1000, seed=0, duration=window, wrap_faults=True
            )
        )
    row = benchmark.pedantic(
        lambda: scale_profile.profile_run(
            1000, seed=0, duration=window, wrap_faults=True
        ),
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["row"] = row

    # Identical work: the inert plan changes nothing about the run itself.
    assert {r["events"] for r in plain} == {row["events"]}
    assert {r["events"] for r in inert} == {row["events"]}
    assert plain[0]["queries"] == row["queries"]
    assert plain[0]["success"] == row["success"]
    assert plain[0]["messages"] == row["messages"]
    assert plain[0]["p50"] == row["p50"]

    best_plain = max(float(r["events_per_s"]) for r in plain)
    best_inert = max(float(r["events_per_s"]) for r in inert + [row])
    assert best_inert >= 0.95 * best_plain, (
        f"inert FaultPlan costs more than 5%: best fast path "
        f"{best_plain:.0f} events/s vs best wrapped {best_inert:.0f}"
    )


@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_SMOKE") != "1"
    and os.environ.get("REPRO_FULL_SCALE") != "1",
    reason="N=10k smoke runs in the CI benchmark job (REPRO_SCALE_SMOKE=1)",
)
def test_10k_churn_query_smoke(benchmark):
    """The paper's headline N: the 10k churn+query benchmark cell.

    Runs the same raised-rate window as the committed trajectory row
    (``bench_window``): the old half-duration window pushed so few events
    that its events/s was fixed-cost noise, unable to catch an engine
    regression.  With tens of thousands of events the throughput gate is
    meaningful, so the cell gets one.
    """
    row = benchmark.pedantic(
        lambda: scale_profile.profile_run(
            10_000, seed=0, **scale_profile.bench_window(10_000)
        ),
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["row"] = row
    assert row["n_peers"] == 10_000
    assert row["queries"] > 0
    assert row["success"] > 0.8
    assert row["peak_heap"] < row["events"]
    # Throughput-dominated regime: enough events that events/s measures
    # the engine, not per-run fixed costs.
    assert row["events"] > 20_000

    baseline = _baseline_row(10_000)
    if baseline is None:
        pytest.skip("no BENCH_scale.json baseline committed for N=10000")
    factor = float(os.environ.get("REPRO_BENCH_FACTOR", "2.0"))
    floor = float(baseline["events_per_s"]) / factor
    assert row["events_per_s"] >= floor, (
        f"engine regression: N=10k drive ran {row['events_per_s']:.0f} "
        f"events/s, baseline {baseline['events_per_s']:.0f} "
        f"(floor {floor:.0f}); refresh BENCH_scale.json if intentional"
    )


@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_SMOKE") != "1"
    and os.environ.get("REPRO_FULL_SCALE") != "1",
    reason="N=10k cache cell runs in the CI benchmark job",
)
def test_10k_locality_cache_driver(benchmark):
    """The cache-path cell: route cache on at the paper's headline N.

    Gateway/hot-slice regime so the cache actually warms; gated on
    engine events/sec against the committed ``workload="locality"`` row
    (the cache consult sits on every exact walk's entry, so a slow
    consult shows up here first)."""
    row = benchmark.pedantic(
        lambda: scale_profile.profile_run(
            10_000, seed=0, cache=True, duration=scale_profile.CACHE_DURATION
        ),
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["row"] = row
    assert row["workload"] == "locality"
    assert row["queries"] > 0
    assert row["success"] > 0.8
    # The cell is pointless if the cache never warms: the hot-slice
    # gateway regime must produce a real hit rate, not a trace amount.
    assert row["hit_rate"] > 0.2
    assert row["peak_heap"] < row["events"]

    baseline = _baseline_row(10_000, workload="locality")
    if baseline is None:
        pytest.skip("no BENCH_scale.json locality baseline committed")
    factor = float(os.environ.get("REPRO_BENCH_FACTOR", "2.0"))
    floor = float(baseline["events_per_s"]) / factor
    assert row["events_per_s"] >= floor, (
        f"cache-path regression: N=10k cached drive ran "
        f"{row['events_per_s']:.0f} events/s, baseline "
        f"{baseline['events_per_s']:.0f} (floor {floor:.0f}); refresh "
        f"BENCH_scale.json if intentional"
    )


@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_SMOKE") != "1"
    and os.environ.get("REPRO_FULL_SCALE") != "1",
    reason="N=30k bulk-build smoke runs in the CI benchmark job",
)
def test_30k_bulk_smoke(benchmark):
    """PR-CI stand-in for the 100k cell: bulk build + a shortened drive."""
    row = benchmark.pedantic(
        lambda: scale_profile.profile_run(
            30_000, seed=0, duration=scale_profile.DURATION / 2
        ),
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["row"] = row
    assert row["build"] == "bulk"
    assert row["build_s"] < 10.0
    assert row["queries"] > 0
    assert row["success"] > 0.8


def test_suite_row_committed_speedup():
    """The committed trajectory must carry the suite wall-clock row and it
    must document a real win: the pooled suite at least 2x faster than
    sequential.  This is a static gate on the checked-in point (refresh
    with ``python -m repro profile --suite --out BENCH_scale.json``); the
    live re-measurement lives behind REPRO_FULL_SCALE below.
    """
    if not BASELINE_PATH.exists():
        pytest.skip("no BENCH_scale.json committed")
    with open(BASELINE_PATH) as handle:
        payload = json.load(handle)
    if payload.get("schema") != scale_profile.BENCH_SCHEMA:
        pytest.skip("BENCH_scale.json predates the current schema")
    suite = [
        row for row in payload.get("rows", [])
        if row.get("workload") == "suite"
    ]
    assert suite, "BENCH_scale.json is missing the suite wall-clock row"
    row = suite[0]
    assert row["sequential_s"] > 0 and row["cold_s"] > 0 and row["warm_s"] > 0
    # The cold (first-ever) run must never cost more than the pre-engine
    # sequential suite did.
    assert row["cold_s"] <= row["sequential_s"]
    assert row["speedup"] >= 2.0, (
        f"committed suite row documents only {row['speedup']:.2f}x speedup "
        f"at --jobs {row['jobs']} (need >= 2x); investigate the scheduler "
        f"before refreshing the baseline"
    )


@pytest.mark.skipif(
    os.environ.get("REPRO_FULL_SCALE") != "1",
    reason="the live suite seq-vs-pool measurement (several minutes) only "
    "runs under REPRO_FULL_SCALE=1",
)
def test_suite_parallel_speedup_live(benchmark):
    """Re-measure the suite row: sequential vs --jobs 4 at default scale.

    ``suite_benchmark_row`` itself asserts all three passes produce
    byte-identical canonical output; this gate adds the wall-clock floor.
    The floor is below the committed 2x because shared CI machines
    under-deliver cores; the committed row keeps the honest number.
    """
    row = benchmark.pedantic(
        scale_profile.suite_benchmark_row, iterations=1, rounds=1
    )
    benchmark.extra_info["row"] = row
    assert row["speedup"] >= 1.5, (
        f"suite speedup collapsed: --jobs {row['jobs']} only "
        f"{row['speedup']:.2f}x over sequential "
        f"({row['sequential_s']:.0f}s -> {row['warm_s']:.0f}s warm)"
    )


@pytest.mark.skipif(
    os.environ.get("REPRO_FULL_SCALE") != "1",
    reason="the N=100k heavy cell only runs under REPRO_FULL_SCALE=1",
)
def test_100k_bulk_million_event_drive(benchmark):
    """The 100k scale claim: bulk build in seconds, then a ~10⁶-event
    window, gated against the committed trajectory's throughput."""
    row = benchmark.pedantic(
        lambda: scale_profile.profile_run(
            100_000, seed=0, **scale_profile.bench_window(100_000)
        ),
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["row"] = row
    assert row["build"] == "bulk"
    assert row["build_s"] < 10.0
    assert row["events"] >= 1_000_000
    assert row["success"] > 0.8
    assert row["peak_heap"] < row["events"]

    baseline = _baseline_row(100_000)
    if baseline is None:
        pytest.skip("no BENCH_scale.json baseline committed for N=100000")
    factor = float(os.environ.get("REPRO_BENCH_FACTOR", "2.0"))
    floor = float(baseline["events_per_s"]) / factor
    assert row["events_per_s"] >= floor, (
        f"engine regression at scale: N=100k drive ran "
        f"{row['events_per_s']:.0f} events/s, baseline "
        f"{baseline['events_per_s']:.0f} (floor {floor:.0f}); refresh "
        f"BENCH_scale.json if intentional"
    )
