"""Benchmark for the concurrent-dynamics experiment (event-driven runtime).

Times the churn-racing-queries sweep and checks its qualitative shape,
parameterized over every overlay in the registry: full (or near-full)
success with no churn, graceful degradation (not collapse) as churn
intensity grows, and — for BATON — a structure that repairs/reconciles
clean.  A final benchmark times the three-way comparison itself.
"""

import pytest

from benchmarks.conftest import attach_series
from repro import overlays
from repro.experiments import concurrent_dynamics, durability, hetero_links


def test_concurrent_dynamics(benchmark, scale):
    """Success near 1 at zero churn; bounded degradation under heavy churn."""
    result = benchmark.pedantic(
        lambda: concurrent_dynamics.run(scale, churn_rates=(0.0, 1.0, 4.0)),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    success = result.column("success")
    assert success[0] == 1.0  # no churn: every query answered
    assert all(rate > 0.8 for rate in success)  # degradation, not collapse
    violations = result.column("violations")
    assert violations[0] == 0  # quiet network reconciles perfectly clean
    # under heavy churn a rare residual Theorem-1 imbalance is expected
    # (stale safe-departure decision); anything more means a real bug
    assert sum(violations) <= 2, violations
    assert all(p99 >= p50 for p50, p99 in zip(result.column("p50"), result.column("p99")))


@pytest.mark.parametrize(
    "overlay", [name for name in overlays.available() if name != "baton"]
)
def test_concurrent_dynamics_baselines(benchmark, scale, overlay):
    """The baselines survive the same workloads, with their own cost shapes."""
    result = benchmark.pedantic(
        lambda: concurrent_dynamics.run(
            scale, churn_rates=(0.0, 1.0), overlay=overlay
        ),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    success = result.column("success")
    assert success[0] > 0.95  # quiet network: essentially every query answered
    # Under churn the baselines degrade by their structure (multiway walks
    # are the most fragile) but must not collapse.
    assert all(rate > 0.5 for rate in success), success


def test_concurrent_comparison(benchmark, scale):
    """Three overlays, identical workloads: BATON's p50 stays the flattest."""
    result = benchmark.pedantic(
        lambda: concurrent_dynamics.run_comparison(scale, churn_rates=(0.0,)),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert {row["overlay"] for row in result.rows} == set(overlays.available())
    baton_p50 = result.column("p50", where={"overlay": "baton"})[0]
    multiway_p50 = result.column("p50", where={"overlay": "multiway"})[0]
    # No sideways tables means longer walks: the paper's §V-B claim.
    assert multiway_p50 > baton_p50


def test_durability(benchmark, scale):
    """Replication pays for itself: fewer lost keys than the bare network."""
    result = benchmark.pedantic(
        lambda: durability.run(
            scale, churn_rates=(2.0,), maintenance_intervals=(0.0, 6.0)
        ),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    replicated = [row for row in result.rows if row["replication"]]
    bare = [row for row in result.rows if not row["replication"]]
    assert replicated and bare
    # Replication recovers what the bare network forfeits; maintenance
    # traffic is the price and must be visible (priced, counted messages).
    assert sum(r["keys_lost"] for r in replicated) <= min(
        r["keys_lost"] for r in bare
    )
    if any(r["crashes"] for r in replicated):
        assert sum(r["keys_recovered"] for r in replicated) > 0
    assert all(r["replica_msgs"] > 0 for r in replicated)
    assert all(r["replica_msgs"] == 0 for r in bare)
    assert all(r["reconcile_msgs"] > 0 for r in result.rows)


def test_hetero_links(benchmark, scale):
    """Per-link WAN costs: every overlay slows as inter-region delay grows."""
    result = benchmark.pedantic(
        lambda: hetero_links.run(scale, inter_delays=(1.0, 10.0)),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert {row["overlay"] for row in result.rows} == set(overlays.available())
    for name in overlays.available():
        p50 = result.column("p50", where={"overlay": name})
        # Costlier inter-region links must show up in end-to-end latency —
        # the signal the scalar latency model could never produce.
        assert p50[-1] > p50[0], (name, p50)
    # The multiway tree crosses the most links, so it pays the most for
    # expensive ones (the paper's §V-B walk-length claim, re-measured on a
    # WAN instead of a hop count).
    baton_wan = result.column("p50", where={"overlay": "baton"})[-1]
    multiway_wan = result.column("p50", where={"overlay": "multiway"})[-1]
    assert multiway_wan > baton_wan
