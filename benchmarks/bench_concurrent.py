"""Benchmark for the concurrent-dynamics experiment (event-driven runtime).

Times the churn-racing-queries sweep and checks its qualitative shape:
full success with no churn, graceful degradation (not collapse) as churn
intensity grows, and a structure that repairs/reconciles clean.
"""

from benchmarks.conftest import attach_series
from repro.experiments import concurrent_dynamics


def test_concurrent_dynamics(benchmark, scale):
    """Success near 1 at zero churn; bounded degradation under heavy churn."""
    result = benchmark.pedantic(
        lambda: concurrent_dynamics.run(scale, churn_rates=(0.0, 1.0, 4.0)),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    success = result.column("success")
    assert success[0] == 1.0  # no churn: every query answered
    assert all(rate > 0.8 for rate in success)  # degradation, not collapse
    violations = result.column("violations")
    assert violations[0] == 0  # quiet network reconciles perfectly clean
    # under heavy churn a rare residual Theorem-1 imbalance is expected
    # (stale safe-departure decision); anything more means a real bug
    assert sum(violations) <= 2, violations
    assert all(p99 >= p50 for p50, p99 in zip(result.column("p50"), result.column("p99")))
