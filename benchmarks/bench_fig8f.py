"""Benchmark regenerating Figure 8(f): access load by tree level."""

from benchmarks.conftest import attach_series
from repro.experiments import fig8f_access_load


def test_fig8f_access_load(benchmark, scale):
    """No root hot-spot: insert load flat, search load leaf-leaning."""
    result = benchmark.pedantic(
        lambda: fig8f_access_load.run(scale),
        iterations=1,
        rounds=1,
    )
    attach_series(benchmark, result)
    assert result.rows
    loads = {row["level"]: row["insert_per_node"] for row in result.rows}
    deep = [v for level, v in loads.items() if level >= 2]
    assert loads[0] <= 4 * (sum(deep) / len(deep)) + 4

