"""Micro-benchmark: weighted sampling with and without precomputation.

The Zipfian workload generators draw hundreds of thousands of ranks per
experiment; the naive approach (rebuilding the weight list and cumulative
table on every draw) is O(n_ranks) per draw, the precomputed-CDF-plus-
bisect path is O(log n_ranks).  The test asserts the speedup, not just
times it, so a regression back to per-draw rebuilds fails loudly.
"""

import random
import time
from itertools import accumulate

from repro.util.rng import SeededRng
from repro.workloads.generators import ZipfianKeys

N_RANKS = 5_000
DRAWS = 2_000


def _naive_weighted_draws(n_ranks: int, draws: int, seed: int) -> list[int]:
    """What the hot path must not do: rebuild weights on every draw."""
    rng = random.Random(seed)
    out = []
    for _ in range(draws):
        weights = [1.0 / (rank**1.0) for rank in range(1, n_ranks + 1)]
        cumulative = list(accumulate(weights))
        u = rng.random() * cumulative[-1]
        lo, hi = 0, n_ranks - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo + 1)
    return out


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_zipf_bisect_beats_per_draw_rebuild(benchmark):
    sampler = ZipfianKeys(theta=1.0, n_ranks=N_RANKS, seed=3)

    def fast() -> list[int]:
        return [sampler.draw_rank() for _ in range(DRAWS)]

    benchmark.pedantic(fast, iterations=1, rounds=3)
    naive_time = _timed(lambda: _naive_weighted_draws(N_RANKS, DRAWS, seed=3))
    fast_time = min(_timed(fast) for _ in range(3))
    benchmark.extra_info["naive_seconds"] = naive_time
    benchmark.extra_info["fast_seconds"] = fast_time
    # The naive path is O(n_ranks) per draw; demand a wide, flake-proof margin.
    assert fast_time * 5 < naive_time, (fast_time, naive_time)


def test_weighted_chooser_beats_per_call_choice(benchmark):
    rng = SeededRng(11)
    items = list(range(N_RANKS))
    weights = [1.0 / (rank + 1) for rank in range(N_RANKS)]
    choose = rng.weighted_chooser(items, weights)

    def fast() -> list[int]:
        return [choose() for _ in range(DRAWS)]

    def per_call() -> list[int]:
        other = SeededRng(11)
        return [other.weighted_choice(items, weights) for _ in range(DRAWS)]

    benchmark.pedantic(fast, iterations=1, rounds=3)
    per_call_time = _timed(per_call)
    fast_time = min(_timed(fast) for _ in range(3))
    benchmark.extra_info["per_call_seconds"] = per_call_time
    benchmark.extra_info["chooser_seconds"] = fast_time
    assert fast_time * 5 < per_call_time, (fast_time, per_call_time)
