"""Protocol tests: load balancing (§IV-D)."""

import pytest

from repro.core import BatonConfig, BatonNetwork, LoadBalanceConfig, check_invariants
from repro.core.balance import maybe_balance
from repro.workloads.generators import ZipfianKeys, uniform_keys

from tests.conftest import make_network


def balanced_net(n_peers=30, capacity=20, seed=4, **kwargs) -> BatonNetwork:
    config = BatonConfig(
        balance=LoadBalanceConfig(capacity=capacity, enabled=True, **kwargs)
    )
    net = BatonNetwork.build(n_peers, seed=seed, config=config)
    check_invariants(net)
    return net


class TestTriggering:
    def test_disabled_config_is_noop(self):
        config = BatonConfig(balance=LoadBalanceConfig(enabled=False))
        net = BatonNetwork.build(10, seed=1, config=config)
        owner = net.random_peer_address()
        for _ in range(500):
            net.peer(owner).store.insert(5)
        assert maybe_balance(net, owner) is None

    def test_below_capacity_is_noop(self):
        net = balanced_net(capacity=100)
        owner = net.random_peer_address()
        assert maybe_balance(net, owner) is None

    def test_overload_triggers_event(self):
        net = balanced_net(n_peers=30, capacity=10)
        overloaded = next(a for a, p in net.peers.items() if p.is_leaf)
        peer = net.peer(overloaded)
        low, high = peer.range.low, peer.range.high
        for i in range(30):
            peer.store.insert(low + i % max(1, high - low - 1))
        outcome = maybe_balance(net, overloaded)
        assert outcome is not None
        assert outcome.trace.total > 0
        assert net.stats.balance_events
        check_invariants(net)


class TestAdjacentBalancing:
    def test_keys_and_boundary_move(self):
        net = balanced_net(n_peers=20, capacity=10)
        overloaded = next(
            a
            for a, p in net.peers.items()
            if not p.is_leaf and p.right_adjacent is not None
        )
        peer = net.peer(overloaded)
        span = peer.range
        for i in range(40):
            peer.store.insert(span.low + (i % max(1, span.width - 1)))
        size_before = len(peer.store)
        outcome = maybe_balance(net, overloaded)
        assert outcome is not None
        assert outcome.kind == "adjacent"
        assert len(peer.store) < size_before
        check_invariants(net)

    def test_duplicate_heavy_store_cannot_split(self):
        # A store of identical keys cannot place a boundary between copies.
        net = balanced_net(n_peers=16, capacity=5)
        internal = next(a for a, p in net.peers.items() if not p.is_leaf)
        peer = net.peer(internal)
        for _ in range(30):
            peer.store.insert(peer.range.low)
        outcome = maybe_balance(net, internal)
        # either nothing happened or invariants survived the attempt
        check_invariants(net)


class TestRejoinBalancing:
    def test_skewed_stream_recruits_leaves(self):
        net = balanced_net(n_peers=40, capacity=15, seed=7)
        gen = ZipfianKeys(theta=1.0, seed=99)
        for _ in range(1500):
            net.insert(gen.draw())
        kinds = {event.kind for event in net.stats.balance_events}
        assert "rejoin" in kinds, "skew must eventually force leaf recruitment"
        check_invariants(net)

    def test_uniform_stream_rarely_balances(self):
        net = balanced_net(n_peers=40, capacity=60, seed=8)
        for key in uniform_keys(1200, seed=5):
            net.insert(key)
        rejoins = [e for e in net.stats.balance_events if e.kind == "rejoin"]
        skewed = balanced_net(n_peers=40, capacity=60, seed=8)
        gen = ZipfianKeys(theta=1.0, seed=5)
        for _ in range(1200):
            skewed.insert(gen.draw())
        skewed_rejoins = [
            e for e in skewed.stats.balance_events if e.kind == "rejoin"
        ]
        assert len(skewed.stats.balance_events) >= len(net.stats.balance_events)
        check_invariants(net)
        check_invariants(skewed)

    def test_balance_events_record_messages_and_shifts(self):
        net = balanced_net(n_peers=40, capacity=10, seed=9)
        gen = ZipfianKeys(theta=1.0, seed=3)
        for _ in range(800):
            net.insert(gen.draw())
        assert net.stats.balance_events
        for event in net.stats.balance_events:
            assert event.messages > 0
            assert event.shift_size >= 0

    def test_no_data_lost_during_balancing(self):
        net = balanced_net(n_peers=30, capacity=12, seed=10)
        gen = ZipfianKeys(theta=1.0, seed=11)
        inserted = [gen.draw() for _ in range(1000)]
        for key in inserted:
            net.insert(key)
        stored = sorted(k for p in net.peers.values() for k in p.store)
        assert stored == sorted(inserted)
        check_invariants(net)
