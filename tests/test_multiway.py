"""Tests for the multiway-tree baseline (repro.multiway)."""

import pytest

from repro.multiway import MultiwayConfig, MultiwayNetwork
from repro.workloads.generators import uniform_keys, zipfian_keys


def check_structure(net: MultiwayNetwork) -> None:
    """Local structural invariants of the multiway tree."""
    for address, node in net.nodes.items():
        if node.parent is not None:
            parent = net.nodes[node.parent]
            link = parent.child_link_to(address)
            assert link is not None, f"{address} missing from parent's children"
            assert link.coverage.low <= node.range.low
            assert node.range.high <= link.coverage.high
        for child_link in node.children:
            assert child_link.address in net.nodes
            assert net.nodes[child_link.address].parent == address
        for neighbor in (node.left_neighbor, node.right_neighbor):
            assert neighbor is None or neighbor in net.nodes
        if node.right_neighbor is not None:
            assert net.nodes[node.right_neighbor].left_neighbor == address
    # own ranges partition the domain
    owned = sorted(
        (n.range.low, n.range.high) for n in net.nodes.values()
    )
    for (low_a, high_a), (low_b, _) in zip(owned, owned[1:]):
        assert high_a == low_b, "own ranges must tile the domain"


class TestConstruction:
    def test_build(self):
        net = MultiwayNetwork.build(50, seed=1)
        assert net.size == 50
        check_structure(net)

    def test_fanout_respected(self):
        config = MultiwayConfig(fanout=3)
        net = MultiwayNetwork.build(60, seed=2, config=config)
        assert all(len(n.children) <= 3 for n in net.nodes.values())

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            MultiwayConfig(fanout=1)

    def test_small_fanout_builds_deeper_tree(self):
        shallow = MultiwayNetwork.build(200, seed=3, config=MultiwayConfig(fanout=16))
        deep = MultiwayNetwork.build(200, seed=3, config=MultiwayConfig(fanout=2))
        assert deep.depth() >= shallow.depth()


class TestSearch:
    def test_exact_search_correct(self):
        net = MultiwayNetwork.build(60, seed=4)
        keys = uniform_keys(200, seed=1)
        net.bulk_load(keys)
        for key in keys[:100]:
            result = net.search_exact(key)
            assert result.found

    def test_search_from_every_node(self):
        net = MultiwayNetwork.build(25, seed=5)
        keys = uniform_keys(50, seed=2)
        net.bulk_load(keys)
        for start in sorted(net.nodes):
            assert net.search_exact(keys[0], via=start).found

    def test_search_costs_more_than_height(self):
        # No sideways tables: horizontal walks make searches expensive —
        # the Fig 8(d) contrast.
        net = MultiwayNetwork.build(150, seed=6)
        keys = uniform_keys(150, seed=3)
        net.bulk_load(keys)
        costs = [net.search_exact(k).trace.total for k in keys]
        assert sum(costs) / len(costs) > net.depth() / 2

    def test_range_query_complete(self):
        net = MultiwayNetwork.build(60, seed=7)
        keys = uniform_keys(300, seed=4)
        net.bulk_load(keys)
        result = net.search_range(2 * 10**8, 6 * 10**8)
        assert result.keys == sorted(k for k in keys if 2 * 10**8 <= k < 6 * 10**8)

    def test_range_query_rejects_empty(self):
        net = MultiwayNetwork.build(10, seed=8)
        with pytest.raises(ValueError):
            net.search_range(5, 5)


class TestDataOps:
    def test_insert_delete_roundtrip(self):
        net = MultiwayNetwork.build(40, seed=9)
        for key in uniform_keys(100, seed=5):
            net.insert(key)
            assert net.search_exact(key).found
            assert net.delete(key).applied
            assert not net.search_exact(key).found

    def test_out_of_domain_insert_expands_root(self):
        from repro.core.ranges import Range

        config = MultiwayConfig(domain=Range(100, 200))
        net = MultiwayNetwork.build(10, seed=10, config=config)
        net.insert(500)
        assert net.search_exact(500).found


class TestChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_leaves_preserve_structure_and_data(self, seed):
        net = MultiwayNetwork.build(60, seed=seed)
        keys = uniform_keys(200, seed=seed)
        net.bulk_load(keys)
        import random

        mix = random.Random(seed)
        for _ in range(40):
            net.leave(mix.choice(sorted(net.nodes)))
            check_structure(net)
        stored = sorted(k for n in net.nodes.values() for k in n.store)
        assert stored == sorted(keys)

    def test_leave_cost_scales_with_children(self):
        # §V-A: departing nodes gather information from all children.
        config = MultiwayConfig(fanout=8)
        net = MultiwayNetwork.build(120, seed=11, config=config)
        internal = next(
            a for a, n in net.nodes.items() if len(n.children) >= 4
        )
        n_children = len(net.nodes[internal].children)
        result = net.leave(internal)
        assert result.find_trace.total >= n_children

    def test_root_leave(self):
        net = MultiwayNetwork.build(30, seed=12)
        root = net.root
        result = net.leave(root)
        assert result.replacement is not None
        assert net.root == result.replacement
        check_structure(net)

    def test_shrink_to_singleton(self):
        net = MultiwayNetwork.build(12, seed=13)
        import random

        mix = random.Random(1)
        while net.size > 1:
            net.leave(mix.choice(sorted(net.nodes)))
        assert net.size == 1
        net.leave(sorted(net.nodes)[0])
        assert net.size == 0


class TestSkew:
    def test_skewed_data_deepens_tree(self):
        # §II: without balancing, skew degrades the multiway tree's shape.
        uniform_net = MultiwayNetwork(seed=14)
        root = uniform_net.bootstrap()
        uniform_net.nodes[root].store.extend(uniform_keys(3000, seed=6))
        for _ in range(99):
            uniform_net.join()

        skew_net = MultiwayNetwork(seed=14)
        root = skew_net.bootstrap()
        skew_net.nodes[root].store.extend(zipfian_keys(3000, theta=1.0, seed=6))
        for _ in range(99):
            skew_net.join()
        assert skew_net.depth() >= uniform_net.depth()
