"""Unit tests for key ranges (repro.core.ranges)."""

import pytest

from repro.core.ranges import Range


class TestBasics:
    def test_full_domain(self):
        domain = Range.full_domain()
        assert domain.low == 1
        assert domain.high == 1_000_000_000

    def test_width(self):
        assert Range(10, 25).width == 15

    def test_empty(self):
        assert Range(5, 5).is_empty
        assert not Range(5, 6).is_empty

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Range(10, 5)

    def test_contains_half_open(self):
        r = Range(10, 20)
        assert r.contains(10)
        assert r.contains(19)
        assert not r.contains(20)
        assert not r.contains(9)


class TestOverlap:
    def test_disjoint(self):
        assert not Range(0, 10).overlaps(Range(10, 20))  # touching, half-open
        assert not Range(0, 10).overlaps(Range(15, 20))

    def test_overlapping(self):
        assert Range(0, 11).overlaps(Range(10, 20))
        assert Range(12, 15).overlaps(Range(10, 20))

    def test_intersection(self):
        assert Range(0, 15).intersection(Range(10, 20)) == Range(10, 15)

    def test_intersection_disjoint_is_empty(self):
        assert Range(0, 5).intersection(Range(10, 20)).is_empty


class TestSplitMerge:
    def test_split_at(self):
        left, right = Range(10, 20).split_at(14)
        assert left == Range(10, 14)
        assert right == Range(14, 20)

    def test_split_rejects_boundary_pivot(self):
        with pytest.raises(ValueError):
            Range(10, 20).split_at(10)
        with pytest.raises(ValueError):
            Range(10, 20).split_at(20)

    def test_midpoint_is_strictly_inside(self):
        for r in (Range(0, 2), Range(5, 100), Range(7, 9)):
            assert r.low < r.midpoint() < r.high

    def test_merge_adjacent(self):
        assert Range(0, 10).merge(Range(10, 20)) == Range(0, 20)
        assert Range(10, 20).merge(Range(0, 10)) == Range(0, 20)

    def test_merge_rejects_gap(self):
        with pytest.raises(ValueError):
            Range(0, 10).merge(Range(11, 20))

    def test_merge_rejects_overlap(self):
        with pytest.raises(ValueError):
            Range(0, 12).merge(Range(10, 20))

    def test_split_then_merge_roundtrip(self):
        original = Range(100, 900)
        left, right = original.split_at(345)
        assert left.merge(right) == original


class TestExtend:
    def test_extend_below(self):
        assert Range(10, 20).extend_to_include(5) == Range(5, 20)

    def test_extend_above(self):
        assert Range(10, 20).extend_to_include(25) == Range(10, 26)

    def test_extend_inside_is_noop(self):
        assert Range(10, 20).extend_to_include(15) == Range(10, 20)


class TestSplitGuards:
    def test_can_split_requires_interior_pivot(self):
        assert Range(0, 2).can_split
        assert not Range(5, 6).can_split
        assert not Range(5, 5).can_split

    def test_width_one_midpoint_degenerates_to_low(self):
        narrow = Range(5, 6)
        assert narrow.midpoint() == narrow.low

    def test_width_one_split_at_midpoint_is_rejected(self):
        narrow = Range(5, 6)
        with pytest.raises(ValueError):
            narrow.split_at(narrow.midpoint())

    def test_width_two_splits_cleanly(self):
        left, right = Range(5, 7).split_at(Range(5, 7).midpoint())
        assert (left, right) == (Range(5, 6), Range(6, 7))
