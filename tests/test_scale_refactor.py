"""Tests for the scale refactor: sized bulk transfers, the batched
replica-refresh sweep, the latency-stretch metric, opt-in event logging,
and the scale-profile/benchmark plumbing."""

import pytest

from repro.core.network import BatonConfig, BatonNetwork
from repro.experiments import scale_profile
from repro.multiway.network import MultiwayNetwork
from repro.multiway.runtime import AsyncMultiwayNetwork
from repro.sim.latency import ConstantLatency, ExponentialLatency, UniformLatency
from repro.sim.runtime import AsyncBatonNetwork
from repro.sim.topology import ClusteredTopology, CoordinateTopology
from repro.util.rng import SeededRng
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload
from repro.workloads.generators import uniform_keys


def one_region_bandwidth_topology(bandwidth: float = 2.0) -> ClusteredTopology:
    """Deterministic single-region topology with a bandwidth term: every
    link costs 1.0 + size/bandwidth, so sized hops are directly visible."""
    return ClusteredTopology(
        0, regions=1, intra_delay=1.0, jitter=0.0, intra_bandwidth=bandwidth
    )


class TestSizedLeaveHandover:
    def test_baton_loaded_leaf_pays_for_its_keys(self):
        """A BATON leave's key handover is a sized hop: more keys, more time."""
        latencies = {}
        for load in (5, 200):
            anet = AsyncBatonNetwork(
                BatonNetwork.build(20, seed=3),
                topology=one_region_bandwidth_topology(),
            )
            # Find a safely-departing leaf and stuff its store.
            from repro.core import leave as leave_protocol

            victim = next(
                peer
                for peer in anet.net.peers.values()
                if leave_protocol.can_depart_simply(peer)
            )
            victim.store.extend([victim.range.low] * load)
            future = anet.submit_leave(victim.address)
            anet.drain()
            assert future.succeeded
            latencies[load] = future.transit
        # 195 extra keys over bandwidth 2.0 => ~97.5 extra time units.
        assert latencies[200] > latencies[5] + 50

    def test_multiway_merge_transfer_is_sized(self):
        """The multiway leaf-detach store merge pays the bandwidth term."""
        latencies = {}
        for load in (5, 200):
            net = MultiwayNetwork(seed=2)
            net.bootstrap()
            for _ in range(11):
                net.join()
            anet = AsyncMultiwayNetwork(
                net, topology=one_region_bandwidth_topology()
            )
            victim_address = next(
                address
                for address, node in sorted(net.nodes.items())
                if node.is_leaf
            )
            net.nodes[victim_address].store.extend(
                [net.nodes[victim_address].range.low] * load
            )
            future = anet.submit_leave(victim_address)
            anet.drain()
            assert future.succeeded
            latencies[load] = future.transit
        assert latencies[200] > latencies[5] + 50


class TestBatchedReplicaRefresh:
    def build(self, n_peers=25, seed=9, topology=None):
        anet = AsyncBatonNetwork(
            BatonNetwork.build(
                n_peers, seed=seed, config=BatonConfig(replication=True)
            ),
            topology=topology or ConstantLatency(1.0),
        )
        anet.net.bulk_load(uniform_keys(200, seed=4))
        return anet

    def mirrors(self, net):
        from collections import Counter

        counter = Counter()
        for peer in net.peers.values():
            for keys in peer.replicas.values():
                counter.update(keys)
        return counter

    def stored(self, net):
        from collections import Counter

        counter = Counter()
        for peer in net.peers.values():
            counter.update(peer.store)
        return counter

    def test_sweep_mirrors_every_store_with_one_future(self):
        anet = self.build()
        future = anet.submit_replica_refresh_sweep()
        anet.drain()
        assert future.succeeded
        assert self.mirrors(anet.net) == self.stored(anet.net)
        # one future for the whole round, not one per peer
        assert sum(1 for op in anet.ops if "refresh" in op.kind) == 1
        assert future.hops > 0 and future.result > 0

    def test_sweep_message_count_matches_per_peer_refresh(self):
        sweep_net = self.build()
        perpeer_net = self.build()
        sweep_future = sweep_net.submit_replica_refresh_sweep()
        sweep_net.drain()
        futures = perpeer_net.submit_replica_refresh()
        perpeer_net.drain()
        assert sweep_future.succeeded and all(f.succeeded for f in futures)
        assert sweep_future.result == sum(f.result for f in futures)
        assert sweep_net.bus.stats.total == perpeer_net.bus.stats.total
        assert self.mirrors(sweep_net.net) == self.mirrors(perpeer_net.net)

    def test_sweep_prices_sized_hops(self):
        anet = self.build(topology=one_region_bandwidth_topology())
        future = anet.submit_replica_refresh_sweep()
        anet.drain()
        assert future.succeeded
        total_keys = sum(len(p.store) for p in anet.net.peers.values())
        # Every refresh pays 1.0 propagation + size/2.0 serialization.
        expected = future.hops * 1.0 + total_keys / 2.0
        assert future.transit == pytest.approx(expected, rel=0.05)

    def test_sweep_capability_gated(self):
        from repro.chord.runtime import AsyncChordNetwork
        from repro.util.errors import CapabilityError

        anet = AsyncChordNetwork.build(8, seed=1)
        with pytest.raises(CapabilityError):
            anet.submit_replica_refresh_sweep()


class TestLatencyStretch:
    def run_workload(self, topology=None, **config_kwargs):
        anet = AsyncBatonNetwork(
            BatonNetwork.build(60, seed=5),
            topology=topology or ConstantLatency(1.0),
        )
        keys = uniform_keys(400, seed=6)
        anet.net.bulk_load(keys)
        defaults = dict(duration=30.0, churn_rate=0.0, query_rate=6.0)
        defaults.update(config_kwargs)
        report = run_concurrent_workload(
            anet, keys, ConcurrentConfig(**defaults), seed=5
        )
        return anet, report

    def test_stretch_reported_and_ordered(self):
        _anet, report = self.run_workload()
        assert report.latency_stretch_p50 > 0
        assert report.latency_stretch_p99 >= report.latency_stretch_p50
        assert "latency stretch" in "\n".join(report.summary_lines())

    def test_stretch_is_at_least_one_hop_on_constant_latency(self):
        # With every link costing 1.0, transit-minus-ingress is the overlay
        # hop count and the direct link is 1.0, so stretch == routed hops
        # per query >= 1 for any query not answered at its entry peer.
        _anet, report = self.run_workload()
        assert report.latency_stretch_p50 >= 1.0

    def test_stretch_independent_of_inter_region_scale(self):
        """Stretch is a ratio: doubling all link costs leaves it put."""
        reports = {}
        for scale in (1.0, 4.0):
            topology = ClusteredTopology(
                7,
                regions=3,
                intra_delay=0.5 * scale,
                inter_delay=5.0 * scale,
                jitter=0.0,
                asymmetry=0.0,
            )
            _anet, report = self.run_workload(topology=topology)
            reports[scale] = report
        assert reports[1.0].latency_stretch_p50 == pytest.approx(
            reports[4.0].latency_stretch_p50, rel=1e-6
        )
        # ... while the absolute latency did scale.
        assert (
            reports[4.0].query_latency_p50
            > 2 * reports[1.0].query_latency_p50
        )


class TestDirectDelay:
    def test_scalar_models_use_expectation_without_consuming_stream(self):
        rng = SeededRng(3)
        model = UniformLatency(1.0, 3.0, rng)
        before = model.sample(1, 2)  # consumes
        assert model.direct_delay(1, 2) == pytest.approx(2.0)
        assert model.direct_delay(None, 5) == pytest.approx(2.0)
        exp = ExponentialLatency(2.5, SeededRng(4))
        assert exp.direct_delay(1, 2) == pytest.approx(2.5)
        assert ConstantLatency(1.5).direct_delay(9, 9) == 1.5
        assert before >= 1.0  # sanity on the consumed draw

    def test_clustered_direct_delay_is_unjittered_base(self):
        topology = ClusteredTopology(
            5, regions=3, intra_delay=0.5, inter_delay=4.0, jitter=0.5
        )
        addresses = list(range(1, 40))
        src = addresses[0]
        same = next(
            a for a in addresses[1:]
            if topology.region_of(a) == topology.region_of(src)
        )
        far = next(
            a for a in addresses[1:]
            if topology.region_of(a) != topology.region_of(src)
        )
        assert topology.direct_delay(src, same) == pytest.approx(0.5)
        expected = 4.0 * topology._pair_factor(
            topology.region_of(src), topology.region_of(far)
        )
        assert topology.direct_delay(src, far) == pytest.approx(expected)
        # deterministic: repeated queries identical (no jitter consumed)
        assert topology.direct_delay(src, far) == topology.direct_delay(src, far)

    def test_coordinate_direct_delay_matches_geometry(self):
        import math

        topology = CoordinateTopology(3, base_delay=0.2, unit_delay=2.0, jitter=0.3)
        x1, y1 = topology.coordinates_of(1)
        x2, y2 = topology.coordinates_of(2)
        expected = 0.2 + 2.0 * math.hypot(x1 - x2, y1 - y2)
        assert topology.direct_delay(1, 2) == pytest.approx(expected)


class TestOptInEventLog:
    def test_event_log_off_by_request_same_outcomes(self):
        def run(record: bool):
            anet = AsyncBatonNetwork(
                BatonNetwork.build(40, seed=8),
                latency=ExponentialLatency(1.0, SeededRng(2).child("lat")),
                record_events=record,
                retain_ops=record,
            )
            keys = uniform_keys(200, seed=3)
            anet.net.bulk_load(keys)
            report = run_concurrent_workload(
                anet,
                keys,
                ConcurrentConfig(duration=20.0, churn_rate=0.5, query_rate=4.0),
                seed=9,
            )
            return anet, report

        on_net, on_report = run(True)
        off_net, off_report = run(False)
        assert on_net.event_log and not off_net.event_log
        assert on_net.ops and not off_net.ops
        # Recording is pure observation: the simulated run is identical.
        assert on_report == off_report
        assert on_net.sim.executed_count == off_net.sim.executed_count


class TestScaleProfile:
    def test_profile_run_reports_phases(self):
        row = scale_profile.profile_run(
            40, seed=0, duration=10.0, query_rate=4.0, data_per_node=5
        )
        assert row["n_peers"] == 40
        assert row["build_s"] > 0 and row["drive_s"] > 0
        assert row["events"] > 0 and row["events_per_s"] > 0
        assert row["peak_heap"] > 0
        assert 0.0 <= row["success"] <= 1.0

    def test_stretch_distinct_from_latency(self):
        # Regression: the client ingress leg used to leak into the stretch
        # numerator, and with a unit-mean direct link that made stretch_p50
        # a byte-for-byte copy of p50 in every committed benchmark row.
        # Net of the ingress leg, stretch is strictly the shorter quantity.
        row = scale_profile.profile_run(
            40, seed=0, duration=10.0, query_rate=4.0, data_per_node=5
        )
        assert row["stretch_p50"] > 0
        assert row["stretch_p50"] < row["p50"]

    def test_profile_run_build_modes(self):
        kwargs = dict(seed=0, duration=5.0, query_rate=4.0, data_per_node=5)
        bulk_row = scale_profile.profile_run(40, **kwargs)
        join_row = scale_profile.profile_run(40, bulk=False, **kwargs)
        assert bulk_row["build"] == "bulk"
        assert join_row["build"] == "join"
        assert bulk_row["peak_rss_mb"] > 0
        # Identical workload volume either way; only construction differs.
        assert bulk_row["queries"] > 0

    def test_run_sweeps_scale_sizes(self):
        from repro.experiments.harness import ExperimentScale

        scale = ExperimentScale(
            sizes=(20, 40), seeds=(0,), data_per_node=5, n_queries=20, n_trials=5
        )
        result = scale_profile.run(scale)
        assert [row["n_peers"] for row in result.rows] == [20, 40]
        assert all(row["drive_s"] > 0 for row in result.rows)

    def test_write_benchmark_schema(self, tmp_path):
        import json

        path = tmp_path / "BENCH_scale.json"
        payload = scale_profile.write_benchmark(str(path), sizes=(30,))
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == scale_profile.BENCH_SCHEMA
        assert on_disk["rows"][0]["n_peers"] == 30
        assert payload["rows"][0]["total_s"] == pytest.approx(
            on_disk["rows"][0]["build_s"] + on_disk["rows"][0]["drive_s"], abs=1e-3
        )

    def test_cli_profile_command(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(["profile", "--peers", "30", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "N=30" in printed
        assert out.exists()
