"""Tests for the concurrent-workload driver (repro.workloads.concurrent)."""

import pytest

from repro.core import check_invariants
from repro.core.network import BatonNetwork
from repro.sim.latency import ExponentialLatency
from repro.sim.runtime import AsyncBatonNetwork
from repro.util.rng import SeededRng
from repro.workloads.concurrent import (
    ConcurrentConfig,
    percentile,
    run_concurrent_workload,
)
from repro.workloads.generators import uniform_keys


def run_workload(seed: int = 7, **config_kwargs):
    anet = AsyncBatonNetwork(
        BatonNetwork.build(80, seed=1),
        latency=ExponentialLatency(1.0, SeededRng(seed).child("latency")),
    )
    keys = uniform_keys(800, seed=2)
    anet.net.bulk_load(keys)
    defaults = dict(duration=40.0, churn_rate=1.0, query_rate=6.0)
    defaults.update(config_kwargs)
    config = ConcurrentConfig(**defaults)
    report = run_concurrent_workload(anet, keys, config, seed=seed)
    return anet, report


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.5) == 5.0
        assert percentile(values, 0.9) == 9.0
        assert percentile(values, 1.0) == 10.0
        assert percentile([42.0], 0.99) == 42.0
        assert percentile([], 0.5) == 0.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)


class TestConfigValidation:
    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            ConcurrentConfig(churn_rate=-1.0)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            ConcurrentConfig(fail_fraction=1.5)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            ConcurrentConfig(duration=0.0)


class TestDriver:
    def test_reports_membership_and_queries(self):
        anet, report = run_workload()
        assert report.query_total > 0
        assert report.completed + report.failed == sum(report.submitted.values())
        assert report.joins_applied == report.submitted.get("join", 0)
        assert report.final_size == anet.net.size
        assert report.max_in_flight > 1
        assert 0.0 <= report.query_success_rate <= 1.0

    def test_quiet_network_answers_everything(self):
        _anet, report = run_workload(churn_rate=0.0)
        assert report.failed == 0
        assert report.query_success_rate == 1.0
        assert report.exact_hits == report.exact_total

    def test_latency_percentiles_ordered(self):
        _anet, report = run_workload()
        assert (
            report.query_latency_p50
            <= report.query_latency_p90
            <= report.query_latency_p99
        )
        assert report.query_latency_mean > 0

    def test_deterministic_reports(self):
        anet1, report1 = run_workload()
        anet2, report2 = run_workload()
        assert anet1.event_log == anet2.event_log
        assert report1 == report2

    def test_seed_changes_the_run(self):
        _a1, report1 = run_workload(seed=7)
        _a2, report2 = run_workload(seed=8)
        assert report1 != report2

    def test_invariants_after_run_with_failures(self):
        anet, report = run_workload(fail_fraction=0.3, duration=30.0)
        check_invariants(anet.net)  # post-run repair + reconcile cleaned up
        assert not anet.net.ghosts

    def test_population_floor_respected(self):
        anet, report = run_workload(
            join_fraction=0.0, churn_rate=4.0, min_peers=70, duration=30.0
        )
        assert anet.net.size >= 70 - report.submitted.get("leave", 0)
        # the floor keeps the network from draining
        assert report.skipped_departures > 0 or anet.net.size >= 70

    def test_range_queries_report_completeness(self):
        _anet, report = run_workload(range_fraction=1.0, churn_rate=0.0)
        assert report.range_total > 0
        assert report.exact_total == 0
        assert report.range_complete == report.range_total

    def test_summary_lines_render(self):
        _anet, report = run_workload()
        text = "\n".join(report.summary_lines())
        assert "query success rate" in text
        assert "p50/p90/p99" in text


class TestDurabilityReporting:
    def replicated_run(self, seed: int = 7, **config_kwargs):
        from repro.core.network import BatonConfig

        anet = AsyncBatonNetwork(
            BatonNetwork.build(
                60, seed=1, config=BatonConfig(replication=True)
            ),
            latency=ExponentialLatency(1.0, SeededRng(seed).child("latency")),
        )
        keys = uniform_keys(600, seed=2)
        anet.net.bulk_load(keys)
        anet.net.refresh_replicas()
        defaults = dict(
            duration=30.0,
            churn_rate=0.8,
            query_rate=4.0,
            insert_rate=0.5,
            fail_fraction=1.0,
            repair_delay=2.0,
            maintenance_interval=5.0,
            min_peers=30,
        )
        defaults.update(config_kwargs)
        config = ConcurrentConfig(**defaults)
        report = run_concurrent_workload(anet, keys, config, seed=seed)
        return anet, report

    def test_maintenance_traffic_is_counted(self):
        _anet, report = self.replicated_run()
        assert report.reconcile_sweeps > 0
        assert report.reconcile_messages > 0
        assert report.replica_refresh_sweeps == report.reconcile_sweeps
        assert report.replica_messages > 0
        assert "reconcile msgs" in "\n".join(report.summary_lines())

    def test_in_window_repairs_report_recovery(self):
        anet, report = self.replicated_run()
        if report.fails_applied:
            assert report.submitted.get("repair", 0) > 0
            assert report.repairs_applied > 0
            assert report.recovery_latency_max >= report.recovery_latency_p50
            assert report.recovery_latency_p50 > 0
        assert not anet.net.ghosts  # end-of-run repair swept any leftovers

    def test_insert_keys_recorded_for_durability_accounting(self):
        _anet, report = self.replicated_run()
        applied = report.submitted.get("insert", 0)
        assert len(report.insert_keys_applied) <= applied
        if applied:
            assert len(report.insert_keys_applied) > 0

    def test_repair_delay_validated(self):
        with pytest.raises(ValueError):
            ConcurrentConfig(repair_delay=-0.5)

    def test_deterministic_with_durability_features(self):
        first_anet, first = self.replicated_run()
        second_anet, second = self.replicated_run()
        assert first_anet.event_log == second_anet.event_log
        assert first.keys_recovered == second.keys_recovered
        assert first.reconcile_messages == second.reconcile_messages
