"""Unit tests for the message bus (repro.net)."""

import pytest

from repro.net.address import Address, AddressAllocator
from repro.net.bus import MessageBus
from repro.net.message import Message, MsgType
from repro.util.errors import PeerNotFoundError


class TestAllocator:
    def test_addresses_unique_and_increasing(self):
        alloc = AddressAllocator()
        a, b, c = alloc.allocate(), alloc.allocate(), alloc.allocate()
        assert len({a, b, c}) == 3
        assert alloc.allocated_count == 3

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            AddressAllocator(start=-5)


class TestLiveness:
    def test_register_unregister(self):
        bus = MessageBus()
        bus.register(Address(1))
        assert bus.is_alive(Address(1))
        assert bus.live_count == 1
        bus.unregister(Address(1))
        assert not bus.is_alive(Address(1))

    def test_send_to_dead_raises_after_counting(self):
        bus = MessageBus()
        bus.register(Address(1))
        with pytest.raises(PeerNotFoundError):
            bus.send_typed(Address(1), Address(2), MsgType.SEARCH)
        # the wasted message was still paid for
        assert bus.stats.total == 1


class TestAccounting:
    def test_totals_by_type(self):
        bus = MessageBus()
        for addr in (1, 2):
            bus.register(Address(addr))
        bus.send_typed(Address(1), Address(2), MsgType.SEARCH)
        bus.send_typed(Address(2), Address(1), MsgType.SEARCH)
        bus.send_typed(Address(1), Address(2), MsgType.INSERT)
        assert bus.stats.total == 3
        assert bus.stats.by_type[MsgType.SEARCH] == 2
        assert bus.stats.per_peer[Address(2)] == 2

    def test_level_resolver_buckets_load(self):
        bus = MessageBus()
        for addr in (1, 2):
            bus.register(Address(addr))
        bus.set_level_resolver(lambda addr: {1: 0, 2: 3}.get(addr))
        bus.send_typed(Address(1), Address(2), MsgType.INSERT)
        bus.send_typed(Address(2), Address(1), MsgType.INSERT)
        loads = bus.stats.level_load(MsgType.INSERT)
        assert loads == {3: 1, 0: 1}

    def test_level_load_filters_by_type(self):
        bus = MessageBus()
        bus.register(Address(1))
        bus.set_level_resolver(lambda addr: 1)
        bus.send_typed(Address(1), Address(1), MsgType.SEARCH)
        assert bus.stats.level_load(MsgType.INSERT) == {}


class TestTraces:
    def test_trace_scopes_messages(self):
        bus = MessageBus()
        for addr in (1, 2):
            bus.register(Address(addr))
        bus.send_typed(Address(1), Address(2), MsgType.SEARCH)
        with bus.trace("op") as trace:
            bus.send_typed(Address(1), Address(2), MsgType.SEARCH)
            bus.send_typed(Address(2), Address(1), MsgType.RESPONSE)
        assert trace.total == 2
        assert trace.count(MsgType.SEARCH) == 1
        assert trace.count() == 2
        assert bus.stats.total == 3

    def test_nested_traces_both_counted(self):
        bus = MessageBus()
        bus.register(Address(1))
        with bus.trace("outer") as outer:
            with bus.trace("inner") as inner:
                bus.send_typed(Address(1), Address(1), MsgType.SEARCH)
        assert outer.total == 1
        assert inner.total == 1

    def test_trace_path_records_destinations(self):
        bus = MessageBus()
        for addr in (1, 2, 3):
            bus.register(Address(addr))
        with bus.trace("walk") as trace:
            bus.send_typed(Address(1), Address(2), MsgType.SEARCH)
            bus.send_typed(Address(2), Address(3), MsgType.SEARCH)
        assert trace.path == [Address(2), Address(3)]


class TestMessage:
    def test_message_ids_unique(self):
        a = Message(Address(1), Address(2), MsgType.SEARCH)
        b = Message(Address(1), Address(2), MsgType.SEARCH)
        assert a.msg_id != b.msg_id

    def test_str_is_informative(self):
        m = Message(Address(1), Address(2), MsgType.SEARCH)
        assert "search" in str(m)
        assert "1->2" in str(m)
