"""Unit tests for links and routing tables (repro.core.links)."""

import pytest

from repro.core.ids import Position
from repro.core.links import LEFT, RIGHT, NodeInfo, RoutingTable
from repro.core.ranges import Range
from repro.net.address import Address


def info_at(level: int, number: int, address: int = 99, **kwargs) -> NodeInfo:
    return NodeInfo(
        address=Address(address),
        position=Position(level, number),
        range=Range(0, 10),
        **kwargs,
    )


class TestNodeInfo:
    def test_children_flags(self):
        bare = info_at(2, 1)
        assert not bare.has_any_child
        assert not bare.has_both_children
        one = info_at(2, 1, left_child=Address(5))
        assert one.has_any_child
        assert not one.has_both_children
        both = info_at(2, 1, left_child=Address(5), right_child=Address(6))
        assert both.has_both_children

    def test_copy_is_independent(self):
        original = info_at(2, 1)
        clone = original.copy()
        clone.left_child = Address(77)
        assert original.left_child is None


class TestRoutingTableGeometry:
    def test_valid_indices_edge(self):
        table = RoutingTable(owner=Position(3, 1), side=LEFT)
        assert list(table.valid_indices()) == []

    def test_valid_indices_interior(self):
        table = RoutingTable(owner=Position(3, 8), side=LEFT)
        assert list(table.valid_indices()) == [0, 1, 2]

    def test_rejects_bad_side(self):
        with pytest.raises(ValueError):
            RoutingTable(owner=Position(2, 1), side="up")

    def test_entries_prepopulated_null(self):
        table = RoutingTable(owner=Position(3, 1), side=RIGHT)
        assert table.entries == [None, None, None]


class TestRoutingTableAccess:
    def test_set_and_get(self):
        table = RoutingTable(owner=Position(3, 4), side=RIGHT)
        entry = info_at(3, 5)
        table.set(0, entry)
        assert table.get(0) is entry

    def test_set_rejects_out_of_range_index(self):
        table = RoutingTable(owner=Position(3, 8), side=RIGHT)
        with pytest.raises(ValueError):
            table.set(0, info_at(3, 1))

    def test_set_rejects_mismatched_position(self):
        table = RoutingTable(owner=Position(3, 4), side=RIGHT)
        with pytest.raises(ValueError):
            table.set(0, info_at(3, 7))

    def test_occupied_iterates_nearest_first(self):
        table = RoutingTable(owner=Position(3, 1), side=RIGHT)
        table.set(2, info_at(3, 5, address=50))
        table.set(0, info_at(3, 2, address=20))
        assert [info.address for _, info in table.occupied()] == [20, 50]

    def test_addresses(self):
        table = RoutingTable(owner=Position(3, 1), side=RIGHT)
        table.set(1, info_at(3, 3, address=30))
        assert table.addresses() == [30]


class TestPaperPredicates:
    def test_empty_table_is_vacuously_full(self):
        table = RoutingTable(owner=Position(0, 1), side=LEFT)
        assert table.is_full()

    def test_full_detection(self):
        table = RoutingTable(owner=Position(3, 1), side=RIGHT)
        assert not table.is_full()
        table.set(0, info_at(3, 2))
        table.set(1, info_at(3, 3))
        table.set(2, info_at(3, 5))
        assert table.is_full()

    def test_first_missing_index(self):
        table = RoutingTable(owner=Position(3, 1), side=RIGHT)
        table.set(0, info_at(3, 2))
        assert table.first_missing_index() == 1

    def test_nodes_missing_children(self):
        table = RoutingTable(owner=Position(3, 1), side=RIGHT)
        table.set(0, info_at(3, 2, address=20))
        table.set(1, info_at(3, 3, address=30, left_child=Address(1), right_child=Address(2)))
        missing = table.nodes_missing_children()
        assert [info.address for info in missing] == [20]

    def test_nodes_with_children(self):
        table = RoutingTable(owner=Position(3, 1), side=RIGHT)
        table.set(0, info_at(3, 2, address=20))
        table.set(1, info_at(3, 3, address=30, left_child=Address(1)))
        with_children = table.nodes_with_children()
        assert [info.address for info in with_children] == [30]

    def test_farthest_satisfying(self):
        table = RoutingTable(owner=Position(3, 1), side=RIGHT)
        table.set(0, info_at(3, 2, address=20))
        table.set(2, info_at(3, 5, address=50))
        found = table.farthest_satisfying(lambda info: True)
        assert found.address == 50
        none = table.farthest_satisfying(lambda info: info.address == 999)
        assert none is None

    def test_entry_for_address(self):
        table = RoutingTable(owner=Position(3, 1), side=RIGHT)
        table.set(1, info_at(3, 3, address=30))
        index, info = table.entry_for_address(Address(30))
        assert index == 1
        assert table.entry_for_address(Address(31)) is None
