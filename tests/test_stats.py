"""Tests for the streaming statistics accumulators (repro.util.stats)."""

import random

import pytest

from repro.util.stats import StreamingQuantiles
from repro.workloads.concurrent import percentile


class TestStreamingQuantiles:
    def test_empty(self):
        q = StreamingQuantiles()
        assert q.count == 0
        assert q.mean == 0.0
        assert q.quantile(0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingQuantiles(lo=0.0)
        with pytest.raises(ValueError):
            StreamingQuantiles(lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            StreamingQuantiles(bins_per_decade=0)
        q = StreamingQuantiles()
        q.add(1.0)
        with pytest.raises(ValueError):
            q.quantile(0.0)
        with pytest.raises(ValueError):
            q.quantile(1.5)

    def test_exact_aggregates(self):
        q = StreamingQuantiles()
        values = [0.5, 2.0, 8.0, 1.0, 4.0]
        for value in values:
            q.add(value)
        assert q.count == len(values)
        assert q.min == 0.5
        assert q.max == 8.0
        assert q.mean == pytest.approx(sum(values) / len(values))

    def test_single_value_every_quantile(self):
        q = StreamingQuantiles()
        q.add(42.0)
        for quant in (0.01, 0.5, 0.99, 1.0):
            assert q.quantile(quant) == pytest.approx(42.0)

    def test_quantiles_monotone_in_q(self):
        rng = random.Random(7)
        q = StreamingQuantiles()
        for _ in range(5000):
            q.add(rng.expovariate(0.2))
        estimates = [q.quantile(x / 100) for x in range(1, 101)]
        assert estimates == sorted(estimates)

    def test_tracks_nearest_rank_percentile_closely(self):
        """Log-binned estimates stay within the bin's relative width."""
        rng = random.Random(3)
        values = [rng.expovariate(1.0) + 0.01 for _ in range(20000)]
        q = StreamingQuantiles()
        for value in values:
            q.add(value)
        for quant in (0.5, 0.9, 0.99):
            exact = percentile(values, quant)
            assert q.quantile(quant) == pytest.approx(exact, rel=0.05)

    def test_out_of_range_samples_clamped_by_min_max(self):
        q = StreamingQuantiles(lo=1e-3, hi=1e3)
        q.add(1e-9)  # below resolution: first bin, clamped to exact min
        q.add(1e9)  # above resolution: last bin, clamped to exact max
        assert q.quantile(0.5) == pytest.approx(1e-9)
        assert q.quantile(1.0) == pytest.approx(1e9)

    def test_zero_and_negative_land_in_first_bin(self):
        q = StreamingQuantiles()
        q.add(0.0)
        q.add(-1.0)
        q.add(5.0)
        assert q.count == 3
        assert q.quantile(0.34) == pytest.approx(-1.0)  # clamped to min

    def test_deterministic_across_identical_streams(self):
        def one(seed):
            rng = random.Random(seed)
            q = StreamingQuantiles()
            for _ in range(1000):
                q.add(rng.random() * 100)
            return [q.quantile(x / 10) for x in range(1, 11)], q.mean

        assert one(11) == one(11)
        assert one(11) != one(12)
