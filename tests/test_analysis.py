"""Tests for trace analysis helpers (repro.experiments.analysis)."""

from repro.experiments import analysis
from repro.net.bus import Trace
from repro.net.message import Message, MsgType
from repro.net.address import Address


def make_trace(counts: dict[MsgType, int]) -> Trace:
    trace = Trace(label="t")
    for mtype, n in counts.items():
        for _ in range(n):
            trace.record(Message(Address(1), Address(2), mtype))
    return trace


class TestBreakdown:
    def test_aggregates_types(self):
        traces = [
            make_trace({MsgType.SEARCH: 3, MsgType.RESPONSE: 1}),
            make_trace({MsgType.SEARCH: 2}),
        ]
        result = analysis.breakdown(traces)
        assert result.total == 6
        assert result.by_type["search"] == 5
        assert result.by_type["response"] == 1

    def test_to_text_sorted_by_count(self):
        result = analysis.breakdown([make_trace({MsgType.SEARCH: 5, MsgType.INSERT: 1})])
        text = result.to_text()
        assert text.index("search") < text.index("insert")

    def test_empty(self):
        assert analysis.breakdown([]).total == 0


class TestSummarize:
    def test_basic_stats(self):
        summary = analysis.summarize([1, 2, 3, 4, 100])
        assert summary.count == 5
        assert summary.maximum == 100
        assert 20 <= summary.mean <= 23
        assert summary.p50 == 3

    def test_empty(self):
        assert analysis.summarize([]).count == 0

    def test_text(self):
        assert "mean=" in analysis.summarize([1.0]).to_text()


class TestSparkline:
    def test_length_capped(self):
        assert len(analysis.sparkline(list(range(100)), width=20)) == 20

    def test_monotone_series_rises(self):
        line = analysis.sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], width=10)
        assert line[0] != line[-1]

    def test_empty(self):
        assert analysis.sparkline([]) == ""

    def test_all_zero(self):
        assert set(analysis.sparkline([0, 0, 0])) == {" "}


class TestHistogram:
    def test_bucket_counts(self):
        text = analysis.histogram_text([1, 1, 2, 5, 9, 100], bucket_edges=[2, 8])
        lines = text.splitlines()
        assert "3" in lines[0]  # <=2 bucket holds 1,1,2
        assert "> 8" in lines[-1]

    def test_empty(self):
        assert "no samples" in analysis.histogram_text([], [1])
