"""Protocol tests: network restructuring (§III-E forced shifts)."""

import pytest

from repro.core import BatonNetwork, check_invariants
from repro.core.ids import Position
from repro.core.links import LEFT, RIGHT
from repro.core.peer import BatonPeer
from repro.core.ranges import Range
from repro.core import restructure
from repro.core.leave import can_depart_simply

from tests.conftest import make_network


class TestMapHelpers:
    def test_inorder_neighbors_match_sorted_order(self):
        net = make_network(45, seed=2)
        import functools

        positions = sorted(
            net._positions,
            key=functools.cmp_to_key(
                lambda a, b: -1 if a.inorder_lt(b) else (1 if b.inorder_lt(a) else 0)
            ),
        )
        for before, after in zip(positions, positions[1:]):
            assert restructure.inorder_neighbor_position(net, before, RIGHT) == after
            assert restructure.inorder_neighbor_position(net, after, LEFT) == before
        assert restructure.inorder_neighbor_position(net, positions[0], LEFT) is None
        assert restructure.inorder_neighbor_position(net, positions[-1], RIGHT) is None

    def test_map_snapshot_matches_peer(self):
        net = make_network(20, seed=3)
        for position, address in net._positions.items():
            snap = restructure.map_snapshot(net, position)
            peer = net.peer(address)
            assert snap.address == address
            assert snap.range == peer.range
            assert snap.left_child == net.occupant(position.left_child())

    def test_map_snapshot_of_empty_slot_is_none(self):
        net = make_network(5, seed=3)
        assert restructure.map_snapshot(net, Position(9, 1)) is None

    def test_refresh_links_reproduces_state(self):
        net = make_network(30, seed=4)
        victim = net.peer(net.random_peer_address())
        before = {
            "parent": victim.parent.address if victim.parent else None,
            "left": victim.left_adjacent.address if victim.left_adjacent else None,
            "right": victim.right_adjacent.address if victim.right_adjacent else None,
        }
        restructure.refresh_links_from_map(net, victim)
        after = {
            "parent": victim.parent.address if victim.parent else None,
            "left": victim.left_adjacent.address if victim.left_adjacent else None,
            "right": victim.right_adjacent.address if victim.right_adjacent else None,
        }
        assert before == after
        check_invariants(net)


def find_forced_parent(net: BatonNetwork) -> BatonPeer:
    """A leaf whose tables are not full: forced join there must restructure."""
    for peer in net.peers.values():
        if peer.is_leaf and not peer.tables_full() and peer.range.width > 4:
            return peer
    raise AssertionError("expected at least one frontier leaf with sparse tables")


class TestForcedJoin:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5])
    def test_forced_add_child_restores_invariants(self, seed):
        net = make_network(37, seed=seed)
        target = find_forced_parent(net)
        newcomer = BatonPeer(net.alloc.allocate(), Position(0, 1), Range(0, 1))
        side = LEFT if target.left_child is None else RIGHT
        moves = restructure.forced_add_child(net, target, side, newcomer)
        assert moves >= 1  # sparse tables mean a shift was required
        assert newcomer.address in net.peers
        check_invariants(net)

    def test_forced_add_child_on_acceptable_parent_is_plain_join(self):
        net = make_network(37, seed=3)
        target = next(p for p in net.peers.values() if p.can_accept_child())
        newcomer = BatonPeer(net.alloc.allocate(), Position(0, 1), Range(0, 1))
        side = LEFT if target.left_child is None else RIGHT
        moves = restructure.forced_add_child(net, target, side, newcomer)
        assert moves == 0
        check_invariants(net)

    def test_forced_join_splits_content(self):
        net = make_network(37, seed=1)
        target = find_forced_parent(net)
        for key in range(target.range.low, target.range.low + 50):
            target.store.insert(key)
        newcomer = BatonPeer(net.alloc.allocate(), Position(0, 1), Range(0, 1))
        side = LEFT if target.left_child is None else RIGHT
        restructure.forced_add_child(net, target, side, newcomer)
        assert len(newcomer.store) == 25
        assert len(target.store) == 25

    def test_shift_sizes_recorded(self):
        net = make_network(37, seed=0)
        before = len(net.stats.restructure_shift_sizes)
        target = find_forced_parent(net)
        newcomer = BatonPeer(net.alloc.allocate(), Position(0, 1), Range(0, 1))
        side = LEFT if target.left_child is None else RIGHT
        restructure.forced_add_child(net, target, side, newcomer)
        assert len(net.stats.restructure_shift_sizes) == before + 1


class TestForcedRemoval:
    def find_unsafe_leaf(self, net: BatonNetwork) -> BatonPeer:
        for peer in net.peers.values():
            if peer.is_leaf and not can_depart_simply(peer) and peer.parent:
                return peer
        raise AssertionError("expected an unsafe leaf")

    @pytest.mark.parametrize("seed", [0, 1, 4])
    def test_depart_with_restructure_restores_invariants(self, seed):
        net = make_network(41, seed=seed)
        victim = self.find_unsafe_leaf(net)
        moves = restructure.depart_with_restructure(
            net, victim, content_target="right_adjacent"
        )
        assert victim.address not in net.peers
        assert moves >= 1
        check_invariants(net)

    def test_content_flows_to_named_adjacent(self):
        net = make_network(41, seed=2)
        victim = self.find_unsafe_leaf(net)
        victim.store.insert(victim.range.low)
        absorber_info = victim.right_adjacent or victim.left_adjacent
        key = victim.range.low
        restructure.depart_with_restructure(net, victim, content_target="right_adjacent")
        absorber = net.peer(absorber_info.address)
        assert key in absorber.store
        check_invariants(net)

    def test_rejects_internal_node(self):
        net = make_network(41, seed=2)
        internal = next(p for p in net.peers.values() if not p.is_leaf)
        from repro.util.errors import ProtocolError

        with pytest.raises(ProtocolError):
            restructure.depart_with_restructure(net, internal, content_target="parent")
