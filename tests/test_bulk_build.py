"""Bulk balanced build: equivalence with the join protocol, data loading,
and the sampled invariant checker that makes 100k-peer sanity affordable.

The heart of the construction contract (DESIGN.md): the bulk path is only
trustworthy because it is pinned link-for-link against Algorithm 1 driven
in the same canonical order, at every small N where running the protocol
is cheap.
"""

import os

import pytest

from repro.core.bulk_build import bulk_build, incremental_reference, tree_shape
from repro.core.invariants import (
    collect_violations,
    collect_violations_sampled,
)
from repro.core.network import BatonNetwork
from repro.core.ranges import Range
from repro.workloads.generators import uniform_keys

# Every population from degenerate to a perfect 3-level-plus tree, plus the
# power-of-two boundaries where the last row empties or begins.
EQUIVALENCE_SIZES = sorted(
    set(range(2, 65)) | {127, 128, 129, 255, 256, 257}
)


def assert_networks_identical(bulk: BatonNetwork, grown: BatonNetwork) -> None:
    """Address-for-address, link-for-link structural equality."""
    assert set(bulk.peers) == set(grown.peers)
    for address, expected in grown.peers.items():
        actual = bulk.peers[address]
        assert actual.position == expected.position
        assert actual.range == expected.range
        assert actual.parent == expected.parent
        assert actual.left_child == expected.left_child
        assert actual.right_child == expected.right_child
        assert actual.left_adjacent == expected.left_adjacent
        assert actual.right_adjacent == expected.right_adjacent
        assert actual.left_table == expected.left_table
        assert actual.right_table == expected.right_table


class TestTreeShape:
    def test_perfect_trees(self):
        assert tree_shape(1) == (1, 0)
        assert tree_shape(3) == (2, 0)
        assert tree_shape(7) == (3, 0)

    def test_partial_last_row(self):
        assert tree_shape(2) == (1, 1)
        assert tree_shape(4) == (2, 1)
        assert tree_shape(100_000) == (16, 34465)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            tree_shape(0)


class TestEquivalence:
    @pytest.mark.parametrize("n_peers", EQUIVALENCE_SIZES)
    def test_matches_incremental_join(self, n_peers):
        bulk = bulk_build(n_peers)
        grown = incremental_reference(n_peers)
        assert_networks_identical(bulk, grown)

    def test_bulk_sends_zero_messages(self):
        net = bulk_build(63)
        assert net.bus.stats.total == 0
        # ... while the protocol path necessarily pays join traffic.
        assert incremental_reference(63).bus.stats.total > 0

    def test_bulk_passes_full_invariant_check(self):
        assert collect_violations(bulk_build(100)) == []

    def test_requires_empty_network(self):
        net = BatonNetwork()
        net.bootstrap()
        from repro.core.bulk_build import populate_balanced

        with pytest.raises(ValueError, match="empty network"):
            populate_balanced(net, 10)

    def test_keys_require_bulk(self):
        with pytest.raises(ValueError, match="bulk"):
            BatonNetwork.build(8, keys=[1, 2, 3])


class TestDataLoadedBuild:
    def test_keys_land_in_owners(self):
        keys = uniform_keys(5000, seed=3)
        net = bulk_build(257, keys=keys)
        assert collect_violations(net) == []
        placed = sorted(
            key for peer in net.peers.values() for key in peer.store
        )
        assert placed == sorted(keys)

    def test_load_is_balanced(self):
        keys = uniform_keys(5000, seed=3)
        net = bulk_build(257, keys=keys)
        loads = sorted(len(peer.store) for peer in net.peers.values())
        # The balanced in-order partition deals ~K/N keys to every peer —
        # leaves and interior nodes alike (the §V balancing fixpoint).
        assert loads[0] >= (5000 // 257) - 2
        assert loads[-1] <= (5000 // 257) + 3

    def test_via_network_build_and_registry(self):
        from repro import overlays

        keys = uniform_keys(500, seed=1)
        direct = BatonNetwork.build(31, bulk=True, keys=keys)
        assert sum(len(p.store) for p in direct.peers.values()) == 500
        anet = overlays.get("baton").build_async(31, bulk=True, keys=keys)
        assert sum(len(p.store) for p in anet.net.peers.values()) == 500


class TestSampledChecker:
    def test_clean_network_has_no_violations(self):
        net = bulk_build(500, keys=uniform_keys(5000, seed=2))
        assert collect_violations_sampled(net, sample_size=500) == []

    def test_sample_smaller_than_network(self):
        net = bulk_build(500)
        assert collect_violations_sampled(net, sample_size=32) == []

    def test_catches_range_corruption(self):
        net = bulk_build(64)
        victim = next(iter(net.peers.values()))
        victim.range = Range(victim.range.low, victim.range.high + 7)
        errors = collect_violations_sampled(net, sample_size=64)
        assert errors, "sampled checker missed a corrupted range"

    def test_catches_broken_adjacency(self):
        net = bulk_build(64)
        for peer in net.peers.values():
            if peer.right_adjacent is not None:
                peer.right_adjacent = None
                break
        assert collect_violations_sampled(net, sample_size=64)

    def test_catches_dropped_table_entry(self):
        net = bulk_build(64)
        for peer in net.peers.values():
            if peer.left_table.entries:
                peer.left_table.entries[0] = None
                break
        assert collect_violations_sampled(net, sample_size=64)

    def test_budget_stops_early_without_error(self):
        net = bulk_build(500)
        assert collect_violations_sampled(net, budget_s=0.0001) == []

    def test_agrees_with_full_checker_on_misplaced_store(self):
        net = bulk_build(64, keys=uniform_keys(640, seed=5))
        victim = next(iter(net.peers.values()))
        victim.store.insert(victim.range.high)  # outside the owner's range
        full = collect_violations(net)
        sampled = collect_violations_sampled(net, sample_size=64)
        assert full and sampled


@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_SMOKE") != "1"
    and os.environ.get("REPRO_FULL_SCALE") != "1",
    reason="30k bulk-build smoke runs in the CI benchmark job",
)
def test_30k_bulk_build_smoke():
    """Scale stand-in for the N=100k cell: build, sample-check, query."""
    keys = uniform_keys(300_000, seed=0)
    net = bulk_build(30_000, keys=keys)
    assert net.size == 30_000
    assert collect_violations_sampled(net, sample_size=2048) == []
    for key in keys[:25]:
        assert net.search_exact(key).found
