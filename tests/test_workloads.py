"""Tests for workload generators (repro.workloads)."""

from collections import Counter

import pytest

from repro.core.ranges import Range
from repro.workloads import (
    ChurnEvent,
    UniformKeys,
    ZipfianKeys,
    churn_schedule,
    exact_queries,
    range_queries,
    uniform_keys,
    zipfian_keys,
)


class TestUniform:
    def test_keys_within_domain(self):
        for key in uniform_keys(500, seed=1):
            assert 1 <= key < 10**9

    def test_deterministic(self):
        assert uniform_keys(50, seed=7) == uniform_keys(50, seed=7)

    def test_seed_changes_stream(self):
        assert uniform_keys(50, seed=7) != uniform_keys(50, seed=8)

    def test_custom_domain(self):
        keys = uniform_keys(200, seed=2, domain=Range(100, 110))
        assert all(100 <= k < 110 for k in keys)

    def test_roughly_uniform_spread(self):
        keys = uniform_keys(5000, seed=3)
        low_half = sum(1 for k in keys if k < 5 * 10**8)
        assert 2200 <= low_half <= 2800


class TestZipfian:
    def test_keys_within_domain(self):
        for key in zipfian_keys(500, seed=1):
            assert 1 <= key < 10**9

    def test_deterministic(self):
        assert zipfian_keys(50, seed=7) == zipfian_keys(50, seed=7)

    def test_low_ranks_dominate(self):
        gen = ZipfianKeys(theta=1.0, n_ranks=1000, seed=4)
        ranks = Counter(gen.draw_rank() for _ in range(5000))
        assert ranks[1] > ranks.get(100, 0)
        top_ten = sum(ranks[r] for r in range(1, 11))
        assert top_ten > 5000 * 0.25  # heavy head for theta=1, K=1000

    def test_skew_concentrates_keys(self):
        keys = zipfian_keys(5000, theta=1.0, seed=5)
        hot = sum(1 for k in keys if k < 10**8)  # lowest 10% of the domain
        assert hot > 2500  # vastly above the uniform 10%

    def test_higher_theta_is_more_skewed(self):
        mild = ZipfianKeys(theta=0.5, n_ranks=1000, seed=6)
        harsh = ZipfianKeys(theta=1.5, n_ranks=1000, seed=6)
        mild_top = sum(1 for _ in range(2000) if mild.draw_rank() <= 10)
        harsh_top = sum(1 for _ in range(2000) if harsh.draw_rank() <= 10)
        assert harsh_top > mild_top

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianKeys(theta=0)
        with pytest.raises(ValueError):
            ZipfianKeys(n_ranks=0)


class TestQueries:
    def test_exact_queries_hit_loaded_keys(self):
        loaded = uniform_keys(100, seed=1)
        queries = exact_queries(loaded, 50, seed=2, hit_ratio=1.0)
        assert all(q in set(loaded) for q in queries)

    def test_exact_queries_miss_ratio(self):
        loaded = uniform_keys(100, seed=1)
        queries = exact_queries(loaded, 400, seed=2, hit_ratio=0.5)
        hits = sum(1 for q in queries if q in set(loaded))
        assert 120 <= hits <= 280

    def test_range_queries_span_selectivity(self):
        for low, high in range_queries(100, selectivity=0.01, seed=3):
            assert high - low == int(10**9 * 0.01) or high - low >= 1
            assert 1 <= low < high <= 10**9

    def test_range_queries_validation(self):
        with pytest.raises(ValueError):
            range_queries(10, selectivity=0.0)


class TestChurn:
    def test_schedule_ordered_in_time(self):
        events = churn_schedule(100, seed=4)
        times = [event.at for event in events]
        assert times == sorted(times)
        assert all(isinstance(e, ChurnEvent) for e in events)

    def test_join_fraction(self):
        events = churn_schedule(2000, join_fraction=0.8, seed=5)
        joins = sum(1 for e in events if e.kind == "join")
        assert 1450 <= joins <= 1750

    def test_rate_controls_density(self):
        slow = churn_schedule(200, rate=0.5, seed=6)
        fast = churn_schedule(200, rate=5.0, seed=6)
        assert fast[-1].at < slow[-1].at

    def test_validation(self):
        with pytest.raises(ValueError):
            churn_schedule(10, join_fraction=1.5)
        with pytest.raises(ValueError):
            churn_schedule(10, rate=0)
