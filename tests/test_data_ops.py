"""Protocol tests: insert and delete (§IV-C), including range expansion."""

import pytest

from repro.core import BatonConfig, BatonNetwork, check_invariants
from repro.core.ranges import Range
from repro.net.message import MsgType

from tests.conftest import make_network


class TestInsertDelete:
    def test_insert_then_search(self, net20):
        net20.insert(777_777)
        assert net20.search_exact(777_777).found

    def test_insert_lands_in_owner_range(self, net100, rng):
        for _ in range(50):
            key = rng.randint(1, 10**9 - 1)
            result = net100.insert(key)
            assert net100.peer(result.owner).range.contains(key)

    def test_delete_removes_exactly_one(self, net20):
        net20.insert(5_000)
        net20.insert(5_000)
        assert net20.delete(5_000).applied
        assert net20.search_exact(5_000).found
        assert net20.delete(5_000).applied
        assert not net20.search_exact(5_000).found

    def test_delete_missing_not_applied(self, net20):
        assert not net20.delete(123).applied

    def test_insert_messages_tagged(self, net20):
        result = net20.insert(42_000_000)
        assert result.trace.total == result.trace.count(MsgType.INSERT)

    def test_delete_messages_tagged(self, net20):
        net20.insert(42_000_000)
        result = net20.delete(42_000_000)
        assert result.trace.total == result.trace.count(MsgType.DELETE)

    def test_costs_comparable_to_search(self, net100, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(100)]
        insert_costs = [net100.insert(k).trace.total for k in keys]
        search_costs = [net100.search_exact(k).trace.total for k in keys]
        assert abs(
            sum(insert_costs) / len(keys) - sum(search_costs) / len(keys)
        ) <= 1.0


class TestRangeExpansion:
    def narrow_net(self, n_peers=12) -> BatonNetwork:
        config = BatonConfig(domain=Range(1000, 2000))
        net = BatonNetwork.build(n_peers, seed=3, config=config)
        check_invariants(net)
        return net

    def test_insert_below_domain_expands_leftmost(self):
        net = self.narrow_net()
        result = net.insert(10)
        owner = net.peer(result.owner)
        assert owner is net.leftmost_peer()
        assert owner.range.contains(10)
        assert net.search_exact(10).found
        check_invariants(net)

    def test_insert_above_domain_expands_rightmost(self):
        net = self.narrow_net()
        result = net.insert(5000)
        owner = net.peer(result.owner)
        assert owner is net.rightmost_peer()
        assert owner.range.contains(5000)
        assert net.search_exact(5000).found
        check_invariants(net)

    def test_expansion_notifies_linkers(self):
        net = self.narrow_net()
        result = net.insert(5)
        # routing plus the log N table refresh the paper charges
        assert result.trace.count(MsgType.TABLE_UPDATE) >= 1

    def test_repeated_expansions(self):
        net = self.narrow_net()
        for key in (10, 5, 2, 5000, 9999):
            net.insert(key)
            check_invariants(net)
        assert net.search_exact(2).found
        assert net.search_exact(9999).found


class TestBalanceWiring:
    def test_insert_reports_balance_outcome(self):
        from tests.conftest import balanced_config

        net = BatonNetwork.build(10, seed=2, config=balanced_config(capacity=5))
        triggered = False
        for key in range(100, 400):
            result = net.insert(key)
            if result.balance_trace is not None:
                triggered = True
                assert result.balance_trace.total > 0
                assert result.total_messages >= result.trace.total
                break
        assert triggered, "capacity 5 must trigger balancing within 300 inserts"
