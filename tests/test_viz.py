"""Tests for the inspection helpers (repro.core.viz)."""

from repro.core import BatonNetwork
from repro.core import viz

from tests.conftest import make_network


class TestRenderTree:
    def test_empty(self):
        assert "empty" in viz.render_tree(BatonNetwork(seed=0))

    def test_contains_every_peer(self):
        net = make_network(15, seed=1)
        text = viz.render_tree(net)
        for address in net.addresses():
            assert f"addr={address}" in text

    def test_max_level_prunes(self):
        net = make_network(31, seed=1)
        shallow = viz.render_tree(net, max_level=1)
        assert len(shallow.splitlines()) == 3  # root + two children

    def test_failed_peer_marked(self):
        net = make_network(10, seed=2)
        victim = net.random_peer_address()
        net.fail(victim)
        assert "FAILED" in viz.render_tree(net)


class TestRenderRangeMap:
    def test_legend_lists_peers_in_key_order(self):
        net = make_network(8, seed=3)
        text = viz.render_range_map(net)
        lows = []
        for line in text.splitlines()[1:]:
            lows.append(int(line.split("[")[1].split(",")[0]))
        assert lows == sorted(lows)

    def test_bar_is_bounded(self):
        net = make_network(20, seed=3)
        bar = viz.render_range_map(net, width=50).splitlines()[0]
        assert bar.startswith("|") and bar.endswith("|")

    def test_empty(self):
        assert "empty" in viz.render_range_map(BatonNetwork(seed=0))


class TestRenderPeer:
    def test_dump_mentions_tables_and_links(self):
        net = make_network(20, seed=4)
        address = net.random_peer_address()
        text = viz.render_peer(net, address)
        assert "left table" in text
        assert "right table" in text
        assert "adjacent" in text

    def test_dead_peer(self):
        net = make_network(5, seed=4)
        assert "not alive" in viz.render_peer(net, 999)


class TestLevelHistogram:
    def test_counts_match(self):
        net = make_network(31, seed=5)
        text = viz.level_histogram(net)
        import re

        total = sum(
            int(match) for match in re.findall(r"level\s+\d+:\s+(\d+)", text)
        )
        assert total == net.size
