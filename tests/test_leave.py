"""Protocol tests: node departure (Algorithm 2 + graceful leave)."""

import math
import random

import pytest

from repro.core import BatonNetwork, check_invariants
from repro.core.leave import can_depart_simply
from repro.util.errors import PeerNotFoundError

from tests.conftest import make_network


def all_keys(net: BatonNetwork) -> list[int]:
    keys: list[int] = []
    for peer in net.peers.values():
        keys.extend(peer.store)
    return sorted(keys)


class TestSimpleDeparture:
    def test_last_peer_leaves(self):
        net = BatonNetwork(seed=1)
        root = net.bootstrap()
        result = net.leave(root)
        assert net.size == 0
        assert result.replacement is None

    def test_leaf_departure_merges_range_and_content(self):
        net = BatonNetwork(seed=1)
        root = net.bootstrap()
        child = net.join(via=root).address
        net.peer(child).store.insert(5)
        net.leave(child)
        assert net.size == 1
        survivor = net.peer(root)
        assert survivor.range == net.config.domain
        assert 5 in survivor.store

    def test_departed_address_unreachable(self):
        net = make_network(10, seed=2)
        victim = net.random_peer_address()
        net.leave(victim)
        with pytest.raises(PeerNotFoundError):
            net.peer(victim)


class TestReplacementDeparture:
    def test_internal_node_leave_finds_replacement(self):
        net = make_network(50, seed=3)
        internal = next(
            a for a, p in net.peers.items() if not p.is_leaf and p.parent is not None
        )
        result = net.leave(internal)
        assert result.replacement is not None
        check_invariants(net)

    def test_root_leave(self):
        net = make_network(30, seed=4)
        root = net.occupant(net.peer(net.addresses()[0]).position.ancestor_at(0))
        result = net.leave(root)
        assert result.replacement is not None
        check_invariants(net)

    def test_replacement_keeps_departed_range(self):
        net = make_network(40, seed=5)
        internal = next(a for a, p in net.peers.items() if not p.is_leaf)
        departed_range = net.peer(internal).range
        departed_pos = net.peer(internal).position
        result = net.leave(internal)
        replacement = net.peer(result.replacement)
        assert replacement.position == departed_pos
        # range may have grown if the replacement's own range merged in
        assert replacement.range.low <= departed_range.low
        assert replacement.range.high >= departed_range.high

    def test_no_key_is_lost_across_departures(self, rng):
        net = make_network(60, seed=6)
        keys = [rng.randint(1, 10**9 - 1) for _ in range(500)]
        net.bulk_load(keys)
        for _ in range(40):
            net.leave(net.random_peer_address())
        assert all_keys(net) == sorted(keys)

    def test_message_cost_within_paper_bound(self):
        net = make_network(300, seed=7)
        for _ in range(30):
            result = net.leave(net.random_peer_address())
            bound = 8 * math.log2(net.size + 1) + 16
            assert result.total_messages <= bound * 2, result.total_messages


class TestChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleaved_join_leave_keeps_invariants(self, seed):
        net = make_network(40, seed=seed)
        mix = random.Random(seed)
        for _ in range(120):
            if mix.random() < 0.5 and net.size > 2:
                net.leave(mix.choice(net.addresses()))
            else:
                net.join()
        check_invariants(net)

    def test_shrink_to_singleton_and_regrow(self):
        net = make_network(20, seed=8)
        while net.size > 1:
            net.leave(net.random_peer_address())
        check_invariants(net)
        for _ in range(20):
            net.join()
        check_invariants(net)

    def test_stats_track_leaves(self):
        net = make_network(10, seed=0)
        before = net.stats.leaves
        net.leave(net.random_peer_address())
        assert net.stats.leaves == before + 1


class TestSafetyPredicates:
    def test_deepest_leaf_with_quiet_neighbours_departs_simply(self):
        net = make_network(33, seed=9)
        simple = [a for a, p in net.peers.items() if can_depart_simply(p)]
        assert simple, "a balanced tree always has safely removable leaves"
        for address in simple[:3]:
            result = net.leave(address)
            assert result.replacement is None
            check_invariants(net)

    def test_internal_nodes_never_depart_simply(self):
        net = make_network(33, seed=9)
        for peer in net.peers.values():
            if not peer.is_leaf:
                assert not can_depart_simply(peer)
