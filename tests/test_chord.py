"""Tests for the Chord baseline (repro.chord)."""

import math

import pytest

from repro.chord import ChordNetwork, hash_key, id_distance, in_interval
from repro.chord.hashing import in_open_interval
from repro.workloads.generators import uniform_keys


def ring_cycle(net: ChordNetwork) -> list:
    """Successor chain starting from the lowest address."""
    start = sorted(net.nodes)[0]
    cycle = [start]
    current = net.nodes[start].successor
    while current != start:
        cycle.append(current)
        current = net.nodes[current].successor
    return cycle


def check_ring(net: ChordNetwork) -> None:
    cycle = ring_cycle(net)
    assert len(cycle) == net.size, "successors must form a single cycle"
    ids = [net.nodes[a].node_id for a in cycle]
    rotation = ids.index(min(ids))
    rotated = ids[rotation:] + ids[:rotation]
    assert rotated == sorted(ids), "cycle must follow identifier order"
    for address in cycle:
        node = net.nodes[address]
        successor = net.nodes[node.successor]
        assert successor.predecessor == address


class TestIntervalMath:
    def test_plain_interval(self):
        assert in_interval(5, 2, 8)
        assert in_interval(8, 2, 8)  # half-open on the right: (low, high]
        assert not in_interval(2, 2, 8)

    def test_wrapping_interval(self):
        m = 4  # ring of 16 ids
        assert in_interval(15, 12, 3, m)
        assert in_interval(1, 12, 3, m)
        assert not in_interval(5, 12, 3, m)

    def test_full_ring_interval(self):
        assert in_interval(7, 3, 3)

    def test_open_interval(self):
        assert in_open_interval(5, 2, 8)
        assert not in_open_interval(8, 2, 8)
        assert not in_open_interval(2, 2, 8)

    def test_distance(self):
        m = 4
        assert id_distance(14, 2, m) == 4
        assert id_distance(2, 14, m) == 12
        assert id_distance(5, 5, m) == 0

    def test_hash_is_deterministic_and_bounded(self):
        assert hash_key(12345) == hash_key(12345)
        for key in (1, 10**9 - 1, 424242):
            assert 0 <= hash_key(key) < (1 << 24)


class TestRingMaintenance:
    def test_build_forms_valid_ring(self):
        check_ring(ChordNetwork.build(64, seed=2))

    def test_singleton_is_own_successor(self):
        net = ChordNetwork(seed=1)
        root = net.bootstrap()
        node = net.nodes[root]
        assert node.successor == root
        assert node.predecessor == root

    def test_join_preserves_ring(self):
        net = ChordNetwork.build(20, seed=3)
        for _ in range(10):
            net.join()
            check_ring(net)

    def test_leave_preserves_ring(self):
        net = ChordNetwork.build(30, seed=4)
        for _ in range(15):
            net.leave(net.random_node_address())
            check_ring(net)

    def test_fingers_point_at_true_successors(self):
        net = ChordNetwork.build(40, seed=5)
        ids = sorted(node.node_id for node in net.nodes.values())

        def true_successor(target: int) -> int:
            for node_id in ids:
                if node_id >= target:
                    return node_id
            return ids[0]

        for node in net.nodes.values():
            for i in range(net.m_bits):
                finger_id = net.nodes[node.finger[i]].node_id
                assert finger_id == true_successor(node.finger_start(i))


class TestDataOps:
    def test_insert_search_delete_roundtrip(self):
        net = ChordNetwork.build(32, seed=6)
        keys = uniform_keys(100, seed=1)
        for key in keys:
            net.insert(key)
        for key in keys:
            assert net.search_exact(key).found
        for key in keys:
            assert net.delete(key).applied
        for key in keys:
            assert not net.search_exact(key).found

    def test_keys_survive_churn(self):
        net = ChordNetwork.build(32, seed=7)
        keys = uniform_keys(150, seed=2)
        net.bulk_load(keys)
        for _ in range(10):
            net.join()
            net.leave(net.random_node_address())
        for key in keys[:50]:
            assert net.search_exact(key).found

    def test_lookup_cost_logarithmic(self):
        costs = {}
        for n_nodes in (64, 256):
            net = ChordNetwork.build(n_nodes, seed=8)
            keys = uniform_keys(100, seed=3)
            net.bulk_load(keys)
            costs[n_nodes] = sum(
                net.search_exact(k).trace.total for k in keys
            ) / len(keys)
            assert costs[n_nodes] <= math.log2(n_nodes) + 2
        assert costs[256] > costs[64] - 1  # grows (roughly) with log N

    def test_join_table_update_is_superlogarithmic(self):
        # The Θ(log² N) contrast the paper draws in Fig 8(b).
        net = ChordNetwork.build(128, seed=9)
        update_costs = [net.join().update_trace.total for _ in range(10)]
        assert sum(update_costs) / 10 > 3 * math.log2(net.size)

    def test_range_scan_visits_whole_ring(self):
        net = ChordNetwork.build(40, seed=10)
        keys = uniform_keys(200, seed=4)
        net.bulk_load(keys)
        result = net.search_range(10**8, 5 * 10**8)
        assert result.nodes_visited == net.size
        assert result.keys == sorted(k for k in keys if 10**8 <= k < 5 * 10**8)


class TestEdges:
    def test_build_rejects_zero(self):
        with pytest.raises(ValueError):
            ChordNetwork.build(0)

    def test_leave_to_singleton_then_grow(self):
        net = ChordNetwork.build(5, seed=11)
        while net.size > 1:
            net.leave(net.random_node_address())
        for _ in range(5):
            net.join()
        check_ring(net)
