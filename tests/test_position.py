"""Unit tests for tree-position arithmetic (repro.core.ids)."""

import pytest

from repro.core.ids import Position, ROOT


class TestConstruction:
    def test_root(self):
        assert ROOT.level == 0
        assert ROOT.number == 1
        assert ROOT.is_root

    def test_rejects_negative_level(self):
        with pytest.raises(ValueError):
            Position(-1, 1)

    def test_rejects_number_below_one(self):
        with pytest.raises(ValueError):
            Position(2, 0)

    def test_rejects_number_above_level_width(self):
        with pytest.raises(ValueError):
            Position(2, 5)

    def test_boundary_numbers_accepted(self):
        assert Position(3, 1).number == 1
        assert Position(3, 8).number == 8


class TestFamily:
    def test_children_of_root(self):
        assert ROOT.left_child() == Position(1, 1)
        assert ROOT.right_child() == Position(1, 2)

    def test_parent_of_children(self):
        for node in (Position(3, 1), Position(3, 8), Position(5, 19)):
            assert node.left_child().parent() == node
            assert node.right_child().parent() == node

    def test_root_has_no_parent(self):
        assert ROOT.parent() is None

    def test_left_children_are_odd(self):
        assert Position(2, 1).is_left_child
        assert Position(2, 3).is_left_child
        assert not Position(2, 2).is_left_child

    def test_right_children_are_even(self):
        assert Position(2, 2).is_right_child
        assert Position(2, 4).is_right_child
        assert not Position(2, 3).is_right_child

    def test_root_is_neither_side(self):
        assert not ROOT.is_left_child
        assert not ROOT.is_right_child

    def test_sibling(self):
        assert Position(2, 1).sibling() == Position(2, 2)
        assert Position(2, 2).sibling() == Position(2, 1)
        assert ROOT.sibling() is None

    def test_ancestor_at(self):
        node = Position(4, 11)
        assert node.ancestor_at(4) == node
        assert node.ancestor_at(3) == node.parent()
        assert node.ancestor_at(0) == ROOT

    def test_ancestor_at_rejects_deeper_level(self):
        with pytest.raises(ValueError):
            Position(2, 3).ancestor_at(3)

    def test_is_ancestor_of(self):
        assert ROOT.is_ancestor_of(Position(3, 5))
        assert Position(1, 2).is_ancestor_of(Position(2, 4))
        assert not Position(1, 1).is_ancestor_of(Position(2, 4))
        assert not Position(2, 3).is_ancestor_of(Position(2, 3))


class TestTableGeometry:
    def test_left_positions_of_edge_node(self):
        assert list(Position(3, 1).left_table_positions()) == []

    def test_right_positions_of_edge_node(self):
        assert list(Position(3, 8).right_table_positions()) == []

    def test_left_positions_powers_of_two(self):
        positions = list(Position(3, 8).left_table_positions())
        assert [p.number for p in positions] == [7, 6, 4]

    def test_right_positions_powers_of_two(self):
        positions = list(Position(3, 1).right_table_positions())
        assert [p.number for p in positions] == [2, 3, 5]

    def test_table_position_by_index(self):
        node = Position(4, 8)
        assert node.table_position("left", 0) == Position(4, 7)
        assert node.table_position("left", 2) == Position(4, 4)
        assert node.table_position("right", 3) == Position(4, 16)

    def test_table_position_out_of_range_is_none(self):
        assert Position(3, 1).table_position("left", 0) is None
        assert Position(3, 8).table_position("right", 0) is None

    def test_table_position_rejects_bad_side(self):
        with pytest.raises(ValueError):
            Position(3, 4).table_position("up", 0)


class TestInorderOrder:
    def test_left_child_precedes_parent(self):
        node = Position(2, 3)
        assert node.left_child().inorder_lt(node)
        assert not node.inorder_lt(node.left_child())

    def test_parent_precedes_right_child(self):
        node = Position(2, 3)
        assert node.inorder_lt(node.right_child())

    def test_inorder_matches_recursive_traversal(self):
        def traverse(node: Position, depth: int):
            if depth == 0:
                return [node]
            return (
                traverse(node.left_child(), depth - 1)
                + [node]
                + traverse(node.right_child(), depth - 1)
            )

        full_tree = traverse(ROOT, 4)
        for before, after in zip(full_tree, full_tree[1:]):
            assert before.inorder_lt(after)

    def test_inorder_key_in_unit_interval(self):
        for position in (ROOT, Position(3, 1), Position(3, 8), Position(10, 512)):
            assert 0.0 < position.inorder_key() < 1.0

    def test_inorder_is_total_order(self):
        nodes = [Position(level, n) for level in range(5) for n in range(1, 2**level + 1)]
        for a in nodes:
            for b in nodes:
                if a == b:
                    assert not a.inorder_lt(b)
                    assert not b.inorder_lt(a)
                else:
                    assert a.inorder_lt(b) != b.inorder_lt(a)
