"""Locality extension: hot-range route cache coherence and accounting.

The cache's contract (DESIGN.md, "Locality contract") is *miss, never
wrong*: a cached route may be stale — the tree restructures underneath
it — but serving it must either land on the verified owner or degrade
into a normal walk.  The property suite here churns and restructures a
cached network on randomized seeded schedules and checks every lookup
against ground truth (a range scan over the live partition, no messages,
no randomness); the pinning suite checks that *disabled* locality
features add zero events to the fast path; the accounting suite guards
the stretch metric against the cache-hit degenerate cases.
"""

import pytest

from repro import overlays
from repro.core import cache as route_cache
from repro.core.cache import CacheStats, RouteCache
from repro.core.network import BatonConfig, BatonNetwork, LocalityConfig
from repro.util.rng import SeededRng, derive_seed
from repro.workloads.generators import uniform_keys


def owner_by_scan(net: BatonNetwork, key: int):
    """Ground-truth owner: scan the live partition (no messages, no rng)."""
    for address, peer in net.peers.items():
        if peer.range.contains(key):
            return address
    return None


def cached_net(
    n_peers: int = 48,
    seed: int = 1,
    cache_size: int = 32,
    n_keys: int = 480,
) -> BatonNetwork:
    config = BatonConfig(locality=LocalityConfig(cache_size=cache_size))
    return BatonNetwork.build(
        n_peers,
        seed=seed,
        config=config,
        bulk=True,
        keys=uniform_keys(n_keys, seed=seed + 1),
    )


def stored_keys(net: BatonNetwork) -> list:
    keys = []
    for peer in net.peers.values():
        keys.extend(peer.store)
    return sorted(keys)


class TestRouteCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            RouteCache(0, CacheStats())

    def test_eviction_is_lru_and_not_an_invalidation(self):
        stats = CacheStats()
        cache = RouteCache(2, stats)
        cache.record(10, 0, 100)
        cache.record(20, 100, 200)
        assert cache.lookup(50) == 10  # touch: 10 moves to the back
        cache.record(30, 200, 300)  # evicts 20, the least recently used
        assert cache.lookup(150) is None
        assert cache.lookup(50) == 10
        assert cache.lookup(250) == 30
        assert stats.invalidations == 0  # forgetting is not staleness

    def test_refresh_corrects_and_counts(self):
        stats = CacheStats()
        cache = RouteCache(4, stats)
        cache.record(10, 0, 100)
        cache.refresh(10, 0, 100)  # unchanged: free
        assert stats.invalidations == 0
        cache.refresh(10, 0, 50)  # the owner's range moved
        assert stats.invalidations == 1
        assert cache.lookup(75) is None
        assert cache.lookup(25) == 10

    def test_invalidate_reports_whether_dropped(self):
        stats = CacheStats()
        cache = RouteCache(4, stats)
        cache.record(10, 0, 100)
        assert cache.invalidate(10) is True
        assert cache.invalidate(10) is False
        assert stats.invalidations == 1

    def test_reconcile_drops_dead_and_refreshes_moved(self):
        net = cached_net()
        via = next(iter(net.peers))
        cache = route_cache.peer_cache(net, via, create=True)
        dead = max(net.peers) + 1  # never allocated
        cache.record(dead, 0, 10)
        owner = next(a for a in net.peers if a != via)
        cache.record(owner, 0, 1)  # deliberately wrong range
        route_cache.reconcile_peer(net, net.peers[via])
        assert dead not in cache.owners()
        live_range = net.peers[owner].range
        assert cache.lookup((live_range.low + live_range.high) // 2) == owner
        assert net.cache_stats.invalidations == 2


class TestSyncCacheBehavior:
    def test_repeat_search_hits_with_one_message(self):
        net = cached_net()
        key = stored_keys(net)[100]
        owner = owner_by_scan(net, key)
        via = next(a for a in net.peers if a != owner)
        first = net.search_exact(key, via=via)
        assert first.found and first.owner == owner
        assert net.cache_stats.hits == 0
        before = net.bus.stats.total
        second = net.search_exact(key, via=via)
        assert second.found and second.owner == owner
        assert net.cache_stats.hits == 1
        # A warm hit is exactly one direct, verified message.
        assert net.bus.stats.total - before == 1

    def test_stale_hint_misses_cleanly(self):
        net = cached_net()
        key = stored_keys(net)[100]
        owner = owner_by_scan(net, key)
        via = next(a for a in net.peers if a != owner)
        net.search_exact(key, via=via)  # warm the entry
        net.leave(owner)  # restructure underneath it
        result = net.search_exact(key, via=via)
        truth = owner_by_scan(net, key)
        assert result.owner == truth  # never a wrong answer
        assert net.cache_stats.hits == 0

    def test_cache_off_allocates_nothing(self):
        net = BatonNetwork.build(
            32, seed=3, bulk=True, keys=uniform_keys(160, seed=4)
        )
        for key in stored_keys(net)[:20]:
            net.search_exact(key)
        assert all(peer.route_cache is None for peer in net.peers.values())
        assert net.cache_stats.snapshot() == (0, 0, 0)


class TestCacheCoherenceProperty:
    """Satellite: across randomized churn + restructure schedules, every
    cached lookup returns the owner an uncached walk would, or misses
    cleanly — a stale entry is never served as a correct answer."""

    @pytest.mark.parametrize("seed", range(6))
    def test_cached_lookups_never_wrong_under_churn(self, seed):
        # A deliberately tiny cache forces evictions alongside staleness.
        net = cached_net(n_peers=40, seed=seed, cache_size=6, n_keys=400)
        rng = SeededRng(derive_seed(seed, "coherence"))
        gateways = sorted(net.peers)[:: max(1, len(net.peers) // 6)][:6]
        keys = stored_keys(net)
        hot = keys[len(keys) // 2 - 20 : len(keys) // 2 + 20]
        for _ in range(30):
            roll = rng.random()
            if roll < 0.3:
                net.join()
            elif roll < 0.6 and net.size > 16:
                victim = rng.choice(
                    sorted(a for a in net.peers if a not in gateways)
                )
                net.leave(victim)
            else:
                net.insert(rng.randint(1, 10**9))
            for _ in range(4):
                key = rng.choice(hot)
                via = rng.choice(gateways)
                if via not in net.peers:
                    continue
                result = net.search_exact(key, via=via)
                assert result.owner == owner_by_scan(net, key)
        # The property must not pass vacuously: the schedule has to have
        # produced warm hits *and* staleness work.
        assert net.cache_stats.hits > 0
        assert net.cache_stats.misses > 0
        assert net.cache_stats.invalidations > 0


class TestCacheOffPinned:
    """Satellite: disabled locality features are invisible — a config that
    *carries* the locality knobs below their activation thresholds runs
    event-for-event identical to the plain fast path."""

    @staticmethod
    def _one_run(config):
        from repro.sim.topology import ClusteredTopology

        rng = SeededRng(17)
        net = BatonNetwork.build(40, seed=2, config=config)
        anet = overlays.get("baton").wrap(
            net, topology=ClusteredTopology(seed=6, regions=4)
        )
        anet.net.bulk_load(uniform_keys(200, seed=5))
        futures = []
        while len(futures) < 100:
            roll = rng.random()
            if roll < 0.15:
                futures.append(anet.submit_join())
            elif roll < 0.3:
                candidates = anet.leave_candidates()
                if len(candidates) > 8:
                    futures.append(
                        anet.submit_leave(rng.choice(sorted(candidates)))
                    )
            else:
                futures.append(anet.submit_search_exact(rng.randint(1, 10**9)))
        anet.drain()
        return anet, futures

    def test_below_threshold_locality_is_event_for_event_identical(self):
        plain, plain_futures = self._one_run(BatonConfig())
        # join_probes=1 is below the probing gate (needs > 1); cache_size=0
        # is off: different config *value*, identical behavior required.
        gated, gated_futures = self._one_run(
            BatonConfig(
                locality=LocalityConfig(join_probes=1, cache_size=0)
            )
        )
        assert plain.event_log == gated.event_log
        assert [
            (f.status, f.hops, f.trace.total) for f in plain_futures
        ] == [(f.status, f.hops, f.trace.total) for f in gated_futures]
        assert gated.net.cache_stats.snapshot() == (0, 0, 0)
        assert all(
            peer.route_cache is None for peer in gated.net.peers.values()
        )


class TestStretchAccounting:
    """Satellite: the stretch metric stays meaningful under cache hits —
    samples are positive (no negative/zero-division artifacts from the
    one-hop shortcut) and the cached p50 actually drops."""

    def test_cached_stretch_positive_and_below_uncached(self):
        from repro.experiments import locality

        cells = {
            cache: locality.locality_cell(
                60,
                seed=0,
                data_per_node=50,
                duration=250.0,
                aware_join=False,
                cache=cache,
            )
            for cache in (False, True)
        }
        assert cells[True]["queries"] == cells[False]["queries"]
        assert cells[True]["hit_rate"] > 0.3
        assert cells[False]["hit_rate"] == 0.0
        assert 0 < cells[True]["stretch_p50"] < cells[False]["stretch_p50"]
        assert cells[True]["stretch_p99"] > 0
