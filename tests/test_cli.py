"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.peers == 50
        assert args.seed == 0


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--peers", "20", "--keys", "50"]) == 0
        out = capsys.readouterr().out
        assert "invariants: OK" in out

    def test_tree_runs(self, capsys):
        assert main(["tree", "--peers", "7"]) == 0
        out = capsys.readouterr().out
        assert "(0,1)" in out
        assert "level" in out

    def test_ranges_runs(self, capsys):
        assert main(["ranges", "--peers", "6", "--keys", "30"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("|")

    def test_peer_dump_runs(self, capsys):
        assert main(["peer", "--peers", "10", "--address", "1"]) == 0
        out = capsys.readouterr().out
        assert "peer addr=1" in out

    def test_experiments_quick(self, capsys, tmp_path):
        out_file = tmp_path / "results.txt"
        assert main(["experiments", "--quick", "--out", str(out_file)]) == 0
        assert "Fig 8a" in out_file.read_text()

    def test_concurrent_clustered_topology_runs(self, capsys):
        assert (
            main(
                [
                    "concurrent",
                    "--peers", "16",
                    "--duration", "5",
                    "--churn-rate", "0.0",
                    "--query-rate", "2",
                    "--topology", "clustered",
                    "--inter-delay", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "clustered topology" in out
        assert "transit time" in out

    def test_clustered_flags_rejected_elsewhere(self, capsys):
        assert main(["concurrent", "--peers", "10", "--inter-delay", "9"]) == 2
        err = capsys.readouterr().err
        assert "--topology clustered" in err

    def test_concurrent_replication_runs(self, capsys):
        assert (
            main(
                [
                    "concurrent",
                    "--peers", "20",
                    "--keys", "100",
                    "--duration", "8",
                    "--churn-rate", "0.4",
                    "--query-rate", "2",
                    "--fail-fraction", "1.0",
                    "--replication",
                    "--repair-delay", "2",
                    "--maintenance-interval", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replica" in out

    def test_replication_rejected_without_capability(self, capsys):
        assert main(["concurrent", "--overlay", "chord", "--replication"]) == 2
        err = capsys.readouterr().err
        assert "replication" in err

    def test_durability_subcommand_runs(self, capsys):
        assert main(["durability", "--quick", "--peers", "24"]) == 0
        out = capsys.readouterr().out
        assert "Durability" in out
        assert "keys_lost" in out
