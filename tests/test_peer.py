"""Unit tests for BATON peer state (repro.core.peer)."""

from repro.core.ids import Position
from repro.core.links import LEFT, RIGHT, NodeInfo
from repro.core.peer import BatonPeer
from repro.core.ranges import Range
from repro.net.address import Address


def make_peer(level=3, number=4, address=1) -> BatonPeer:
    return BatonPeer(Address(address), Position(level, number), Range(0, 100))


def info(level, number, address, range_=None) -> NodeInfo:
    return NodeInfo(
        address=Address(address),
        position=Position(level, number),
        range=range_ or Range(0, 10),
    )


class TestSnapshots:
    def test_snapshot_reflects_state(self):
        peer = make_peer()
        peer.left_child = info(4, 7, 70)
        snap = peer.snapshot()
        assert snap.address == peer.address
        assert snap.position == peer.position
        assert snap.range == peer.range
        assert snap.left_child == Address(70)
        assert snap.right_child is None

    def test_is_leaf(self):
        peer = make_peer()
        assert peer.is_leaf
        peer.right_child = info(4, 8, 80)
        assert not peer.is_leaf


class TestAcceptance:
    def test_tables_full_vacuous_for_root(self):
        root = BatonPeer(Address(1), Position(0, 1), Range(0, 10))
        assert root.tables_full()
        assert root.can_accept_child()

    def test_cannot_accept_with_incomplete_tables(self):
        peer = make_peer(level=2, number=2)
        assert not peer.tables_full()
        assert not peer.can_accept_child()

    def test_cannot_accept_with_two_children(self):
        root = BatonPeer(Address(1), Position(0, 1), Range(0, 10))
        root.left_child = info(1, 1, 11)
        root.right_child = info(1, 2, 12)
        assert not root.can_accept_child()


class TestTableSlots:
    def test_slot_for_power_of_two_neighbour(self):
        peer = make_peer(level=3, number=4)
        assert peer.table_slot_for(Position(3, 5)) == (RIGHT, 0)
        assert peer.table_slot_for(Position(3, 6)) == (RIGHT, 1)
        assert peer.table_slot_for(Position(3, 8)) == (RIGHT, 2)
        assert peer.table_slot_for(Position(3, 3)) == (LEFT, 0)
        assert peer.table_slot_for(Position(3, 2)) == (LEFT, 1)

    def test_slot_rejects_non_power_distance(self):
        peer = make_peer(level=3, number=1)
        assert peer.table_slot_for(Position(3, 4)) is None  # distance 3

    def test_slot_rejects_other_level(self):
        peer = make_peer(level=3, number=4)
        assert peer.table_slot_for(Position(2, 2)) is None

    def test_slot_rejects_self(self):
        peer = make_peer(level=3, number=4)
        assert peer.table_slot_for(Position(3, 4)) is None

    def test_set_and_clear_table_entry(self):
        peer = make_peer(level=3, number=4)
        assert peer.set_table_entry(info(3, 6, 60))
        assert peer.right_table.get(1).address == Address(60)
        assert peer.clear_table_entry(Position(3, 6))
        assert peer.right_table.get(1) is None

    def test_set_table_entry_ignores_non_neighbours(self):
        peer = make_peer(level=3, number=1)
        assert not peer.set_table_entry(info(3, 4, 40))


class TestLinkMaintenance:
    def test_iter_links_covers_everything(self):
        peer = make_peer(level=2, number=2, address=1)
        peer.parent = info(1, 1, 10)
        peer.left_child = info(3, 3, 30)
        peer.left_adjacent = info(3, 3, 30)
        peer.set_table_entry(info(2, 1, 21))
        kinds = {kind for kind, _ in peer.iter_links()}
        assert kinds == {"parent", "left_child", "left_adjacent", "left_table"}

    def test_link_addresses_deduplicated(self):
        peer = make_peer(level=2, number=2)
        peer.left_child = info(3, 3, 30)
        peer.left_adjacent = info(3, 3, 30)
        assert peer.link_addresses() == [Address(30)]

    def test_update_link_info_refreshes_all_slots(self):
        peer = make_peer(level=2, number=2)
        peer.left_child = info(3, 3, 30)
        peer.left_adjacent = info(3, 3, 30)
        fresh = info(3, 3, 30, range_=Range(5, 9))
        assert peer.update_link_info(fresh) == 2
        assert peer.left_child.range == Range(5, 9)
        assert peer.left_adjacent.range == Range(5, 9)

    def test_update_link_info_drops_moved_table_entry(self):
        peer = make_peer(level=3, number=4)
        peer.set_table_entry(info(3, 5, 50))
        moved = info(4, 9, 50)  # same address, new position
        peer.update_link_info(moved)
        assert peer.right_table.get(0) is None

    def test_replace_link_address(self):
        peer = make_peer(level=2, number=2)
        peer.parent = info(1, 1, 10)
        replacement = info(1, 1, 99)
        assert peer.replace_link_address(Address(10), replacement) == 1
        assert peer.parent.address == Address(99)

    def test_move_to_clears_links(self):
        peer = make_peer(level=2, number=2)
        peer.parent = info(1, 1, 10)
        peer.set_table_entry(info(2, 1, 21))
        peer.store.insert(42)
        peer.move_to(Position(3, 5))
        assert peer.position == Position(3, 5)
        assert peer.parent is None
        assert peer.left_table.owner == Position(3, 5)
        assert 42 in peer.store  # data travels with the peer
