"""Smoke + shape tests for the Figure-8 experiment drivers.

Each driver runs at the quick scale; assertions check the *shape* the paper
reports, with generous slack so seeds cannot flake the suite.
"""

import pytest

from repro.experiments import harness
from repro.experiments import (
    concurrent_dynamics,
    fig8a_join_leave_find,
    fig8b_table_updates,
    fig8c_insert_delete,
    fig8d_exact_query,
    fig8e_range_query,
    fig8f_access_load,
    fig8g_load_balancing,
    fig8h_shift_sizes,
    fig8i_dynamics,
    hetero_links,
)
from repro.experiments.balancing import run_balancing, shift_histogram
from repro.experiments.membership import aggregate, measure_membership


@pytest.fixture(scope="module")
def scale():
    return harness.quick_scale()


@pytest.fixture(scope="module")
def membership_cells(scale):
    return measure_membership(scale)


@pytest.fixture(scope="module")
def balancing_runs(scale):
    return run_balancing(scale)


class TestFig8a:
    def test_rows_and_shape(self, scale, membership_cells):
        result = fig8a_join_leave_find.run(scale, cells=membership_cells)
        assert len(result.rows) == 3 * len(scale.sizes)
        baton = result.column("join_find", where={"system": "baton"})
        chord = result.column("join_find", where={"system": "chord"})
        # BATON's join-find is low; Chord pays a lookup per join.
        assert max(baton) < max(chord)

    def test_multiway_leave_exceeds_join(self, scale, membership_cells):
        result = fig8a_join_leave_find.run(scale, cells=membership_cells)
        join = result.column("join_find", where={"system": "multiway"})
        leave = result.column("leave_find", where={"system": "multiway"})
        assert sum(leave) > sum(join)


class TestFig8b:
    def test_baton_updates_below_chord(self, scale, membership_cells):
        result = fig8b_table_updates.run(scale, cells=membership_cells)
        baton = result.column("join_update", where={"system": "baton"})
        chord = result.column("join_update", where={"system": "chord"})
        assert all(b < c for b, c in zip(baton, chord))


class TestFig8c:
    def test_insert_delete_costs(self, scale):
        result = fig8c_insert_delete.run(scale)
        baton = result.column("insert", where={"system": "baton"})
        multiway = result.column("insert", where={"system": "multiway"})
        assert all(b < m for b, m in zip(baton, multiway))


class TestFig8d:
    def test_exact_query_shape(self, scale):
        result = fig8d_exact_query.run(scale)
        assert all(rate == 1.0 for rate in result.column("hit_rate"))
        baton = result.column("messages", where={"system": "baton"})
        multiway = result.column("messages", where={"system": "multiway"})
        assert all(b < m for b, m in zip(baton, multiway))


class TestFig8e:
    def test_range_query_shape(self, scale):
        result = fig8e_range_query.run(scale)
        baton = result.column("messages", where={"system": "baton"})
        chord = result.column("messages", where={"system": "chord_ring_walk"})
        # the O(N) cliff: the ring walk visits every node
        assert all(c >= n - 1 for c, n in zip(chord, scale.sizes))
        assert all(b < c for b, c in zip(baton, chord))


class TestFig8f:
    def test_no_root_hotspot(self, scale):
        result = fig8f_access_load.run(scale)
        loads = {row["level"]: row["insert_per_node"] for row in result.rows}
        root_load = loads[0]
        deep_levels = [v for level, v in loads.items() if level >= 2]
        assert deep_levels
        # the root must not dominate: within 4x of the deep-level average
        assert root_load <= 4 * (sum(deep_levels) / len(deep_levels)) + 4


class TestFig8g:
    def test_skew_dominates_uniform(self, scale, balancing_runs):
        result = fig8g_load_balancing.run(scale, runs=balancing_runs)
        rows = {row["distribution"]: row for row in result.rows}
        assert rows["zipf"]["balance_msgs"] >= rows["uniform"]["balance_msgs"]

    def test_timeline_monotonic(self, scale, balancing_runs):
        result = fig8g_load_balancing.run(scale, runs=balancing_runs)
        timeline = [
            row["balance_msgs"]
            for row in result.rows
            if row["distribution"] == "zipf_timeline"
        ]
        assert timeline == sorted(timeline)


class TestFig8h:
    def test_histogram_sums_and_leans_small(self, scale, balancing_runs):
        zipf_runs = [r for r in balancing_runs if r.distribution == "zipf"]
        result = fig8h_shift_sizes.run(scale, runs=zipf_runs)
        total = sum(row["count"] for row in result.rows)
        assert total == sum(shift_histogram(zipf_runs).values())

    def test_runs_standalone(self, scale):
        result = fig8h_shift_sizes.run(scale)
        assert result.rows


class TestFig8i:
    def test_extra_messages_grow_with_churn(self, scale):
        result = fig8i_dynamics.run(scale, levels=(2, 6))
        extras = result.column("extra")
        assert extras[0] >= 0
        assert extras[-1] > 0
        assert all(v == 0 for v in result.column("violations"))


class TestConcurrentDynamics:
    def test_success_and_latency_reported_per_churn_rate(self, scale):
        result = concurrent_dynamics.run(scale, churn_rates=(0.0, 2.0))
        assert [row["churn_rate"] for row in result.rows] == [0.0, 2.0]
        success = result.column("success")
        assert success[0] == 1.0  # quiet network answers everything
        assert all(0.8 < rate <= 1.0 for rate in success)
        for row in result.rows:
            assert row["queries"] > 0
            assert row["p50"] <= row["p90"] <= row["p99"]
            assert row["max_in_flight"] > 1  # genuine overlap
        assert all(v == 0 for v in result.column("violations"))


class TestHeteroLinks:
    def test_latency_grows_with_inter_region_cost(self, scale):
        result = hetero_links.run(scale, inter_delays=(1.0, 10.0))
        assert len(result.rows) == 2 * 3  # (overlay, inter_delay) grid
        for name in ("baton", "chord", "multiway"):
            p50 = result.column("p50", where={"overlay": name})
            # Costlier inter-region links must surface in end-to-end latency
            # — the signal the scalar latency model could not express.
            assert p50[-1] > p50[0], (name, p50)
            success = result.column("success", where={"overlay": name})
            assert all(rate > 0.9 for rate in success)  # query-only: no churn loss
        for row in result.rows:
            assert row["p50"] <= row["p99"]
            assert row["transit_p99"] > 0


class TestHarness:
    def test_result_table_renders(self, scale, membership_cells):
        result = fig8a_join_leave_find.run(scale, cells=membership_cells)
        text = result.to_text()
        assert "Fig 8a" in text
        assert "baton" in text

    def test_aggregate_averages_seeds(self, membership_cells, scale):
        cell = aggregate(membership_cells, "baton", scale.sizes[0])
        assert cell.seed == -1
        assert cell.join_find >= 0

    def test_scales(self):
        quick = harness.quick_scale()
        default = harness.default_scale()
        assert max(quick.sizes) < max(default.sizes)
        assert "sizes" in default.label


class TestDurability:
    def test_replication_cuts_key_loss(self, scale):
        from repro.experiments import durability

        result = durability.run(
            scale, churn_rates=(2.0,), maintenance_intervals=(0.0, 6.0)
        )
        independent = [
            row for row in result.rows if row["mode"] == "independent"
        ]
        replicated = [row for row in independent if row["replication"]]
        bare = [row for row in independent if not row["replication"]]
        assert len(replicated) == 2 and len(bare) == 1
        # Replication never loses more than the bare network forfeits, and
        # whatever it saved shows up as recovered keys.
        for row in replicated:
            assert row["keys_lost"] <= bare[0]["keys_lost"]
        if bare[0]["crashes"]:
            assert bare[0]["keys_lost"] > 0  # the gap the extension closes
            assert sum(r["keys_recovered"] for r in replicated) > 0
        # Maintenance traffic is priced and counted, never free.
        assert all(r["replica_msgs"] > 0 for r in replicated)
        assert all(r["replica_msgs"] == 0 for r in bare)
        assert all(r["reconcile_msgs"] > 0 for r in independent)
        # The correlated row: a whole region dies at once, replication is
        # on, and the only detection path is the heartbeat monitor.
        correlated = [
            row for row in result.rows if row["mode"] == "region_outage"
        ]
        assert len(correlated) == 1
        outage = correlated[0]
        assert outage["replication"] == 1
        assert outage["crashes"] > 0
        assert outage["repairs"] > 0  # the monitor found the dead region
        assert outage["replica_msgs"] > 0
