"""Deeper multiway-tree edge cases: interior detach, coverage widening."""

import pytest

from repro.core.ranges import Range
from repro.multiway import MultiwayConfig, MultiwayNetwork
from repro.workloads.generators import uniform_keys

from tests.test_multiway import check_structure


class TestInteriorDetach:
    def test_detaching_older_child_routes_content_to_predecessor(self):
        """A non-most-recent child's interval flows to a sibling subtree.

        Parent with own range at the bottom and children stacked above it:
        removing the *top* child must hand its interval to whoever owns the
        adjacent interval below — not to the parent (their ranges are not
        adjacent), and never corrupt sibling coverage.
        """
        net = MultiwayNetwork(seed=1, config=MultiwayConfig(fanout=4))
        root_addr = net.bootstrap()
        # three children: coverage stacks [root | c3 | c2 | c1]
        first = net.join(via=root_addr).address
        second = net.join(via=root_addr).address
        third = net.join(via=root_addr).address
        root = net.nodes[root_addr]
        assert len(root.children) == 3
        top_child = max(
            (net.nodes[l.address] for l in root.children),
            key=lambda n: n.coverage.low,
        )
        top_child.store.insert(top_child.range.low)
        marker = top_child.range.low
        net.leave(top_child.address)
        check_structure(net)
        # the marker key is still owned and findable
        assert net.search_exact(marker).found

    def test_many_interior_detaches_keep_partition(self):
        net = MultiwayNetwork.build(50, seed=2, config=MultiwayConfig(fanout=5))
        keys = uniform_keys(300, seed=3)
        net.bulk_load(keys)
        import random

        mix = random.Random(4)
        # preferentially remove children that are NOT the most recent
        for _ in range(25):
            candidates = [
                link.address
                for node in net.nodes.values()
                for link in node.children[1:]
            ]
            if not candidates:
                break
            net.leave(mix.choice(candidates))
            check_structure(net)
        stored = sorted(k for n in net.nodes.values() for k in n.store)
        assert stored == sorted(keys)


class TestCoverageConsistency:
    def test_coverage_contains_own_range_and_children(self):
        net = MultiwayNetwork.build(60, seed=5)
        for node in net.nodes.values():
            assert node.coverage.low <= node.range.low
            assert node.range.high <= node.coverage.high
            for link in node.children:
                assert node.coverage.low <= link.coverage.low
                assert link.coverage.high <= node.coverage.high

    def test_root_coverage_spans_domain(self):
        net = MultiwayNetwork.build(30, seed=6)
        root = net.nodes[net.root]
        assert root.coverage == net.config.domain


class TestNarrowRanges:
    def test_join_skips_unsplittable_nodes(self):
        config = MultiwayConfig(domain=Range(0, 64), fanout=2)
        net = MultiwayNetwork.build(20, seed=7, config=config)
        # with a 64-wide domain and 20 peers, several nodes hold width-1
        # ranges; joins must still have succeeded by descending past them
        assert net.size == 20
        check_structure(net)
