"""Tests for the adjacent-replica durability extension."""

from collections import Counter

import pytest

from repro.core import BatonConfig, BatonNetwork, check_invariants
from repro.core import replication
from repro.workloads.generators import uniform_keys


def replicated_net(n_peers=30, seed=3) -> BatonNetwork:
    config = BatonConfig(replication=True)
    return BatonNetwork.build(n_peers, seed=seed, config=config)


def stored_multiset(net: BatonNetwork) -> Counter:
    counter: Counter = Counter()
    for peer in net.peers.values():
        counter.update(peer.store)
    return counter


class TestWriteThrough:
    def test_insert_mirrors_at_adjacent(self):
        net = replicated_net()
        result = net.insert(123_456)
        owner = net.peer(result.owner)
        holder = replication.replica_holder(net, owner)
        assert holder is not None
        assert 123_456 in holder.replicas[owner.address]

    def test_delete_unmirrors(self):
        net = replicated_net()
        result = net.insert(9_999)
        owner = net.peer(result.owner)
        holder = replication.replica_holder(net, owner)
        net.delete(9_999)
        assert 9_999 not in holder.replicas.get(owner.address, [])

    def test_replication_costs_one_message_per_update(self):
        net = replicated_net()
        result = net.insert(55_555)
        from repro.net.message import MsgType

        assert result.trace.count(MsgType.REPLICATE) == 1

    def test_disabled_by_default(self):
        net = BatonNetwork.build(10, seed=1)
        net.insert(42)
        assert all(not p.replicas for p in net.peers.values())


class TestAntiEntropy:
    def test_refresh_mirrors_every_store(self):
        net = replicated_net()
        keys = uniform_keys(200, seed=2)
        net.bulk_load(keys)
        messages = net.refresh_replicas()
        assert messages == net.size
        mirrored = Counter()
        for peer in net.peers.values():
            for replica in peer.replicas.values():
                mirrored.update(replica)
        assert mirrored == stored_multiset(net)

    def test_refresh_noop_when_disabled(self):
        net = BatonNetwork.build(10, seed=1)
        assert net.refresh_replicas() == 0


class TestRecovery:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_failed_leaf_data_recovered(self, seed):
        net = replicated_net(n_peers=40, seed=seed)
        keys = uniform_keys(400, seed=seed + 1)
        for key in keys:
            net.insert(key)
        before = stored_multiset(net)
        victim = next(a for a, p in net.peers.items() if p.is_leaf)
        net.fail(victim)
        net.repair(victim)
        check_invariants(net)
        assert stored_multiset(net) == before

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_failed_internal_data_recovered(self, seed):
        net = replicated_net(n_peers=40, seed=seed)
        keys = uniform_keys(400, seed=seed + 1)
        for key in keys:
            net.insert(key)
        before = stored_multiset(net)
        victim = next(a for a, p in net.peers.items() if not p.is_leaf)
        net.fail(victim)
        net.repair(victim)
        check_invariants(net)
        assert stored_multiset(net) == before

    def test_recovery_after_churn_with_refresh(self):
        net = replicated_net(n_peers=40, seed=9)
        for key in uniform_keys(300, seed=5):
            net.insert(key)
        import random

        mix = random.Random(7)
        for _ in range(15):
            net.leave(mix.choice(net.addresses()))
            net.join()
        net.refresh_replicas()  # anti-entropy re-anchors mirrors
        before = stored_multiset(net)
        victim = mix.choice(net.addresses())
        net.fail(victim)
        net.repair(victim)
        check_invariants(net)
        assert stored_multiset(net) == before

    def test_searches_find_recovered_keys(self):
        net = replicated_net(n_peers=30, seed=11)
        keys = uniform_keys(200, seed=6)
        for key in keys:
            net.insert(key)
        victim = net.random_peer_address()
        lost = list(net.peer(victim).store)
        net.fail(victim)
        net.repair(victim)
        for key in lost:
            assert net.search_exact(key).found, key
