"""Tests for the adjacent-replica durability extension.

Covers the synchronous write-through/refresh/restore protocol and the
async path the event-driven runtime lifts from the same step generators:
serialized equivalence (same messages, same mirrors, same survivors as the
synchronous network), sized refresh hops under a clustered topology, and
the zero-key-loss guarantee for serialized crash+repair runs.
"""

from collections import Counter

import pytest

from repro.core import BatonConfig, BatonNetwork, check_invariants
from repro.core import replication
from repro.sim.latency import ConstantLatency
from repro.sim.runtime import AsyncBatonNetwork
from repro.sim.topology import ClusteredTopology
from repro.workloads.generators import uniform_keys


def replicated_net(n_peers=30, seed=3) -> BatonNetwork:
    config = BatonConfig(replication=True)
    return BatonNetwork.build(n_peers, seed=seed, config=config)


def stored_multiset(net: BatonNetwork) -> Counter:
    counter: Counter = Counter()
    for peer in net.peers.values():
        counter.update(peer.store)
    return counter


def mirrored_multiset(net: BatonNetwork) -> Counter:
    counter: Counter = Counter()
    for peer in net.peers.values():
        for mirror in peer.replicas.values():
            counter.update(mirror)
    return counter


def replicated_async(
    n_peers=30, seed=3, topology=None
) -> AsyncBatonNetwork:
    net = replicated_net(n_peers=n_peers, seed=seed)
    if topology is None:
        topology = ConstantLatency(1.0)
    return AsyncBatonNetwork(net, topology=topology)


class TestWriteThrough:
    def test_insert_mirrors_at_adjacent(self):
        net = replicated_net()
        result = net.insert(123_456)
        owner = net.peer(result.owner)
        holder = replication.replica_holder(net, owner)
        assert holder is not None
        assert 123_456 in holder.replicas[owner.address]

    def test_delete_unmirrors(self):
        net = replicated_net()
        result = net.insert(9_999)
        owner = net.peer(result.owner)
        holder = replication.replica_holder(net, owner)
        net.delete(9_999)
        assert 9_999 not in holder.replicas.get(owner.address, [])

    def test_replication_costs_one_message_per_update(self):
        net = replicated_net()
        result = net.insert(55_555)
        from repro.net.message import MsgType

        assert result.trace.count(MsgType.REPLICATE) == 1

    def test_disabled_by_default(self):
        net = BatonNetwork.build(10, seed=1)
        net.insert(42)
        assert all(not p.replicas for p in net.peers.values())


class TestAntiEntropy:
    def test_refresh_mirrors_every_store(self):
        net = replicated_net()
        keys = uniform_keys(200, seed=2)
        net.bulk_load(keys)
        messages = net.refresh_replicas()
        assert messages == net.size
        mirrored = Counter()
        for peer in net.peers.values():
            for replica in peer.replicas.values():
                mirrored.update(replica)
        assert mirrored == stored_multiset(net)

    def test_refresh_noop_when_disabled(self):
        net = BatonNetwork.build(10, seed=1)
        assert net.refresh_replicas() == 0


class TestRecovery:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_failed_leaf_data_recovered(self, seed):
        net = replicated_net(n_peers=40, seed=seed)
        keys = uniform_keys(400, seed=seed + 1)
        for key in keys:
            net.insert(key)
        before = stored_multiset(net)
        victim = next(a for a, p in net.peers.items() if p.is_leaf)
        net.fail(victim)
        net.repair(victim)
        check_invariants(net)
        assert stored_multiset(net) == before

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_failed_internal_data_recovered(self, seed):
        net = replicated_net(n_peers=40, seed=seed)
        keys = uniform_keys(400, seed=seed + 1)
        for key in keys:
            net.insert(key)
        before = stored_multiset(net)
        victim = next(a for a, p in net.peers.items() if not p.is_leaf)
        net.fail(victim)
        net.repair(victim)
        check_invariants(net)
        assert stored_multiset(net) == before

    def test_recovery_after_churn_with_refresh(self):
        net = replicated_net(n_peers=40, seed=9)
        for key in uniform_keys(300, seed=5):
            net.insert(key)
        import random

        mix = random.Random(7)
        for _ in range(15):
            net.leave(mix.choice(net.addresses()))
            net.join()
        net.refresh_replicas()  # anti-entropy re-anchors mirrors
        before = stored_multiset(net)
        victim = mix.choice(net.addresses())
        net.fail(victim)
        net.repair(victim)
        check_invariants(net)
        assert stored_multiset(net) == before

    def test_searches_find_recovered_keys(self):
        net = replicated_net(n_peers=30, seed=11)
        keys = uniform_keys(200, seed=6)
        for key in keys:
            net.insert(key)
        victim = net.random_peer_address()
        lost = list(net.peer(victim).store)
        net.fail(victim)
        net.repair(victim)
        for key in lost:
            assert net.search_exact(key).found, key


class TestAsyncSerializedEquivalence:
    """The async replication path vs. the synchronous network.

    With constant latency and one operation in flight at a time, the
    lifted step generators send exactly the messages the synchronous
    protocol sends and leave identical stores and mirrors behind.
    """

    def test_insert_delete_match_sync(self):
        sync = replicated_net(n_peers=40, seed=5)
        anet = replicated_async(n_peers=40, seed=5)
        keys = uniform_keys(30, seed=8)
        for key in keys:
            expected = sync.insert(key)
            future = anet.submit_insert(key)
            anet.drain()
            assert future.succeeded
            assert future.trace.total == expected.trace.total
        for key in keys[::3]:
            expected = sync.delete(key)
            future = anet.submit_delete(key)
            anet.drain()
            assert future.succeeded
            assert future.result.applied is expected.applied
            assert future.trace.total == expected.trace.total
        assert stored_multiset(anet.net) == stored_multiset(sync)
        assert mirrored_multiset(anet.net) == mirrored_multiset(sync)
        assert anet.bus.stats.total == sync.bus.stats.total

    def test_refresh_matches_sync(self):
        sync = replicated_net(n_peers=30, seed=9)
        anet = replicated_async(n_peers=30, seed=9)
        keys = uniform_keys(200, seed=4)
        sync.bulk_load(keys)
        anet.net.bulk_load(keys)
        sync_messages = sync.refresh_replicas()
        futures = anet.submit_replica_refresh()
        anet.drain()
        assert all(f.succeeded for f in futures)
        assert sum(f.result for f in futures) == sync_messages
        assert mirrored_multiset(anet.net) == mirrored_multiset(sync)
        assert mirrored_multiset(anet.net) == stored_multiset(anet.net)

    def test_crash_repair_loses_zero_keys(self):
        """Acceptance: a serialized crash+repair run loses zero keys."""
        anet = replicated_async(n_peers=40, seed=7)
        for key in uniform_keys(300, seed=2):
            future = anet.submit_insert(key)
            anet.drain()
            assert future.succeeded
        before = stored_multiset(anet.net)
        for seed_step, victim_rank in enumerate((0, 7, 3)):
            victim = sorted(anet.net.peers)[victim_rank]
            fail_future = anet.submit_fail(victim)
            anet.drain()
            assert fail_future.succeeded
            results = anet.repair_all()
            assert results and results[-1].failed == victim
            check_invariants(anet.net)
            assert stored_multiset(anet.net) == before, f"step {seed_step}"

    def test_crash_repair_matches_sync_messages(self):
        sync = replicated_net(n_peers=40, seed=11)
        anet = replicated_async(n_peers=40, seed=11)
        keys = uniform_keys(200, seed=3)
        for key in keys:
            sync.insert(key)
            anet.submit_insert(key)
            anet.drain()
        victim = sorted(sync.peers)[5]
        assert sorted(anet.net.peers)[5] == victim
        sync.fail(victim)
        fail_future = anet.submit_fail(victim)
        anet.drain()
        assert fail_future.succeeded
        sync_base = sync.bus.stats.total
        async_base = anet.bus.stats.total
        sync_results = sync.repair_all()
        async_results = anet.repair_all()
        assert len(sync_results) == len(async_results) == 1
        assert (
            sync.bus.stats.total - sync_base
            == anet.bus.stats.total - async_base
        )
        assert (
            async_results[0].keys_recovered == sync_results[0].keys_recovered
        )
        assert stored_multiset(anet.net) == stored_multiset(sync)


class TestAsyncRepairPricing:
    def test_repair_future_reports_recovery_latency(self):
        anet = replicated_async(n_peers=30, seed=13)
        for key in uniform_keys(150, seed=5):
            anet.submit_insert(key)
            anet.drain()
        victim = max(
            anet.net.peers, key=lambda a: len(anet.net.peers[a].store)
        )
        assert len(anet.net.peers[victim].store) > 0
        anet.submit_fail(victim)
        anet.drain()
        future = anet.submit_repair(victim)
        anet.drain()
        assert future.succeeded
        assert future.result.keys_recovered > 0
        assert future.latency is not None and future.latency > 0
        assert future.transit > 0

    def test_replica_pull_pays_for_size(self):
        """The repair-time replica pull is a sized hop: more keys, more time."""
        latencies = {}
        for load in (4, 64):
            topology = ClusteredTopology(
                3, regions=1, intra_delay=1.0, jitter=0.0, intra_bandwidth=2.0
            )
            anet = replicated_async(n_peers=12, seed=17, topology=topology)
            victim = sorted(anet.net.peers)[4]
            peer = anet.net.peers[victim]
            peer.store.extend(
                key
                for key in uniform_keys(5 * load, seed=6)
                if peer.range.contains(key)
            )
            anet.net.refresh_replicas()
            anet.submit_fail(victim)
            anet.drain()
            future = anet.submit_repair(victim)
            anet.drain()
            assert future.succeeded
            latencies[load] = future.latency
        assert latencies[64] > latencies[4]


class TestClusteredRefresh:
    def topology(self, seed=21, **kwargs):
        params = dict(
            regions=3,
            intra_delay=0.5,
            inter_delay=4.0,
            jitter=0.0,
            intra_bandwidth=4.0,
            inter_bandwidth=2.0,
        )
        params.update(kwargs)
        return ClusteredTopology(seed, **params)

    def test_refresh_mirrors_every_store(self):
        anet = replicated_async(n_peers=25, seed=19, topology=self.topology())
        anet.net.bulk_load(uniform_keys(250, seed=9))
        futures = anet.submit_replica_refresh()
        anet.drain()
        assert all(f.succeeded for f in futures)
        assert mirrored_multiset(anet.net) == stored_multiset(anet.net)
        for peer in anet.net.peers.values():
            assert peer.replica_anchor in anet.net.peers

    def test_refresh_hops_are_sized(self):
        """A refresh carrying a big store pays the bandwidth term."""
        anet = replicated_async(n_peers=25, seed=19, topology=self.topology())
        anet.net.bulk_load(uniform_keys(250, seed=9))
        sizes = {a: len(p.store) for a, p in anet.net.peers.items()}
        futures = anet.submit_replica_refresh()
        anet.drain()
        by_address = dict(zip(sorted(anet.net.peers), futures))
        topology = self.topology()  # same seed: identical placements
        for address, future in by_address.items():
            if not (future.succeeded and future.result):
                continue
            peer = anet.net.peers[address]
            holder = peer.replica_anchor
            same_region = topology.region_of(address) == topology.region_of(
                holder
            )
            bandwidth = 4.0 if same_region else 2.0
            base = 0.5 if same_region else 4.0 * topology._pair_factor(
                topology.region_of(address), topology.region_of(holder)
            )
            expected = base + max(1, sizes[address]) / bandwidth
            assert future.transit == pytest.approx(expected)

    def test_refresh_deterministic_across_runs(self):
        def one_run():
            anet = replicated_async(
                n_peers=25, seed=23, topology=self.topology(seed=5)
            )
            anet.net.bulk_load(uniform_keys(200, seed=3))
            anet.submit_replica_refresh()
            anet.drain()
            return anet.event_log, mirrored_multiset(anet.net)

        first_log, first_mirrors = one_run()
        second_log, second_mirrors = one_run()
        assert first_log == second_log
        assert first_mirrors == second_mirrors


class TestReconcileAccounting:
    def test_reconcile_returns_message_count(self):
        from repro.net.message import MsgType

        anet = replicated_async(n_peers=20, seed=3)
        before = anet.bus.stats.by_type[MsgType.RECONCILE]
        messages = anet.reconcile()
        assert messages == anet.net.size  # every peer has a live neighbour
        assert anet.bus.stats.by_type[MsgType.RECONCILE] - before == messages

    def test_single_peer_reconciles_for_free(self):
        net = BatonNetwork(config=BatonConfig(replication=True), seed=0)
        net.bootstrap()
        anet = AsyncBatonNetwork(net, latency=ConstantLatency(1.0))
        assert anet.reconcile() == 0


class TestRegistryGating:
    def test_baton_builds_replicated(self):
        from repro import overlays

        anet = overlays.get("baton").build_async(16, seed=1, replication=True)
        assert anet.replication_enabled
        assert anet.net.config.replication

    @pytest.mark.parametrize("name", ["chord", "multiway"])
    def test_baselines_refuse_replication(self, name):
        from repro import overlays
        from repro.util.errors import CapabilityError

        with pytest.raises(CapabilityError):
            overlays.get(name).build_async(16, seed=1, replication=True)

    def test_replication_with_config_rejected(self):
        from repro import overlays

        with pytest.raises(ValueError):
            overlays.get("baton").build_async(
                16, seed=1, replication=True, config=BatonConfig()
            )


class TestRegionDiversePlacement:
    """Locality extension: mirrors anchor across regions when possible."""

    @staticmethod
    def _diverse_net(seed: int = 3, n_peers: int = 48):
        from repro.core.network import LocalityConfig
        from repro.experiments.harness import build_baton

        net = build_baton(
            n_peers,
            seed,
            10,
            replication=True,
            locality=LocalityConfig(replica_diversity=True),
        )
        net.topology = ClusteredTopology(seed=seed + 100, regions=4)
        net.refresh_replicas()
        return net

    def test_holder_crosses_regions_whenever_a_link_does(self):
        net = self._diverse_net()
        region_of = net.topology.region_of
        cross, fallback = 0, 0
        for peer in net.peers.values():
            holder = replication.replica_holder(net, peer)
            if holder is None:
                continue
            home = region_of(peer.address)
            if region_of(holder.address) != home:
                cross += 1
                continue
            # Same-region holder is only legal when the peer has no
            # cross-region candidate at all (the documented fallback).
            candidates = [
                info.address
                for _, info in peer.iter_links()
                if info.address in net.peers
            ]
            assert all(region_of(a) == home for a in candidates)
            fallback += 1
        assert cross > 0  # diversity must actually engage
        assert cross > fallback  # and dominate at this scale

    def test_diversity_off_keeps_adjacent_placement(self):
        from repro.experiments.harness import build_baton

        net = build_baton(48, 3, 10, replication=True)
        net.topology = ClusteredTopology(seed=103, regions=4)
        net.refresh_replicas()
        for peer in net.peers.values():
            holder = replication.replica_holder(net, peer)
            if holder is None:
                continue
            adjacents = {
                info.address
                for info in (peer.right_adjacent, peer.left_adjacent)
                if info is not None
            }
            assert holder.address in adjacents

    def test_diversity_noops_without_region_topology(self):
        from repro.core.network import LocalityConfig
        from repro.experiments.harness import build_baton

        plain = build_baton(32, 5, 10, replication=True)
        diverse = build_baton(
            32,
            5,
            10,
            replication=True,
            locality=LocalityConfig(replica_diversity=True),
        )
        # No topology installed: region_of is unavailable, so diverse
        # placement falls back to the adjacent contract exactly.
        for address in plain.peers:
            a = replication.replica_holder(plain, plain.peers[address])
            b = replication.replica_holder(diverse, diverse.peers[address])
            assert (a is None) == (b is None)
            if a is not None:
                assert a.address == b.address


class TestCorrelatedOutageRegression:
    """Satellite: the region-outage durability cells, pinned both ways —
    adjacent placement loses keys to a correlated strike, region-diverse
    placement loses none (same network, same outage, same workload)."""

    def test_diverse_replicas_survive_where_adjacent_lose(self):
        from repro.experiments import durability

        # insert_rate=0 keeps the loss accounting free of in-flight
        # write-through races: every counted loss is the outage's.
        baseline = durability._correlated_run(
            48, 1, 10, 4.0, replica_diversity=False, insert_rate=0.0
        )
        diverse = durability._correlated_run(
            48, 1, 10, 4.0, replica_diversity=True, insert_rate=0.0
        )
        assert baseline["crashes"] > 0
        assert diverse["crashes"] > 0
        assert baseline["keys_lost"] > 0  # adjacent mirrors die with owners
        assert diverse["keys_lost"] == 0  # cross-region mirrors survive
