"""Conformance suite for the unified Overlay protocol (repro.overlays).

Every registry entry must satisfy the same contract:

* the structural :class:`~repro.overlays.Overlay` protocol (unified method
  names — ``random_peer_address`` everywhere — and ``build``/``bulk_load``);
* the unified result dataclasses, including the ``complete`` truncation
  flag on every range answer;
* build/join/leave/search/insert round-trips through the public API;
* **serialized equivalence**: a constant-latency
  :class:`~repro.sim.runtime.AsyncOverlayRuntime` run, one operation in
  flight at a time, is message-for-message equivalent to the synchronous
  facade and converges to the identical structure (mirroring
  ``tests/test_runtime.py`` for BATON).
"""

import pytest

from repro import overlays
from repro.core.results import (
    DataOpResult,
    JoinResult,
    LeaveResult,
    RangeSearchResult,
    SearchResult,
)
from repro.overlays import Overlay
from repro.sim.latency import ConstantLatency
from repro.sim.runtime import AsyncOverlayRuntime
from repro.util.errors import CapabilityError
from repro.workloads.generators import uniform_keys

ALL = overlays.available()


def snapshot(name: str, net) -> set:
    """Overlay-specific structural fingerprint for equivalence checks."""
    if name == "baton":
        return {
            (
                str(peer.position),
                peer.range.low,
                peer.range.high,
                tuple(sorted(peer.store)),
            )
            for peer in net.peers.values()
        }
    if name == "chord":
        return {
            (
                node.node_id,
                net.nodes[node.predecessor].node_id,
                tuple(
                    net.nodes[f].node_id if f in net.nodes else None
                    for f in node.finger
                ),
                tuple(sorted(node.store)),
            )
            for node in net.nodes.values()
        }
    return {
        (
            node.level,
            node.range.low,
            node.range.high,
            node.coverage.low,
            node.coverage.high,
            len(node.children),
            tuple(sorted(node.store)),
        )
        for node in net.nodes.values()
    }


class TestRegistry:
    def test_three_overlays_registered(self):
        assert ALL == ["baton", "chord", "multiway"]

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="baton, chord, multiway"):
            overlays.get("kademlia")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            overlays.register(overlays.get("baton"))

    @pytest.mark.parametrize("name", ALL)
    def test_entry_shape(self, name):
        entry = overlays.get(name)
        assert entry.name == name
        assert entry.description
        assert entry.capabilities == entry.runtime_cls.capabilities
        assert issubclass(entry.runtime_cls, AsyncOverlayRuntime)

    def test_capabilities_differ_by_overlay(self):
        assert overlays.FAIL in overlays.get("baton").capabilities
        assert overlays.REPAIR in overlays.get("baton").capabilities
        assert not overlays.get("chord").capabilities
        assert not overlays.get("multiway").capabilities


class TestProtocolConformance:
    @pytest.mark.parametrize("name", ALL)
    def test_satisfies_overlay_protocol(self, name):
        net = overlays.get(name).build(20, seed=4)
        assert isinstance(net, Overlay)

    @pytest.mark.parametrize("name", ALL)
    def test_unified_population_surface(self, name):
        net = overlays.get(name).build(15, seed=4)
        assert net.size == 15
        addresses = net.addresses()
        assert len(addresses) == 15
        assert net.random_peer_address() in addresses

    @pytest.mark.parametrize("name", ALL)
    def test_membership_round_trip(self, name):
        net = overlays.get(name).build(12, seed=5)
        joined = net.join()
        assert isinstance(joined, JoinResult)
        assert net.size == 13
        assert joined.total_messages >= 0
        left = net.leave(joined.address)
        assert isinstance(left, LeaveResult)
        assert left.departed == joined.address
        assert net.size == 12

    @pytest.mark.parametrize("name", ALL)
    def test_data_round_trip(self, name):
        net = overlays.get(name).build(20, seed=6)
        keys = uniform_keys(40, seed=8)
        for key in keys:
            result = net.insert(key)
            assert isinstance(result, DataOpResult) and result.applied
        for key in keys:
            hit = net.search_exact(key)
            assert isinstance(hit, SearchResult)
            assert hit.found, (name, key)
        for key in keys[:10]:
            assert net.delete(key).applied
            assert not net.search_exact(key).found

    @pytest.mark.parametrize("name", ALL)
    def test_bulk_load_places_searchable_keys(self, name):
        net = overlays.get(name).build(20, seed=6)
        keys = uniform_keys(60, seed=9)
        assert net.bulk_load(keys) == len(keys)
        for key in keys[::7]:
            assert net.search_exact(key).found

    @pytest.mark.parametrize("name", ALL)
    def test_range_results_unified_and_complete(self, name):
        """The `complete` flag PR 1 gave BATON now exists on every overlay."""
        net = overlays.get(name).build(25, seed=7)
        keys = uniform_keys(200, seed=11)
        net.bulk_load(keys)
        low, high = 2 * 10**8, 6 * 10**8
        answer = net.search_range(low, high)
        assert isinstance(answer, RangeSearchResult)
        assert answer.complete is True
        assert answer.nodes_visited == len(answer.owners) >= 1
        assert sorted(answer.keys) == sorted(k for k in keys if low <= k < high)

    @pytest.mark.parametrize("name", ALL)
    def test_empty_range_rejected(self, name):
        net = overlays.get(name).build(10, seed=7)
        with pytest.raises(ValueError):
            net.search_range(5, 5)


class TestAsyncConformance:
    @pytest.mark.parametrize("name", ALL)
    def test_build_async_and_submit(self, name):
        anet = overlays.get(name).build_async(15, seed=3)
        keys = uniform_keys(30, seed=4)
        anet.net.bulk_load(keys)
        futures = [
            anet.submit_search_exact(keys[0]),
            anet.submit_search_range(10**8, 3 * 10**8),
            anet.submit_insert(424242),
            anet.submit_delete(keys[1]),
            anet.submit_join(),
        ]
        anet.drain()
        assert all(f.succeeded for f in futures), [f.error for f in futures]
        assert futures[0].result.found
        # With ops in flight the range may be honestly truncated (e.g. the
        # concurrent join grew the ring mid-scan); completeness under
        # serialized conditions is pinned in test_serialized_queries below.
        assert isinstance(futures[1].result, RangeSearchResult)

    @pytest.mark.parametrize("name", ALL)
    def test_fail_capability_gated(self, name):
        anet = overlays.get(name).build_async(10, seed=3)
        victim = anet.net.addresses()[0]
        if anet.supports("fail"):
            anet.submit_fail(victim)
            anet.drain()
            assert victim not in anet.net.peers
        else:
            with pytest.raises(CapabilityError):
                anet.submit_fail(victim)

    @pytest.mark.parametrize("name", ALL)
    def test_serialized_queries_match_sync(self, name):
        entry = overlays.get(name)
        sync = entry.build(30, seed=3)
        anet = entry.wrap(entry.build(30, seed=3), latency=ConstantLatency(1.0))
        keys = uniform_keys(80, seed=9)
        sync.bulk_load(keys)
        anet.net.bulk_load(keys)
        for key in keys[:25]:
            expected = sync.search_exact(key)
            future = anet.submit_search_exact(key)
            anet.drain()
            assert future.succeeded
            assert future.result.found is expected.found is True
            assert future.result.owner == expected.owner
            assert future.trace.total == expected.trace.total
        for low in (10**8, 4 * 10**8, 7 * 10**8):
            expected = sync.search_range(low, low + 10**8)
            future = anet.submit_search_range(low, low + 10**8)
            anet.drain()
            assert future.succeeded
            assert future.result.owners == expected.owners
            assert future.result.keys == expected.keys
            assert future.result.complete is expected.complete is True
            assert future.trace.total == expected.trace.total

    @pytest.mark.parametrize("name", ALL)
    def test_serialized_membership_and_data_match_sync(self, name):
        entry = overlays.get(name)
        sync = entry.build(30, seed=3)
        anet = entry.wrap(entry.build(30, seed=3), latency=ConstantLatency(1.0))
        for _ in range(10):
            expected = sync.join()
            future = anet.submit_join()
            anet.drain()
            assert future.succeeded
            assert future.result.address == expected.address
            assert future.result.parent == expected.parent
            assert future.result.total_messages == expected.total_messages
        for key in uniform_keys(15, seed=12):
            expected = sync.insert(key)
            future = anet.submit_insert(key)
            anet.drain()
            assert future.succeeded
            assert future.result.owner == expected.owner
            assert future.trace.total == expected.trace.total
        for index in (7, 3, 11, 0, 5):
            victim = sync.addresses()[index]
            expected = sync.leave(victim)
            future = anet.submit_leave(victim)
            anet.drain()
            assert future.succeeded
            assert future.result.replacement == expected.replacement
            assert future.result.total_messages == expected.total_messages
        assert sync.size == anet.size
        assert snapshot(name, sync) == snapshot(name, anet.net)

    @pytest.mark.parametrize("name", ALL)
    def test_interleaved_runs_deterministic(self, name):
        def one_run():
            from repro.sim.latency import ExponentialLatency
            from repro.util.rng import SeededRng

            rng = SeededRng(21)
            entry = overlays.get(name)
            anet = entry.wrap(
                entry.build(40, seed=2),
                latency=ExponentialLatency(1.0, rng.child("latency")),
            )
            anet.net.bulk_load(uniform_keys(200, seed=5))
            futures = []
            while len(futures) < 120:
                roll = rng.random()
                if roll < 0.15:
                    futures.append(anet.submit_join())
                elif roll < 0.3:
                    candidates = anet.leave_candidates()
                    if len(candidates) > 8:
                        futures.append(
                            anet.submit_leave(rng.choice(sorted(candidates)))
                        )
                else:
                    futures.append(anet.submit_search_exact(rng.randint(1, 10**9)))
            anet.drain()
            return anet, futures

        first_net, first = one_run()
        second_net, second = one_run()
        assert all(f.done for f in first)
        assert first_net.max_in_flight > 1  # genuine overlap
        assert first_net.event_log == second_net.event_log
        assert [(f.status, f.hops, f.trace.total) for f in first] == [
            (f.status, f.hops, f.trace.total) for f in second
        ]
        assert snapshot(name, first_net.net) == snapshot(name, second_net.net)


class TestLocalityConformance:
    """The locality extension must not disturb Algorithm 1's wire protocol
    unless it is switched on — and when it is, the sync facade and the
    serialized async runtime must still agree message for message."""

    @staticmethod
    def _grown(config=None, topology=None, n_peers=24, seed=5):
        from repro.core.network import BatonConfig, BatonNetwork

        net = BatonNetwork(config=config or BatonConfig(), seed=seed)
        if topology is not None:
            net.topology = topology
        net.bootstrap()
        results = [net.join() for _ in range(n_peers - 1)]
        return net, results

    def test_probing_off_join_identical_to_algorithm_1(self):
        from repro.core.network import BatonConfig, LocalityConfig
        from repro.net.message import MsgType
        from repro.sim.topology import ClusteredTopology

        plain, plain_joins = self._grown()
        # join_probes=0 with a topology installed, and join_probes=4
        # without one: both sides of the probing gate stay cold.
        for config, topology in (
            (
                BatonConfig(locality=LocalityConfig(join_probes=0)),
                ClusteredTopology(seed=9, regions=4),
            ),
            (BatonConfig(locality=LocalityConfig(join_probes=4)), None),
        ):
            gated, gated_joins = self._grown(config=config, topology=topology)
            assert gated.bus.stats.by_type == plain.bus.stats.by_type
            assert gated.bus.stats.by_type[MsgType.JOIN_PROBE] == 0
            assert [
                (j.address, j.parent, j.total_messages) for j in gated_joins
            ] == [
                (j.address, j.parent, j.total_messages) for j in plain_joins
            ]
            assert snapshot("baton", gated) == snapshot("baton", plain)

    def test_probing_on_serialized_async_matches_sync(self):
        from repro.core.network import BatonConfig, BatonNetwork, LocalityConfig
        from repro.net.message import MsgType
        from repro.sim.topology import ClusteredTopology

        config = BatonConfig(locality=LocalityConfig(join_probes=4))
        topology = ClusteredTopology(seed=11, regions=4)
        sync, sync_joins = self._grown(config=config, topology=topology)
        assert sync.bus.stats.by_type[MsgType.JOIN_PROBE] > 0

        async_net = BatonNetwork(config=config, seed=5)
        async_net.bootstrap()
        anet = overlays.get("baton").wrap(
            async_net, topology=ClusteredTopology(seed=11, regions=4)
        )
        for expected in sync_joins:
            future = anet.submit_join()
            anet.drain()
            assert future.succeeded
            assert future.result.address == expected.address
            assert future.result.parent == expected.parent
            assert future.result.total_messages == expected.total_messages
        assert async_net.bus.stats.by_type == sync.bus.stats.by_type
        assert snapshot("baton", async_net) == snapshot("baton", sync)

    @pytest.mark.parametrize("n_peers", (2, 9, 24, 33))
    def test_bulk_build_pins_hold_with_probing_config(self, n_peers):
        from repro.core.bulk_build import bulk_build, incremental_reference
        from repro.core.invariants import collect_violations
        from repro.core.network import BatonConfig, LocalityConfig

        # No topology is installed on either side, so probing stays
        # inactive and the construction equivalence contract must hold
        # even with the locality knobs present in the config.
        config = BatonConfig(
            locality=LocalityConfig(join_probes=4, cache_size=64)
        )
        bulk = bulk_build(n_peers, config=config)
        grown = incremental_reference(n_peers, config=config)
        assert snapshot("baton", bulk) == snapshot("baton", grown)
        assert set(bulk.peers) == set(grown.peers)
        assert collect_violations(bulk) == []
