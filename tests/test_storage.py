"""Unit tests for the local key store (repro.core.storage)."""

from repro.core.storage import LocalStore


class TestBasics:
    def test_empty(self):
        store = LocalStore()
        assert len(store) == 0
        assert store.min() is None
        assert store.max() is None
        assert store.median() is None

    def test_insert_keeps_sorted_order(self):
        store = LocalStore()
        for key in (5, 1, 9, 3):
            store.insert(key)
        assert list(store) == [1, 3, 5, 9]

    def test_duplicates_are_kept(self):
        store = LocalStore([4, 4, 4])
        store.insert(4)
        assert len(store) == 4

    def test_contains(self):
        store = LocalStore([2, 4, 6])
        assert 4 in store
        assert 5 not in store

    def test_delete_removes_one_occurrence(self):
        store = LocalStore([7, 7, 8])
        assert store.delete(7)
        assert list(store) == [7, 8]

    def test_delete_missing_returns_false(self):
        store = LocalStore([1, 2])
        assert not store.delete(99)
        assert len(store) == 2

    def test_clear_returns_everything(self):
        store = LocalStore([3, 1, 2])
        assert store.clear() == [1, 2, 3]
        assert len(store) == 0

    def test_extend_merges_sorted(self):
        store = LocalStore([5, 1])
        store.extend([3, 2])
        assert list(store) == [1, 2, 3, 5]


class TestRangeQueries:
    def test_count_in(self):
        store = LocalStore([1, 3, 5, 7, 9])
        assert store.count_in(3, 8) == 3
        assert store.count_in(0, 100) == 5
        assert store.count_in(4, 5) == 0

    def test_keys_in_half_open(self):
        store = LocalStore([1, 3, 5, 7])
        assert store.keys_in(3, 7) == [3, 5]

    def test_keys_in_with_duplicates(self):
        store = LocalStore([2, 2, 2, 3])
        assert store.keys_in(2, 3) == [2, 2, 2]


class TestAggregates:
    def test_min_max(self):
        store = LocalStore([42, 7, 19])
        assert store.min() == 7
        assert store.max() == 42

    def test_median_odd(self):
        assert LocalStore([1, 2, 3]).median() == 2

    def test_median_even_takes_upper(self):
        assert LocalStore([1, 2, 3, 4]).median() == 3


class TestSplits:
    def test_split_below(self):
        store = LocalStore([1, 3, 5, 7])
        moved = store.split_below(5)
        assert moved == [1, 3]
        assert list(store) == [5, 7]

    def test_split_at_or_above(self):
        store = LocalStore([1, 3, 5, 7])
        moved = store.split_at_or_above(5)
        assert moved == [5, 7]
        assert list(store) == [1, 3]

    def test_split_below_everything(self):
        store = LocalStore([1, 2])
        assert store.split_below(10) == [1, 2]
        assert len(store) == 0

    def test_split_preserves_total(self):
        store = LocalStore(range(100))
        moved = store.split_below(37)
        assert len(moved) + len(store) == 100
        assert all(k < 37 for k in moved)
        assert all(k >= 37 for k in store)
