"""Protocol tests: exact-match search (§IV-A)."""

import math

import pytest

from repro.core import BatonNetwork
from repro.core.ranges import Range
from repro.net.message import MsgType

from tests.conftest import make_network


class TestCorrectness:
    def test_finds_loaded_keys_from_random_starts(self, net100, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(300)]
        net100.bulk_load(keys)
        for key in rng.sample(keys, 100):
            result = net100.search_exact(key)
            assert result.found
            assert key in net100.peer(result.owner).store

    def test_missing_key_reports_owner(self, net100):
        result = net100.search_exact(123_456_789)
        assert not result.found
        assert net100.peer(result.owner).range.contains(123_456_789)

    def test_search_from_every_start(self, net20, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(50)]
        net20.bulk_load(keys)
        for start in net20.addresses():
            key = rng.choice(keys)
            assert net20.search_exact(key, via=start).found

    def test_singleton_network(self):
        net = BatonNetwork(seed=0)
        root = net.bootstrap()
        net.peer(root).store.insert(7)
        assert net.search_exact(7).found
        assert not net.search_exact(8).found

    def test_search_at_range_boundaries(self, net20):
        # Keys exactly on peers' range boundaries route to the upper owner.
        for peer in list(net20.peers.values())[:10]:
            result = net20.search_exact(peer.range.low)
            assert net20.peer(result.owner).range.contains(peer.range.low)

    def test_key_below_domain_lands_leftmost(self, net20):
        result = net20.search_exact(0)
        assert result.owner == net20.leftmost_peer().address
        assert not result.found

    def test_key_above_domain_lands_rightmost(self, net20):
        result = net20.search_exact(10**10)
        assert result.owner == net20.rightmost_peer().address
        assert not result.found


class TestCost:
    def test_hop_count_logarithmic(self, rng):
        for n_peers in (64, 256):
            net = make_network(n_peers, seed=2)
            keys = [rng.randint(1, 10**9 - 1) for _ in range(200)]
            net.bulk_load(keys)
            costs = [net.search_exact(k).trace.total for k in keys]
            bound = 1.44 * math.log2(n_peers) + 4
            assert sum(costs) / len(costs) <= bound
            assert max(costs) <= 2 * bound

    def test_messages_tagged_as_search(self, net20):
        result = net20.search_exact(5_000_000)
        assert result.trace.total == result.trace.count(MsgType.SEARCH)

    def test_query_at_owner_costs_zero(self, net20, rng):
        key = rng.randint(1, 10**9 - 1)
        owner = net20.search_exact(key).owner
        result = net20.search_exact(key, via=owner)
        assert result.trace.total == 0


class TestAgainstOracle:
    def test_owner_matches_range_partition(self, net100, rng):
        # The peer found by routing must be the one whose range covers the
        # key according to the global partition.
        by_low = sorted(net100.peers.values(), key=lambda p: p.range.low)
        for _ in range(100):
            key = rng.randint(1, 10**9 - 1)
            owner = net100.search_exact(key).owner
            import bisect

            lows = [p.range.low for p in by_low]
            expected = by_low[bisect.bisect_right(lows, key) - 1]
            assert owner == expected.address
