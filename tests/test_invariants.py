"""Tests for the invariant checker itself: it must catch seeded corruption."""

import pytest

from repro.core import BatonNetwork, check_invariants, collect_violations, tree_height
from repro.core.ids import Position
from repro.core.ranges import Range
from repro.util.errors import InvariantViolation

from tests.conftest import make_network


class TestCleanNetworks:
    def test_empty_network_has_no_violations(self):
        net = BatonNetwork(seed=0)
        assert collect_violations(net) == []

    def test_singleton_clean(self):
        net = BatonNetwork(seed=0)
        net.bootstrap()
        assert collect_violations(net) == []

    def test_built_network_clean(self):
        assert collect_violations(make_network(77, seed=3)) == []

    def test_tree_height_of_singleton(self):
        net = BatonNetwork(seed=0)
        net.bootstrap()
        assert tree_height(net) == 1


class TestDetection:
    def test_detects_range_corruption(self):
        net = make_network(20, seed=1)
        peer = net.peer(net.random_peer_address())
        peer.range = Range(peer.range.low, peer.range.high + 10)
        violations = collect_violations(net)
        assert violations
        with pytest.raises(InvariantViolation):
            check_invariants(net)

    def test_detects_broken_adjacency(self):
        net = make_network(20, seed=1)
        peers = list(net.peers.values())
        a = next(p for p in peers if p.left_adjacent is not None)
        a.left_adjacent = None
        assert any("adjacent" in v for v in collect_violations(net))

    def test_detects_stale_link_info(self):
        net = make_network(20, seed=1)
        peer = next(p for p in net.peers.values() if p.parent is not None)
        peer.parent.range = Range(0, 1)
        assert any("stale range" in v for v in collect_violations(net))

    def test_detects_missing_table_entry(self):
        net = make_network(40, seed=2)
        peer = next(
            p
            for p in net.peers.values()
            if any(info for _, info in p.left_table.occupied())
        )
        index, _ = next(iter(p for p in [list(peer.left_table.occupied())[0]]))[0:2]
        peer.left_table.set(index, None)
        assert any("misses occupied slot" in v for v in collect_violations(net))

    def test_detects_theorem1_break(self):
        net = make_network(40, seed=2)
        internal = next(
            p
            for p in net.peers.values()
            if not p.is_leaf and list(p.left_table.occupied())
        )
        for idx in internal.left_table.valid_indices():
            internal.left_table.set(idx, None)
        violations = collect_violations(net)
        assert any("incomplete routing tables" in v for v in violations)

    def test_detects_ghosts(self):
        net = make_network(20, seed=1)
        net.fail(net.random_peer_address())
        assert any("ghost" in v for v in collect_violations(net))

    def test_detects_position_map_drift(self):
        net = make_network(20, seed=1)
        peer = net.peer(net.random_peer_address())
        bogus = Position(12, 1)
        net._positions[bogus] = peer.address
        violations = collect_violations(net)
        assert violations

    def test_detects_store_out_of_range(self):
        net = make_network(20, seed=1)
        peer = net.peer(net.random_peer_address())
        peer.store.insert(peer.range.high + 100)
        assert any("outside" in v for v in collect_violations(net))

    def test_error_message_lists_violations(self):
        net = make_network(20, seed=1)
        peer = net.peer(net.random_peer_address())
        peer.store.insert(peer.range.high + 100)
        with pytest.raises(InvariantViolation, match="violation"):
            check_invariants(net)
