"""Protocol tests: node join (Algorithm 1 + table updates)."""

import math

import pytest

from repro.core import BatonNetwork, check_invariants, tree_height
from repro.core.ids import Position
from repro.net.message import MsgType

from tests.conftest import make_network


class TestGrowth:
    def test_bootstrap_owns_whole_domain(self):
        net = BatonNetwork(seed=1)
        root = net.bootstrap()
        peer = net.peer(root)
        assert peer.position == Position(0, 1)
        assert peer.range == net.config.domain

    def test_second_bootstrap_rejected(self):
        net = BatonNetwork(seed=1)
        net.bootstrap()
        with pytest.raises(ValueError):
            net.bootstrap()

    def test_root_accepts_first_two_joins(self):
        net = BatonNetwork(seed=1)
        root = net.bootstrap()
        first = net.join(via=root)
        second = net.join(via=root)
        assert first.parent == root
        assert second.parent == root
        assert net.peer(first.address).position == Position(1, 1)
        assert net.peer(second.address).position == Position(1, 2)

    @pytest.mark.parametrize("n_peers", [2, 3, 5, 8, 13, 21, 34, 55])
    def test_invariants_hold_at_every_size(self, n_peers):
        make_network(n_peers, seed=3)

    def test_incremental_invariants(self):
        net = BatonNetwork(seed=5)
        net.bootstrap()
        for _ in range(60):
            net.join()
            check_invariants(net)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_different_seeds_all_valid(self, seed):
        make_network(64, seed=seed)

    def test_height_within_balanced_bound(self):
        for n_peers in (50, 150, 400):
            net = make_network(n_peers, seed=1)
            assert tree_height(net) <= math.ceil(1.44 * math.log2(n_peers)) + 1

    def test_range_split_shares_data(self):
        net = BatonNetwork(seed=2)
        root = net.bootstrap()
        for key in range(100, 200):
            net.peer(root).store.insert(key)
        result = net.join(via=root)
        child = net.peer(result.address)
        parent = net.peer(root)
        assert len(child.store) + len(parent.store) == 100
        assert len(child.store) == 50  # median split halves the content
        assert child.range.high == parent.range.low  # left child precedes


class TestMessageCosts:
    def test_join_update_within_paper_bound(self):
        net = make_network(200, seed=9)
        for _ in range(20):
            result = net.join()
            bound = 6 * math.log2(net.size) + 10
            assert result.update_trace.total <= bound, (
                result.update_trace.total,
                bound,
            )

    def test_join_find_messages_are_join_find_type(self):
        net = make_network(50, seed=9)
        result = net.join()
        assert result.find_trace.total == result.find_trace.count(MsgType.JOIN_FIND)

    def test_join_find_cheap_and_flat(self):
        # The paper's observation: finding the join spot costs a few
        # messages regardless of network size.
        small = make_network(50, seed=4)
        large = make_network(500, seed=4)
        small_costs = [small.join().find_trace.total for _ in range(30)]
        large_costs = [large.join().find_trace.total for _ in range(30)]
        assert sum(large_costs) / 30 <= sum(small_costs) / 30 + 4

    def test_total_messages_property(self):
        net = make_network(30, seed=1)
        result = net.join()
        assert result.total_messages == (
            result.find_trace.total + result.update_trace.total
        )


class TestJoinPlacement:
    def test_new_node_is_leaf(self):
        net = make_network(40, seed=8)
        result = net.join()
        assert net.peer(result.address).is_leaf

    def test_parent_has_full_tables(self):
        # Theorem 1's acceptance condition, checked post-hoc.
        net = make_network(40, seed=8)
        result = net.join()
        parent = net.peer(result.parent)
        assert parent.tables_full()

    def test_join_via_every_entry_point(self):
        net = make_network(25, seed=6)
        for entry in list(net.addresses())[:10]:
            net.join(via=entry)
            check_invariants(net)

    def test_stats_track_joins(self):
        net = make_network(10, seed=0)
        before = net.stats.joins
        net.join()
        assert net.stats.joins == before + 1


class TestNarrowRanges:
    """Width-1 ranges refuse to split gracefully (no ValueError crashes)."""

    def test_join_saturates_narrow_domain_gracefully(self):
        from repro.core import BatonConfig
        from repro.core.ranges import Range
        from repro.util.errors import ProtocolError, ReproError

        config = BatonConfig(domain=Range(0, 4))
        net = BatonNetwork(config=config, seed=3)
        net.bootstrap()
        joined = 1
        error = None
        for _ in range(8):
            try:
                net.join()
                joined += 1
            except ReproError as exc:
                error = exc
                break
        # the domain holds at most 4 width-1 peers; the refusal is a
        # ProtocolError (defined library error), never a ValueError crash
        assert joined == 4
        assert isinstance(error, ProtocolError)
        assert net.size == 4
        check_invariants(net)
        assert all(p.range.width == 1 for p in net.peers.values())

    def test_saturated_network_still_serves_queries(self):
        from repro.core import BatonConfig
        from repro.core.ranges import Range
        from repro.util.errors import ReproError

        config = BatonConfig(domain=Range(0, 4))
        net = BatonNetwork(config=config, seed=3)
        net.bootstrap()
        for _ in range(3):
            net.join()
        net.insert(2)
        assert net.search_exact(2).found
        try:
            net.join()
        except ReproError:
            pass
        assert net.search_exact(2).found  # refusal left routing intact

    def test_balance_rejoin_refuses_unsplittable_hotspot(self):
        from repro.core import BatonConfig, LoadBalanceConfig
        from repro.core.balance import maybe_balance
        from repro.core.ranges import Range

        config = BatonConfig(
            domain=Range(0, 4),
            balance=LoadBalanceConfig(capacity=3, enabled=True),
        )
        net = BatonNetwork(config=config, seed=3)
        net.bootstrap()
        for _ in range(3):
            net.join()
        # overload one width-1 leaf with duplicates: the adjacent shift
        # cannot place a boundary and the rejoin cannot split, so the
        # episode refuses (returns None) instead of crashing mid-protocol
        leaf = next(p for p in net.peers.values() if p.is_leaf)
        for _ in range(10):
            leaf.store.insert(leaf.range.low)
        assert maybe_balance(net, leaf.address) is None
        check_invariants(net)
