"""Unit tests for seeded randomness (repro.util.rng)."""

from repro.util.rng import SeededRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_is_not_concatenation(self):
        assert derive_seed(42, "ab") != derive_seed(42, "a", "b")


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a, b = SeededRng(7), SeededRng(7)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_child_streams_independent_of_parent_draws(self):
        parent = SeededRng(7)
        child_before = parent.child("x").randint(0, 10**9)
        parent.randint(0, 100)  # consume parent randomness
        child_after = SeededRng(7).child("x").randint(0, 10**9)
        assert child_before == child_after

    def test_choice_and_sample(self):
        rng = SeededRng(1)
        items = list(range(20))
        assert rng.choice(items) in items
        sample = rng.sample(items, 5)
        assert len(set(sample)) == 5

    def test_shuffle_in_place_is_permutation(self):
        rng = SeededRng(2)
        items = list(range(30))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_uniform_bounds(self):
        rng = SeededRng(3)
        for _ in range(100):
            assert 2.0 <= rng.uniform(2.0, 5.0) < 5.0

    def test_weighted_choice_respects_weights(self):
        rng = SeededRng(4)
        outcomes = [rng.weighted_choice(["a", "b"], [0.999, 0.001]) for _ in range(200)]
        assert outcomes.count("a") > 180

    def test_weighted_choice_deterministic(self):
        draws1 = [
            SeededRng(9).weighted_choice("abcd", [1, 2, 3, 4]) for _ in range(5)
        ]
        draws2 = [
            SeededRng(9).weighted_choice("abcd", [1, 2, 3, 4]) for _ in range(5)
        ]
        assert draws1 == draws2

    def test_weighted_choice_rejects_bad_input(self):
        import pytest

        with pytest.raises(ValueError):
            SeededRng(1).weighted_choice(["a", "b"], [1.0])
        with pytest.raises(ValueError):
            SeededRng(1).weighted_choice(["a", "b"], [0.0, 0.0])

    def test_weighted_chooser_matches_weighted_choice_stream(self):
        # Both consume exactly one uniform draw per sample, so the same seed
        # yields the same sequence.
        items = list(range(50))
        weights = [1.0 / (i + 1) for i in range(50)]
        chooser = SeededRng(13).weighted_chooser(items, weights)
        one_shot = SeededRng(13)
        for _ in range(200):
            assert chooser() == one_shot.weighted_choice(items, weights)

    def test_weighted_chooser_respects_weights(self):
        chooser = SeededRng(4).weighted_chooser(["a", "b"], [0.999, 0.001])
        outcomes = [chooser() for _ in range(200)]
        assert outcomes.count("a") > 180
