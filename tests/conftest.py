"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import BatonConfig, BatonNetwork, LoadBalanceConfig, check_invariants


def make_network(n_peers: int, seed: int = 0, **config_kwargs) -> BatonNetwork:
    """A BATON network of ``n_peers``, invariants verified."""
    config = BatonConfig(**config_kwargs) if config_kwargs else None
    net = BatonNetwork.build(n_peers, seed=seed, config=config)
    check_invariants(net)
    return net


def balanced_config(capacity: int = 30) -> BatonConfig:
    """A config with load balancing switched on."""
    return BatonConfig(balance=LoadBalanceConfig(capacity=capacity, enabled=True))


@pytest.fixture
def net20() -> BatonNetwork:
    """A 20-peer network (fresh per test)."""
    return make_network(20, seed=11)


@pytest.fixture
def net100() -> BatonNetwork:
    """A 100-peer network (fresh per test)."""
    return make_network(100, seed=7)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
