"""Tests for the event-driven runtime (repro.sim.runtime).

Two properties anchor everything else:

* **Serialized equivalence** — with constant latency and one operation in
  flight at a time, the async network sends the same message sequence as
  the synchronous one and converges to the identical structure.
* **Determinism** — a seeded interleaved run replays byte-for-byte:
  same event log, same per-operation outcomes, across two fresh runs.
"""

import pytest

from repro.core import check_invariants
from repro.core.network import BatonNetwork
from repro.sim.latency import ConstantLatency, ExponentialLatency
from repro.sim.runtime import AsyncBatonNetwork
from repro.util.errors import PeerNotFoundError, ReproError
from repro.util.rng import SeededRng
from repro.workloads.generators import uniform_keys


def structure_snapshot(net: BatonNetwork) -> set:
    return {
        (
            str(peer.position),
            peer.range.low,
            peer.range.high,
            tuple(sorted(peer.store)),
        )
        for peer in net.peers.values()
    }


def serialized_pair(n_peers: int = 40, seed: int = 3):
    """Identical sync and async networks; async uses constant latency."""
    sync = BatonNetwork.build(n_peers, seed=seed)
    anet = AsyncBatonNetwork(
        BatonNetwork.build(n_peers, seed=seed), latency=ConstantLatency(1.0)
    )
    return sync, anet


class TestSerializedEquivalence:
    def test_search_exact_matches_sync(self):
        sync, anet = serialized_pair()
        keys = uniform_keys(30, seed=9)
        sync.bulk_load(keys)
        anet.net.bulk_load(keys)
        for key in keys:
            expected = sync.search_exact(key)
            future = anet.submit_search_exact(key)
            anet.drain()
            assert future.succeeded
            assert future.result.found is expected.found is True
            assert future.result.owner == expected.owner
            assert future.trace.total == expected.trace.total

    def test_search_range_matches_sync(self):
        sync, anet = serialized_pair()
        keys = uniform_keys(200, seed=10)
        sync.bulk_load(keys)
        anet.net.bulk_load(keys)
        for low in (10**8, 4 * 10**8, 7 * 10**8):
            expected = sync.search_range(low, low + 10**8)
            future = anet.submit_search_range(low, low + 10**8)
            anet.drain()
            assert future.succeeded
            assert future.result.owners == expected.owners
            assert future.result.keys == expected.keys
            assert future.result.complete is expected.complete is True
            assert future.trace.total == expected.trace.total

    def test_insert_delete_match_sync(self):
        sync, anet = serialized_pair()
        for key in uniform_keys(25, seed=12):
            expected = sync.insert(key)
            future = anet.submit_insert(key)
            anet.drain()
            assert future.succeeded
            assert future.result.owner == expected.owner
            assert future.trace.total == expected.trace.total
            expected_del = sync.delete(key)
            future_del = anet.submit_delete(key)
            anet.drain()
            assert future_del.result.applied is expected_del.applied is True
            assert future_del.result.owner == expected_del.owner

    def test_join_and_leave_match_sync(self):
        sync, anet = serialized_pair()
        for _ in range(12):
            expected = sync.join()
            future = anet.submit_join()
            anet.drain()
            assert future.succeeded
            assert future.result.address == expected.address
            assert future.result.parent == expected.parent
            assert future.result.total_messages == expected.total_messages
        for index in (7, 3, 11, 0, 5):
            victim = sync.addresses()[index]
            expected = sync.leave(victim)
            future = anet.submit_leave(victim)
            anet.drain()
            assert future.succeeded
            assert future.result.replacement == expected.replacement
            assert future.result.total_messages == expected.total_messages

    def test_final_structures_identical(self):
        sync, anet = serialized_pair()
        keys = uniform_keys(40, seed=5)
        for key in keys[:20]:
            sync.insert(key)
            anet.submit_insert(key)
            anet.drain()
        for _ in range(8):
            sync.join()
            anet.submit_join()
            anet.drain()
        for index in (9, 2, 14):
            victim = sync.addresses()[index]
            sync.leave(victim)
            anet.submit_leave(victim)
            anet.drain()
        check_invariants(sync)
        check_invariants(anet.net)
        assert structure_snapshot(sync) == structure_snapshot(anet.net)


def interleaved_run(seed: int = 42, n_ops: int = 520):
    """A mixed join/leave/query stream, all submitted up front."""
    rng = SeededRng(seed)
    anet = AsyncBatonNetwork(
        BatonNetwork.build(60, seed=1),
        latency=ExponentialLatency(1.0, rng.child("latency")),
    )
    anet.net.bulk_load(uniform_keys(600, seed=2))
    futures = []
    while len(futures) < n_ops:
        roll = rng.random()
        if roll < 0.15:
            futures.append(anet.submit_join())
        elif roll < 0.3:
            candidates = anet.leave_candidates()
            if len(candidates) > 8:
                futures.append(anet.submit_leave(rng.choice(sorted(candidates))))
        else:
            futures.append(anet.submit_search_exact(rng.randint(1, 10**9 - 1)))
    anet.drain()
    return anet, futures


class TestInterleaving:
    def test_many_operations_overlap_and_complete(self):
        anet, futures = interleaved_run()
        assert len(futures) >= 500
        assert all(future.done for future in futures)
        assert anet.max_in_flight > 1  # genuine in-flight overlap
        succeeded = sum(1 for f in futures if f.succeeded)
        assert succeeded > len(futures) // 2

    def test_deterministic_across_two_runs(self):
        first_net, first = interleaved_run()
        second_net, second = interleaved_run()
        assert first_net.event_log == second_net.event_log
        assert [(f.status, f.hops, f.trace.total) for f in first] == [
            (f.status, f.hops, f.trace.total) for f in second
        ]

    def test_reconcile_restores_invariants(self):
        anet, _futures = interleaved_run()
        anet.reconcile()
        check_invariants(anet.net)

    def test_key_conservation_under_graceful_churn(self):
        # Graceful leaves hand content over, joins split it: no key is lost.
        anet, _futures = interleaved_run()
        keys = sorted(
            key for peer in anet.net.peers.values() for key in peer.store
        )
        assert keys == sorted(uniform_keys(600, seed=2))


class TestOpFuture:
    def test_done_callback_fires_at_completion(self):
        anet = AsyncBatonNetwork(
            BatonNetwork.build(10, seed=2), latency=ConstantLatency(1.0)
        )
        seen = []
        future = anet.submit_search_exact(123)
        future.add_done_callback(lambda f: seen.append(f.status))
        assert seen == []  # nothing ran yet
        anet.drain()
        assert seen == ["succeeded"]
        # late registration fires immediately
        future.add_done_callback(lambda f: seen.append("late"))
        assert seen == ["succeeded", "late"]

    def test_latency_measures_submit_to_completion(self):
        anet = AsyncBatonNetwork(
            BatonNetwork.build(10, seed=2), latency=ConstantLatency(2.0)
        )
        future = anet.submit_search_exact(123)
        assert future.latency is None
        anet.drain()
        # at least the initial delivery hop, quantized by the constant model
        assert future.latency is not None
        assert future.latency >= 2.0
        assert future.latency == pytest.approx(2.0 * future.hops)

    def test_query_to_failed_carrier_fails_cleanly(self):
        anet = AsyncBatonNetwork(
            BatonNetwork.build(20, seed=6), latency=ConstantLatency(1.0)
        )
        start = anet.net.addresses()[5]
        future = anet.submit_search_exact(10**8, via=start)
        anet.net.fail(start)  # the carrier crashes before delivery
        anet.drain()
        assert future.done and not future.succeeded
        assert isinstance(future.error, ReproError)

    def test_duplicate_leave_rejected(self):
        anet = AsyncBatonNetwork(
            BatonNetwork.build(20, seed=6), latency=ConstantLatency(1.0)
        )
        victim = anet.net.addresses()[3]
        anet.submit_leave(victim)
        with pytest.raises(ValueError):
            anet.submit_leave(victim)
        anet.drain()
        assert victim not in anet.net.peers

    def test_leave_of_vanished_peer_fails(self):
        anet = AsyncBatonNetwork(
            BatonNetwork.build(20, seed=6), latency=ConstantLatency(1.0)
        )
        victim = anet.net.addresses()[4]
        anet.net.fail(victim)
        future = anet.submit_leave(victim)
        anet.drain()
        assert future.done and not future.succeeded
        assert isinstance(future.error, PeerNotFoundError)


class TestUpdatePropagation:
    def test_updates_apply_after_latency_not_immediately(self):
        anet = AsyncBatonNetwork(
            BatonNetwork.build(30, seed=8), latency=ConstantLatency(1.0)
        )
        assert anet.net.updates.in_flight == 0
        anet.submit_join()
        anet.drain()
        # join's table refreshes were scheduled (and by now delivered)
        assert anet.net.updates.in_flight == 0
        check_invariants(anet.net)

    def test_sink_counts_in_flight(self):
        anet = AsyncBatonNetwork(
            BatonNetwork.build(30, seed=8), latency=ConstantLatency(1.0)
        )
        anet.submit_join()
        # run just past the accept: refreshes are in the air
        saw_in_flight = False
        while anet.sim.pending_count:
            anet.sim.step()
            if anet.net.updates.in_flight > 0:
                saw_in_flight = True
        assert saw_in_flight
        assert anet.net.updates.in_flight == 0
