"""Tests for the topology-aware transport seam (repro.sim.topology).

Three properties anchor the redesign:

* **Determinism** — same seed + placement rules => identical link delays
  for identical call sequences, and placements that do not depend on the
  order links are first used.
* **Heterogeneity** — clustered topologies genuinely price links by their
  endpoints: intra-region is cheap, inter-region expensive, and the two
  directions of a region pair differ (asymmetric WAN routes).
* **Serialized equivalence survives** — running the async runtimes under a
  clustered topology, one operation at a time, still sends message-for-
  message what the synchronous facades send, for every registered overlay.
"""

import pytest

from repro import overlays
from repro.sim.latency import ConstantLatency, ExponentialLatency
from repro.sim.topology import (
    ClusteredTopology,
    CoordinateTopology,
    Hop,
    available_topologies,
    make_topology,
)
from repro.util.rng import SeededRng
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload
from repro.workloads.generators import uniform_keys

ALL = overlays.available()


def cross_region_pair(topology: ClusteredTopology):
    """Two addresses placed in different regions (deterministic for a seed)."""
    first = 1
    for address in range(2, 64):
        if topology.region_of(address) != topology.region_of(first):
            return first, address
    raise AssertionError("all probed addresses landed in one region")


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ClusteredTopology(5),
            lambda: CoordinateTopology(5),
            lambda: make_topology("exponential", seed=5),
        ],
    )
    def test_same_seed_same_delays(self, factory):
        first, second = factory(), factory()
        calls = [(1, 2), (2, 1), (3, 9), (None, 4), (7, 7), (1, 2)]
        for src, dst in calls:
            assert first.sample(src, dst) == second.sample(src, dst)

    def test_placements_do_not_depend_on_query_order(self):
        forward = ClusteredTopology(9)
        backward = ClusteredTopology(9)
        addresses = list(range(1, 40))
        placed_forward = {a: forward.region_of(a) for a in addresses}
        placed_backward = {a: backward.region_of(a) for a in reversed(addresses)}
        assert placed_forward == placed_backward

    def test_coordinate_placements_stable(self):
        topology = CoordinateTopology(3)
        assert topology.coordinates_of(17) == topology.coordinates_of(17)
        x, y = topology.coordinates_of(17)
        assert 0.0 <= x < 1.0 and 0.0 <= y < 1.0


class TestClusteredHeterogeneity:
    def test_intra_cheaper_than_inter(self):
        topology = ClusteredTopology(
            2, regions=3, intra_delay=1.0, inter_delay=10.0, jitter=0.0, asymmetry=0.1
        )
        src, dst = cross_region_pair(topology)
        same = next(
            a
            for a in range(2, 64)
            if a != src and topology.region_of(a) == topology.region_of(src)
        )
        assert topology.sample(src, same) < topology.sample(src, dst)

    def test_link_delays_are_asymmetric(self):
        """The regression the redesign exists for: delay depends on the
        ordered (src, dst) pair, not on a global scalar."""
        topology = ClusteredTopology(
            2, regions=4, intra_delay=1.0, inter_delay=10.0, jitter=0.0, asymmetry=0.2
        )
        src, dst = cross_region_pair(topology)
        forward = topology.sample(src, dst)
        reverse = topology.sample(dst, src)
        assert forward != reverse
        # and with zero jitter, each direction is a stable per-link price
        assert topology.sample(src, dst) == forward
        assert topology.sample(dst, src) == reverse

    def test_client_ingress_is_local(self):
        topology = ClusteredTopology(
            2, regions=4, intra_delay=1.0, inter_delay=10.0, jitter=0.0
        )
        # src=None is normalized to the destination's own placement.
        assert topology.sample(None, 5) == topology.intra_delay

    def test_bandwidth_adds_serialization_time(self):
        topology = ClusteredTopology(
            2,
            regions=3,
            intra_delay=1.0,
            inter_delay=10.0,
            jitter=0.0,
            asymmetry=0.0,
            intra_bandwidth=4.0,
            inter_bandwidth=2.0,
        )
        src, dst = cross_region_pair(topology)
        assert topology.sample(src, dst, size=8.0) == pytest.approx(10.0 + 8.0 / 2.0)
        assert topology.sample(src, dst) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredTopology(0, regions=0)
        with pytest.raises(ValueError):
            ClusteredTopology(0, intra_delay=-1.0)
        with pytest.raises(ValueError):
            ClusteredTopology(0, asymmetry=1.5)
        with pytest.raises(ValueError):
            ClusteredTopology(0, inter_bandwidth=0.0)


class TestScalarDegenerate:
    def test_scalar_models_ignore_the_link(self):
        model = ConstantLatency(2.0)
        assert model.sample(1, 2) == model.sample(9, 9) == model.sample(None, None)

    def test_scalar_models_have_no_bandwidth(self):
        model = ConstantLatency(2.0)
        assert model.sample(1, 2, size=1000.0) == 2.0

    def test_exponential_link_blind_but_seeded(self):
        a = ExponentialLatency(1.0, SeededRng(4))
        b = ExponentialLatency(1.0, SeededRng(4))
        assert [a.sample(1, 2) for _ in range(20)] == [
            b.sample(99, 1) for _ in range(20)
        ]


class TestFactory:
    def test_choices_cover_scalars_and_placements(self):
        names = available_topologies()
        assert "clustered" in names and "coordinate" in names
        for name in names:
            topology = make_topology(name, seed=3)
            assert topology.sample(1, 2) >= 0.0

    def test_params_forwarded(self):
        topology = make_topology("clustered", seed=3, inter_delay=42.0, jitter=0.0)
        assert topology.inter_delay == 42.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="clustered"):
            make_topology("smoke-signals")


class TestHop:
    def test_defaults(self):
        hop = Hop(1, 2)
        assert hop.size == 1.0
        assert Hop(None, 2).src is None

    def test_runtime_rejects_non_hop_yields(self):
        anet = overlays.get("baton").build_async(8, seed=1)

        def bad_steps():
            yield 1.5  # a pre-redesign float delay

        future = anet._new_future("bad")
        with pytest.raises(TypeError, match="per-link"):
            anet._launch(future, bad_steps())


class TestSerializedEquivalenceUnderClusteredTopology:
    """The conformance pin: per-link delays stretch the clock, never the
    message sequence, when operations are serialized."""

    @pytest.mark.parametrize("name", ALL)
    def test_queries_match_sync(self, name):
        entry = overlays.get(name)
        sync = entry.build(30, seed=3)
        anet = entry.wrap(
            entry.build(30, seed=3), topology=ClusteredTopology(11, inter_delay=8.0)
        )
        keys = uniform_keys(60, seed=9)
        sync.bulk_load(keys)
        anet.net.bulk_load(keys)
        for key in keys[:20]:
            expected = sync.search_exact(key)
            future = anet.submit_search_exact(key)
            anet.drain()
            assert future.succeeded
            assert future.result.found is expected.found is True
            assert future.result.owner == expected.owner
            assert future.trace.total == expected.trace.total
        for low in (10**8, 6 * 10**8):
            expected = sync.search_range(low, low + 10**8)
            future = anet.submit_search_range(low, low + 10**8)
            anet.drain()
            assert future.succeeded
            assert future.result.owners == expected.owners
            assert future.result.keys == expected.keys
            assert future.result.complete is expected.complete is True
            assert future.trace.total == expected.trace.total

    @pytest.mark.parametrize("name", ALL)
    def test_membership_matches_sync(self, name):
        entry = overlays.get(name)
        sync = entry.build(25, seed=6)
        anet = entry.wrap(
            entry.build(25, seed=6), topology=ClusteredTopology(11, inter_delay=8.0)
        )
        for _ in range(6):
            expected = sync.join()
            future = anet.submit_join()
            anet.drain()
            assert future.succeeded
            assert future.result.address == expected.address
            assert future.result.parent == expected.parent
            assert future.result.total_messages == expected.total_messages
        for index in (5, 2, 9):
            victim = sync.addresses()[index]
            expected = sync.leave(victim)
            future = anet.submit_leave(victim)
            anet.drain()
            assert future.succeeded
            assert future.result.replacement == expected.replacement
            assert future.result.total_messages == expected.total_messages

    @pytest.mark.parametrize("name", ALL)
    def test_transit_equals_latency_without_queueing(self, name):
        anet = overlays.get(name).build_async(
            20, seed=2, topology=ClusteredTopology(7)
        )
        anet.net.bulk_load(uniform_keys(40, seed=3))
        future = anet.submit_search_exact(uniform_keys(40, seed=3)[0])
        anet.drain()
        assert future.succeeded
        assert future.transit == pytest.approx(future.latency)
        assert future.transit > 0.0


class TestWorkloadIntegration:
    def run_workload(self, **config_kwargs):
        anet = overlays.get("baton").build_async(
            40, seed=1, topology=ClusteredTopology(5, inter_delay=6.0)
        )
        keys = uniform_keys(400, seed=2)
        anet.net.bulk_load(keys)
        config = ConcurrentConfig(
            duration=30.0, churn_rate=0.5, query_rate=4.0, **config_kwargs
        )
        return anet, run_concurrent_workload(anet, keys, config, seed=9)

    def test_report_accounts_transit_time(self):
        _anet, report = self.run_workload()
        assert report.transit_time_total > 0.0
        assert report.query_transit_p50 <= report.query_transit_p99
        assert report.query_transit_mean > 0.0
        text = "\n".join(report.summary_lines())
        assert "transit time" in text

    def test_maintenance_interval_sweeps_in_window(self):
        _anet, report = self.run_workload(maintenance_interval=5.0)
        assert report.reconcile_sweeps >= 30.0 / 5.0 - 1
        assert "reconcile sweep" in "\n".join(report.summary_lines())

    def test_maintenance_respects_capability(self):
        anet = overlays.get("chord").build_async(
            20, seed=1, topology=ClusteredTopology(5)
        )
        keys = uniform_keys(100, seed=2)
        anet.net.bulk_load(keys)
        config = ConcurrentConfig(
            duration=20.0, churn_rate=0.0, query_rate=4.0, maintenance_interval=5.0
        )
        report = run_concurrent_workload(anet, keys, config, seed=4)
        assert report.reconcile_sweeps == 0  # chord advertises no reconcile

    def test_maintenance_interval_validated(self):
        with pytest.raises(ValueError):
            ConcurrentConfig(maintenance_interval=-1.0)

    def test_update_deliveries_priced_like_single_messages(self):
        """Table refreshes pay the same size-1 serialization term as any
        routed hop, so bandwidth-limited links delay both alike."""
        from repro.sim.topology import Topology

        sizes = []

        class Recorder(Topology):
            def link_delay(self, src, dst):
                return 1.0

            def sample(self, src, dst, *, size=0.0):
                sizes.append(size)
                return super().sample(src, dst, size=size)

        anet = overlays.get("baton").build_async(15, seed=2, topology=Recorder())
        anet.submit_join()
        anet.drain()
        assert sizes  # hops and update deliveries both went through sample
        assert all(size == 1.0 for size in sizes)

    def test_clustered_runs_replay_deterministically(self):
        first_net, first = self.run_workload()
        second_net, second = self.run_workload()
        assert first_net.event_log == second_net.event_log
        assert first == second
