"""Tests for the deferred-notification channel (repro.core.network.UpdateChannel)."""

import pytest

from repro.core.network import UpdateChannel
from repro.net.address import Address
from repro.net.bus import MessageBus
from repro.net.message import MsgType


@pytest.fixture
def bus():
    bus = MessageBus()
    for address in (1, 2, 3):
        bus.register(Address(address))
    return bus


class TestImmediateMode:
    def test_applies_inline(self, bus):
        channel = UpdateChannel(bus)
        applied = []
        ok = channel.notify(
            Address(1), Address(2), MsgType.TABLE_UPDATE, lambda: applied.append(1)
        )
        assert ok
        assert applied == [1]
        assert channel.pending_count == 0

    def test_dead_target_counts_but_fails(self, bus):
        channel = UpdateChannel(bus)
        applied = []
        ok = channel.notify(
            Address(1), Address(99), MsgType.TABLE_UPDATE, lambda: applied.append(1)
        )
        assert not ok
        assert applied == []
        assert bus.stats.total == 1  # the attempt still crossed the wire


class TestDeferredMode:
    def test_queues_until_flush(self, bus):
        channel = UpdateChannel(bus)
        channel.deferred = True
        applied = []
        channel.notify(Address(1), Address(2), MsgType.TABLE_UPDATE, lambda: applied.append("a"))
        channel.notify(Address(2), Address(3), MsgType.TABLE_UPDATE, lambda: applied.append("b"))
        assert applied == []
        assert channel.pending_count == 2
        assert bus.stats.total == 2  # messages were sent at notify time
        assert channel.flush() == 2
        assert applied == ["a", "b"]  # FIFO order
        assert channel.pending_count == 0

    def test_flush_is_idempotent(self, bus):
        channel = UpdateChannel(bus)
        channel.deferred = True
        channel.notify(Address(1), Address(2), MsgType.TABLE_UPDATE, lambda: None)
        channel.flush()
        assert channel.flush() == 0

    def test_dead_target_not_queued(self, bus):
        channel = UpdateChannel(bus)
        channel.deferred = True
        ok = channel.notify(Address(1), Address(99), MsgType.TABLE_UPDATE, lambda: None)
        assert not ok
        assert channel.pending_count == 0
