"""Property-based tests for Chord's ring arithmetic and maintenance."""

from hypothesis import given, settings, strategies as st

from repro.chord import ChordNetwork, hash_key, id_distance, in_interval
from repro.chord.hashing import in_open_interval

m_bits = 8  # small ring for exhaustive-ish property checks
ring_ids = st.integers(min_value=0, max_value=(1 << m_bits) - 1)


class TestIntervalProperties:
    @given(ring_ids, ring_ids, ring_ids)
    def test_interval_membership_matches_distance_form(self, value, low, high):
        """(low, high] membership == walking distance characterisation."""
        if low == high:
            expected = True  # whole-ring convention
        else:
            expected = 0 < id_distance(low, value, m_bits) <= id_distance(
                low, high, m_bits
            )
        assert in_interval(value, low, high, m_bits) == expected

    @given(ring_ids, ring_ids, ring_ids)
    def test_open_interval_is_subset_of_half_open(self, value, low, high):
        if in_open_interval(value, low, high, m_bits) and low != high:
            assert in_interval(value, low, high, m_bits)

    @given(ring_ids, ring_ids)
    def test_distance_antisymmetry(self, a, b):
        if a != b:
            total = id_distance(a, b, m_bits) + id_distance(b, a, m_bits)
            assert total == (1 << m_bits)
        else:
            assert id_distance(a, b, m_bits) == 0

    @given(st.integers(min_value=1, max_value=10**9))
    def test_hash_stays_in_ring(self, key):
        assert 0 <= hash_key(key, m_bits) < (1 << m_bits)


class TestRingProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 200),
        n_nodes=st.integers(2, 40),
        churn=st.lists(st.booleans(), max_size=20),
    )
    def test_ring_survives_arbitrary_churn(self, seed, n_nodes, churn):
        net = ChordNetwork.build(n_nodes, seed=seed)
        for is_join in churn:
            if is_join or net.size <= 1:
                net.join()
            else:
                net.leave(net.random_node_address())
        # successors form one cycle covering every node
        start = sorted(net.nodes)[0]
        seen = {start}
        current = net.nodes[start].successor
        while current != start:
            assert current not in seen, "successor cycle is broken"
            seen.add(current)
            current = net.nodes[current].successor
        assert len(seen) == net.size

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 200),
        keys=st.lists(st.integers(1, 10**9 - 1), min_size=1, max_size=40),
        probe=st.integers(1, 10**9 - 1),
    )
    def test_lookup_agrees_with_membership(self, seed, keys, probe):
        net = ChordNetwork.build(10, seed=seed)
        net.bulk_load(keys)
        assert net.search_exact(probe).found == (probe in set(keys))
