"""Tests for the BatonNetwork facade: construction, bookkeeping, bulk load."""

import pytest

from repro.core import BatonConfig, BatonNetwork, LoadBalanceConfig
from repro.core.ranges import Range
from repro.util.errors import NetworkEmptyError

from tests.conftest import make_network


class TestConstruction:
    def test_build_convenience(self):
        net = BatonNetwork.build(25, seed=1)
        assert net.size == 25

    def test_build_rejects_zero(self):
        with pytest.raises(ValueError):
            BatonNetwork.build(0)

    def test_same_seed_same_topology(self):
        a = BatonNetwork.build(40, seed=9)
        b = BatonNetwork.build(40, seed=9)
        assert {p.position for p in a.peers.values()} == {
            p.position for p in b.peers.values()
        }

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BatonConfig(split_policy="golden-ratio")

    def test_midpoint_split_policy(self):
        config = BatonConfig(split_policy="midpoint")
        net = BatonNetwork.build(20, seed=2, config=config)
        from repro.core import check_invariants

        check_invariants(net)


class TestBookkeeping:
    def test_random_peer_on_empty_raises(self):
        with pytest.raises(NetworkEmptyError):
            BatonNetwork(seed=0).random_peer_address()

    def test_leftmost_rightmost(self, net100):
        leftmost = net100.leftmost_peer()
        rightmost = net100.rightmost_peer()
        assert leftmost.range.low == net100.config.domain.low
        assert rightmost.range.high == net100.config.domain.high
        assert leftmost.left_adjacent is None
        assert rightmost.right_adjacent is None

    def test_load_snapshot(self, net20):
        net20.insert(123_456)
        snapshot = net20.load_snapshot()
        assert sum(snapshot.values()) == 1

    def test_addresses_matches_peers(self, net20):
        assert set(net20.addresses()) == set(net20.peers)


class TestBulkLoad:
    def test_bulk_load_places_in_owner_ranges(self, net100, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(500)]
        placed = net100.bulk_load(keys)
        assert placed == len(keys)
        for peer in net100.peers.values():
            for key in peer.store:
                assert peer.range.contains(key)

    def test_bulk_load_skips_out_of_domain(self):
        config = BatonConfig(domain=Range(100, 200))
        net = BatonNetwork.build(5, seed=1, config=config)
        placed = net.bulk_load([50, 150, 250])
        assert placed == 1

    def test_bulk_load_equals_routed_inserts(self, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(100)]
        bulk = make_network(30, seed=5)
        routed = make_network(30, seed=5)
        bulk.bulk_load(keys)
        for key in keys:
            routed.insert(key)
        bulk_contents = {
            peer.position: list(peer.store) for peer in bulk.peers.values()
        }
        routed_contents = {
            peer.position: list(peer.store) for peer in routed.peers.values()
        }
        assert bulk_contents == routed_contents


class TestUpdateChannel:
    def test_deferred_updates_flush(self, net20):
        net20.updates.deferred = True
        victim = next(a for a, p in net20.peers.items() if p.is_leaf)
        net20.leave(victim)
        assert net20.updates.pending_count > 0
        applied = net20.updates.flush()
        assert applied > 0
        net20.updates.deferred = False
        from repro.core import check_invariants

        check_invariants(net20)

    def test_immediate_mode_never_queues(self, net20):
        net20.leave(next(a for a, p in net20.peers.items() if p.is_leaf))
        assert net20.updates.pending_count == 0
