"""End-to-end integration scenarios across all subsystems."""

import random
from collections import Counter

import pytest

from repro.core import (
    BatonConfig,
    BatonNetwork,
    LoadBalanceConfig,
    check_invariants,
    collect_violations,
    tree_height,
)
from repro.workloads.generators import ZipfianKeys, uniform_keys


class TestFullLifecycle:
    def test_grow_load_churn_balance_fail_repair(self):
        """One network lives through everything the paper describes."""
        config = BatonConfig(
            balance=LoadBalanceConfig(capacity=80, enabled=True)
        )
        net = BatonNetwork(config=config, seed=42)
        net.bootstrap()
        oracle: Counter = Counter()
        mix = random.Random(42)

        # Phase 1: grow to 60 peers while inserting uniform data.
        gen = iter(uniform_keys(10_000, seed=1))
        for _ in range(59):
            net.join()
            for _ in range(10):
                key = next(gen)
                net.insert(key)
                oracle[key] += 1
        check_invariants(net)

        # Phase 2: skewed inserts trigger load balancing.
        zipf = ZipfianKeys(theta=1.0, seed=2)
        for _ in range(2000):
            key = zipf.draw()
            net.insert(key)
            oracle[key] += 1
        assert net.stats.balance_events, "skew must trigger balancing"
        check_invariants(net)

        # Phase 3: churn — half the network turns over.
        for _ in range(30):
            net.leave(mix.choice(net.addresses()))
            net.join()
        check_invariants(net)
        stored = Counter()
        for peer in net.peers.values():
            stored.update(peer.store)
        assert stored == +oracle, "graceful churn must not lose data"

        # Phase 4: failures — ranges survive, failed peers' data is lost.
        for _ in range(5):
            victim = mix.choice(net.addresses())
            for key in net.peer(victim).store:
                oracle[key] -= 1
            net.fail(victim)
            net.repair(victim)
        assert collect_violations(net) == []
        stored = Counter()
        for peer in net.peers.values():
            stored.update(peer.store)
        assert stored == +oracle

        # Phase 5: everything still answers queries.
        live_keys = [k for k, c in oracle.items() if c > 0]
        for key in mix.sample(live_keys, 50):
            assert net.search_exact(key).found
        low, high = 10**8, 2 * 10**8
        result = net.search_range(low, high)
        expected = sorted(
            k for k, c in (+oracle).items() for _ in range(c) if low <= k < high
        )
        assert sorted(result.keys) == expected

    def test_scale_then_shrink_keeps_height_balanced(self):
        import math

        net = BatonNetwork.build(256, seed=7)
        assert tree_height(net) <= math.ceil(1.44 * math.log2(256)) + 1
        mix = random.Random(3)
        while net.size > 32:
            net.leave(mix.choice(net.addresses()))
        check_invariants(net)
        assert tree_height(net) <= math.ceil(1.44 * math.log2(32)) + 2

    def test_three_systems_answer_identically(self):
        """BATON, Chord and the multiway tree agree on query answers."""
        from repro.chord import ChordNetwork
        from repro.multiway import MultiwayNetwork

        keys = uniform_keys(300, seed=9)
        baton = BatonNetwork.build(40, seed=1)
        chord = ChordNetwork.build(40, seed=1)
        multiway = MultiwayNetwork.build(40, seed=1)
        for net in (baton, chord, multiway):
            net.bulk_load(keys)
        probes = uniform_keys(50, seed=10) + keys[:50]
        for probe in probes:
            expected = probe in set(keys)
            assert baton.search_exact(probe).found == expected
            assert chord.search_exact(probe).found == expected
            assert multiway.search_exact(probe).found == expected
        low, high = 3 * 10**8, 4 * 10**8
        expected_range = sorted(k for k in keys if low <= k < high)
        assert sorted(baton.search_range(low, high).keys) == expected_range
        assert sorted(multiway.search_range(low, high).keys) == expected_range
        assert sorted(chord.search_range(low, high).keys) == expected_range
