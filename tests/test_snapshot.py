"""Built-network snapshot cache: round-trip fidelity, keying, fallbacks.

The cache's contract (DESIGN.md, "Parallelism contract"): a restored
network is indistinguishable from a freshly built one — same invariants,
same event-for-event drive — and the key discriminates exactly the
inputs that shape the built state.  Corrupt or stale payloads fall back
to a clean build, never an error.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro import overlays
from repro.core.invariants import check_invariants, collect_violations
from repro.core.network import BatonConfig, LoadBalanceConfig, LocalityConfig
from repro.experiments import snapshot
from repro.experiments.harness import build_baton, loaded_keys
from repro.experiments.parallel import cell, run_cells
from repro.util.rng import derive_seed
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload


@pytest.fixture
def cache(tmp_path):
    """An enabled snapshot cache rooted in a temp dir; always disabled after."""
    snapshot.configure(enabled=True, root=tmp_path)
    try:
        yield tmp_path
    finally:
        snapshot.configure(enabled=False)


def _baton_parts(n_peers: int, seed: int, data_per_node: int) -> dict:
    """The exact cache key ``build_baton`` uses (mirrors harness.py)."""
    config = BatonConfig(
        balance=LoadBalanceConfig(
            capacity=max(4 * data_per_node, 16), enabled=False
        ),
        locality=LocalityConfig(),
    )
    return {
        "builder": "baton",
        "n_peers": n_peers,
        "seed": seed,
        "data_per_node": data_per_node,
        "config": snapshot.describe(config),
    }


def _drive_report(net, n_peers: int, seed: int, data_per_node: int):
    """A short deterministic churn+query drive; returns the event log."""
    anet = overlays.get("baton").wrap(net, record_events=True)
    keys = loaded_keys(n_peers, data_per_node, seed)
    config = ConcurrentConfig(
        duration=8.0, churn_rate=1.0, query_rate=8.0, range_fraction=0.2
    )
    run_concurrent_workload(
        anet, keys, config, seed=derive_seed(seed, "snapshot-test-driver")
    )
    return list(anet.event_log)


def test_round_trip_restores_equivalent_network(cache):
    """Restore == rebuild: invariants hold and the drive is event-for-event
    identical to a freshly built network's."""
    n, seed, dpn = 120, 3, 10
    snapshot.configure(enabled=False)
    fresh = build_baton(n, seed, dpn)
    snapshot.configure(enabled=True, root=cache)

    built = build_baton(n, seed, dpn)  # miss: builds and stores
    assert snapshot.stats.misses == 1 and snapshot.stats.stores == 1
    restored = build_baton(n, seed, dpn)  # hit: fresh copy from bytes
    assert snapshot.stats.hits == 1
    assert restored is not built  # never share mutable state

    check_invariants(restored)
    assert not collect_violations(restored)
    assert restored.size == fresh.size
    assert sorted(restored.addresses()) == sorted(fresh.addresses())

    assert _drive_report(restored, n, seed, dpn) == _drive_report(
        fresh, n, seed, dpn
    )


def test_key_discriminates_build_inputs(cache):
    """Config, seed and dataset changes miss; identical inputs hit."""
    base = dict(builder="baton", n_peers=50, seed=0, data_per_node=10,
                config=snapshot.describe(BatonConfig()))
    prints = {snapshot.fingerprint(base)}
    for variant in (
        {**base, "seed": 1},
        {**base, "n_peers": 51},
        {**base, "data_per_node": 11},
        {**base, "config": snapshot.describe(
            BatonConfig(balance=LoadBalanceConfig(capacity=7, enabled=True))
        )},
    ):
        prints.add(snapshot.fingerprint(variant))
    assert len(prints) == 5  # every variant keys differently
    assert snapshot.fingerprint(dict(base)) in prints  # and stably


def test_irrelevant_knobs_share_snapshots(cache):
    """Wrap-time/drive-only settings are not in the key: the same build
    feeds cells that differ only in how they drive it."""
    n, seed, dpn = 60, 0, 5
    build_baton(n, seed, dpn)
    assert snapshot.stats.misses == 1
    # A cell recording events (a wrap-time choice) reuses the snapshot.
    net = build_baton(n, seed, dpn)
    overlays.get("baton").wrap(net, record_events=True)
    assert snapshot.stats.hits == 1 and snapshot.stats.misses == 1


def test_corrupt_snapshot_falls_back_to_clean_build(cache):
    n, seed, dpn = 40, 5, 5
    parts = _baton_parts(n, seed, dpn)
    build_baton(n, seed, dpn)
    path = snapshot.snapshot_path(parts)
    assert path is not None and path.exists()
    path.write_bytes(b"\x00garbage\xff" * 7)
    snapshot.configure(enabled=True, root=cache)  # drop the memory tier
    net = build_baton(n, seed, dpn)  # corrupt -> counted, clean rebuild
    assert snapshot.stats.corrupt == 1
    assert snapshot.stats.misses == 1
    check_invariants(net)
    # The rebuild overwrote the bad file: next call is a healthy hit.
    build_baton(n, seed, dpn)
    assert snapshot.stats.hits == 1


def test_stale_schema_falls_back_to_clean_build(cache):
    n, seed, dpn = 40, 6, 5
    parts = _baton_parts(n, seed, dpn)
    build_baton(n, seed, dpn)
    path = snapshot.snapshot_path(parts)
    payload = pickle.loads(path.read_bytes())
    payload["schema"] = snapshot.SNAPSHOT_SCHEMA - 1
    path.write_bytes(pickle.dumps(payload))
    snapshot.configure(enabled=True, root=cache)
    net = build_baton(n, seed, dpn)
    assert snapshot.stats.stale == 1
    assert snapshot.stats.misses == 1
    check_invariants(net)


def test_kill_switch_disables_cache(cache, monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOT_CACHE", "0")
    snapshot.configure(enabled=True, root=cache)
    assert not snapshot.enabled()
    build_baton(40, 0, 5)
    assert snapshot.stats.misses == 0 and snapshot.stats.stores == 0


def test_lock_wait_coalesces_onto_peer_build(cache, monkeypatch):
    """A miss that queues on the build lock re-checks the disk after the
    lock is granted: if a sibling stored the snapshot meanwhile, serve
    it (a ``coalesced`` hit) instead of duplicating the build."""
    parts = {"builder": "probe", "n": 1}
    real_lock = snapshot._lock

    def lock_and_backfill(key):
        handle = real_lock(key)
        # Simulate the sibling finishing while we waited for the lock.
        snapshot._store(key, snapshot.header(parts), "peer-built")
        return handle

    monkeypatch.setattr(snapshot, "_lock", lock_and_backfill)
    built = []
    value = snapshot.cached(parts, lambda: built.append(1) or "self-built")
    assert value == "peer-built"
    assert not built  # our builder never ran
    assert snapshot.stats.coalesced == 1 and snapshot.stats.hits == 1
    assert snapshot.stats.misses == 0


def _stampede_cell(log_path: str, n: int) -> list:
    def builder():
        with open(log_path, "a") as handle:
            handle.write("build\n")
        time.sleep(0.2)  # widen the race window the lock must close
        return list(range(n))

    return snapshot.cached({"builder": "stampede", "n": n}, builder)


def test_cold_pool_stampede_builds_once(cache):
    """Four workers fanning out the same cold cell produce exactly one
    build: the rest block on the per-key lock and restore."""
    log_path = str(cache / "builds.log")
    cells = [
        cell(_stampede_cell, log_path=log_path, n=50) for _ in range(4)
    ]
    outputs = run_cells(cells, jobs=4)
    assert outputs == [list(range(50))] * 4
    builds = (cache / "builds.log").read_text().splitlines()
    assert len(builds) == 1


def test_restore_beats_protocol_build_5x(cache):
    """The cache's reason to exist: restoring a protocol-grown network is
    at least 5x cheaper than growing it join by join.  N=2000 keeps the
    measured gap wide (~9x measured) while staying test-sized; the
    paper-scale N=10k ratio (~60x) runs under REPRO_SCALE_SMOKE below.
    """
    n, seed, dpn = 2000, 0, 5
    started = time.perf_counter()
    build_baton(n, seed, dpn)  # miss: the join-by-join build
    build_s = time.perf_counter() - started
    started = time.perf_counter()
    restored = build_baton(n, seed, dpn)  # hit
    restore_s = time.perf_counter() - started
    assert snapshot.stats.hits == 1
    assert restored.size == n
    assert build_s >= 5 * restore_s, (
        f"restore ({restore_s:.3f}s) is not 5x cheaper than the protocol "
        f"build ({build_s:.3f}s)"
    )


@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_SMOKE") != "1"
    and os.environ.get("REPRO_FULL_SCALE") != "1",
    reason="the N=10k build-vs-restore ratio runs in the CI benchmark job",
)
def test_restore_beats_protocol_build_5x_at_10k(cache):
    """The acceptance criterion at the paper's headline N."""
    n, seed, dpn = 10_000, 0, 5
    started = time.perf_counter()
    build_baton(n, seed, dpn)
    build_s = time.perf_counter() - started
    started = time.perf_counter()
    restored = build_baton(n, seed, dpn)
    restore_s = time.perf_counter() - started
    assert restored.size == n
    assert not collect_violations(restored)
    assert build_s >= 5 * restore_s, (
        f"restore ({restore_s:.3f}s) is not 5x cheaper than the N=10k "
        f"protocol build ({build_s:.3f}s)"
    )
