"""The dissemination contract: exactly-once multicast, durable subscriptions.

Pins the three promises of DESIGN.md's "Dissemination contract":

* every owner of the target range is delivered **exactly once**, in
  ``|owners| + O(log N)`` messages (the fan-out is one delegation per
  additional owner — optimal — and the route prefix is logarithmic);
* subscription tables are **owner state tied to the range**: join splits,
  leave handovers and balance shifts carry the overlapping entries with
  the keys, so notifications keep flowing across restructures;
* delivery is **idempotent**: dissemination ids plus the bounded per-peer
  window turn at-least-once channels (FaultPlan duplication, stale links
  during churn) into exactly-once application.

Plus the registry conformance half: only BATON advertises the
``multicast``/``subscribe`` capabilities, and the gates actually fire.
"""

from __future__ import annotations

import math

import pytest

from repro import overlays
from repro.core.network import BatonNetwork
from repro.core.ranges import Range
from repro.overlays.protocol import ALL_CAPABILITIES, MULTICAST, SUBSCRIBE
from repro.pubsub import (
    SEEN_WINDOW,
    Subscription,
    apply_delivery,
    install_subscription,
    multicast,
    range_owners,
    subscribe,
    transfer_subscriptions,
)
from repro.sim.faults import FaultPlan
from repro.sim.latency import ConstantLatency
from repro.sim.runtime import AsyncBatonNetwork
from repro.util.errors import CapabilityError
from repro.util.rng import SeededRng
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload
from repro.workloads.generators import uniform_keys


def built(n_peers=120, seed=3, keys=0):
    net = BatonNetwork.build(n_peers, seed=seed)
    if keys:
        net.bulk_load(uniform_keys(keys, seed=seed + 1))
    return net


def log_bound(n_peers: int) -> int:
    return 2 * math.ceil(math.log2(n_peers)) + 2


SPAN = (100_000_000, 220_000_000)


class TestMulticastDelivery:
    def test_every_owner_delivered_exactly_once(self):
        net = built(300, seed=5)
        low, high = SPAN
        owners = {p.address for p in range_owners(net, low, high)}
        result = multicast(net, low, high)
        assert result.complete
        assert len(result.delivered) == len(set(result.delivered))
        assert set(result.delivered) == owners

    def test_message_bound_owners_plus_log(self):
        """Fan-out is optimal (one delegation per extra owner); only the
        route prefix is logarithmic."""
        for n_peers, seed in ((120, 3), (300, 5), (800, 1)):
            net = built(n_peers, seed=seed)
            low, high = SPAN
            owners = range_owners(net, low, high)
            result = multicast(net, low, high)
            assert result.fanout_messages == len(owners) - 1
            assert result.route_hops <= log_bound(n_peers)
            assert result.messages <= len(owners) + log_bound(n_peers)
            assert result.depth <= log_bound(n_peers)

    def test_baselines_reach_the_same_owners(self):
        from repro.pubsub import flood_steps, unicast_steps
        from repro.util.stepper import drive

        net = built(200, seed=7)
        low, high = SPAN
        owners = {p.address for p in range_owners(net, low, high)}
        start = net.random_peer_address()
        uni = drive(unicast_steps(net, start, low, high))
        flood = drive(flood_steps(net, start, low, high))
        tree = multicast(net, low, high, via=start)
        assert set(uni.delivered) == owners
        assert set(flood.delivered) == owners
        # The showdown's ordering at its smallest: tree under unicast
        # under flood on total messages.
        assert tree.messages < uni.messages < flood.messages

    def test_empty_range_rejected(self):
        net = built(30, seed=1)
        with pytest.raises(ValueError):
            multicast(net, 10, 10)

    def test_sync_async_equivalence(self):
        """The serialized async path delivers the same set for the same
        cost — it lifts the very same step generator."""
        low, high = SPAN
        sync_net = built(150, seed=9)
        start = min(sync_net.addresses())
        expected = multicast(sync_net, low, high, via=start)

        anet = AsyncBatonNetwork(
            built(150, seed=9), latency=ConstantLatency(1.0)
        )
        future = anet.submit_multicast(low, high, via=start)
        anet.drain()
        assert set(future.result.delivered) == set(expected.delivered)
        assert future.result.messages == expected.messages
        assert future.result.depth == expected.depth


class TestIdempotentDelivery:
    def test_duplicate_arrival_suppressed(self):
        net = built(30, seed=2)
        peer = net.peer(net.random_peer_address())
        message_id = net.pubsub.new_message_id()
        assert apply_delivery(net.pubsub, peer, message_id) is True
        assert apply_delivery(net.pubsub, peer, message_id) is False
        assert net.pubsub.applications == 1
        assert net.pubsub.duplicates_suppressed == 1

    def test_window_eviction_forgets_oldest(self):
        net = built(30, seed=2)
        peer = net.peer(net.random_peer_address())
        first = net.pubsub.new_message_id()
        apply_delivery(net.pubsub, peer, first)
        for _ in range(SEEN_WINDOW):
            apply_delivery(net.pubsub, peer, net.pubsub.new_message_id())
        assert len(peer.seen_messages) == SEEN_WINDOW
        # ``first`` has been evicted: a late replay applies again — the
        # window bounds memory, it does not promise unbounded dedup.
        assert apply_delivery(net.pubsub, peer, first) is True

    def test_wire_duplicates_never_reapply(self):
        """A duplicating FaultPlan inflates traffic, not applications."""
        plan = FaultPlan(
            ConstantLatency(1.0), seed=11, duplicate_rate=0.3
        )
        anet = overlays.get("baton").build_async(
            80, seed=4, topology=plan, record_events=False, retain_ops=False
        )
        low, high = SPAN
        delivered = 0
        for _ in range(5):
            future = anet.submit_multicast(low, high)
            anet.drain()
            delivered += len(future.result.delivered)
        assert anet.fault_stats.duplicates > 0
        assert anet.net.pubsub.applications == delivered
        assert anet.net.pubsub.duplicates_suppressed == 0


class TestSubscriptions:
    def test_installed_at_every_owner(self):
        net = built(200, seed=6)
        low, high = SPAN
        subscriber = net.random_peer_address()
        result = subscribe(net, subscriber, low, high)
        assert result.complete
        owners = {p.address for p in range_owners(net, low, high)}
        assert set(result.owners) == owners
        for peer in range_owners(net, low, high):
            assert result.sub_id in peer.subscriptions

    def test_insert_notifies_subscriber(self):
        net = built(100, seed=8)
        low, high = SPAN
        subscriber = net.random_peer_address()
        subscribe(net, subscriber, low, high)
        before = net.pubsub.notifications
        net.insert((low + high) // 2)
        assert net.pubsub.notifications == before + 1

    def test_notifications_survive_owner_leave(self):
        """The regression the handover hook exists for: the owning peer
        departs, its absorber inherits the entry, notifications continue."""
        net = built(100, seed=8)
        low, high = SPAN
        key = (low + high) // 2
        subscriber = net.random_peer_address()
        subscribe(net, subscriber, low, high)
        owner = net.search_exact(key).owner
        if owner == subscriber:  # keep the subscriber alive
            subscriber = net.search_exact(low).owner
            subscribe(net, subscriber, low, high)
        net.leave(owner)
        before = net.pubsub.notifications
        net.insert(key)
        assert net.pubsub.notifications > before

    def test_entries_follow_every_restructure(self):
        """Churn the overlay hard; every owner of the subscribed range
        must still hold the entry (the range-state invariant)."""
        net = built(120, seed=10)
        low, high = SPAN
        subscriber = net.random_peer_address()
        result = subscribe(net, subscriber, low, high)
        rng = SeededRng(77)
        for round_ in range(60):
            if rng.random() < 0.5 and net.size > 40:
                victim = rng.choice(net.addresses())
                if victim != subscriber:
                    net.leave(victim)
            else:
                net.join()
            for peer in range_owners(net, low, high):
                assert result.sub_id in (peer.subscriptions or {}), (
                    f"round {round_}: owner {peer.address} lost the "
                    f"subscription entry"
                )

    def test_transfer_copies_overlaps_and_prunes_strays(self):
        # Exercise the hook directly on two live peers with hand-set
        # ranges (the callers only invoke it after updating the ranges).
        net = built(30, seed=1)
        peers = [net.peer(addr) for addr in sorted(net.addresses())[:2]]
        src, dst = peers
        src.range = Range(0, 100)
        dst.range = Range(100, 200)
        both = Subscription(9001, src.address, Range(50, 150))
        gone = Subscription(9002, src.address, Range(120, 180))
        install_subscription(src, both)
        install_subscription(src, gone)
        moved = transfer_subscriptions(net, src, dst)
        assert moved == 2
        assert set(dst.subscriptions) == {9001, 9002}
        # ``both`` still overlaps the source range and stays; ``gone``
        # does not and is pruned.
        assert set(src.subscriptions) == {9001}


class TestCapabilityGating:
    def test_capability_names_registered(self):
        assert MULTICAST in ALL_CAPABILITIES
        assert SUBSCRIBE in ALL_CAPABILITIES
        caps = overlays.get("baton").capabilities
        assert {MULTICAST, SUBSCRIBE} <= set(caps)

    @pytest.mark.parametrize("name", ["chord", "multiway"])
    def test_other_overlays_refuse(self, name):
        entry = overlays.get(name)
        assert MULTICAST not in entry.capabilities
        assert SUBSCRIBE not in entry.capabilities
        anet = entry.build_async(40, seed=2)
        with pytest.raises(CapabilityError):
            anet.submit_multicast(*SPAN)
        with pytest.raises(CapabilityError):
            anet.submit_subscribe(*SPAN)

    @pytest.mark.parametrize(
        "kwargs",
        [{"publish_rate": -0.1}, {"subscribe_rate": -1.0}, {"pubsub_span": 0}],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            ConcurrentConfig(**kwargs)

    def test_driver_precheck_refuses_chord_publishes(self):
        anet = overlays.get("chord").build_async(40, seed=2)
        config = ConcurrentConfig(duration=5.0, publish_rate=1.0)
        with pytest.raises(CapabilityError):
            run_concurrent_workload(anet, [], config, seed=1)


class TestLossyPubSub:
    def test_zero_double_applications_under_drop_and_duplicate(self):
        """The acceptance cell in miniature: 5% drop + 5% duplicate, full
        pub/sub traffic — retries and wire copies show up as traffic,
        never as a second application."""
        plan = FaultPlan(
            ConstantLatency(1.0),
            seed=21,
            drop_rate=0.05,
            duplicate_rate=0.05,
        )
        anet = overlays.get("baton").build_async(
            60, seed=3, topology=plan, record_events=False, retain_ops=False
        )
        keys = uniform_keys(600, seed=4)
        anet.net.bulk_load(keys)
        config = ConcurrentConfig(
            duration=20.0,
            churn_rate=0.2,
            query_rate=2.0,
            insert_rate=2.0,
            publish_rate=1.0,
            subscribe_rate=0.5,
        )
        report = run_concurrent_workload(anet, keys, config, seed=13)
        assert report.unresolved_ops == 0
        assert report.multicasts_delivered > 0
        assert report.subscriptions_installed > 0
        assert report.duplicates > 0, "the plan must actually duplicate"
        state = anet.net.pubsub
        # Every arrival beyond the first per (peer, id) landed in the
        # suppression counter, never in a second application: the report
        # surfaces exactly what the window suppressed.
        assert report.pubsub_duplicates_suppressed == (
            state.duplicates_suppressed
        )
        assert report.message_amplification > 1.0
