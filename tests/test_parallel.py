"""The parallel cell scheduler: identity, ordering, serial cells, errors.

The core pin: every experiment's output is **byte-identical** at every
``--jobs`` value (DESIGN.md, "Parallelism contract").  Results are
reassembled by submission index, so completion order — the only thing
the pool changes — never leaks into a table.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import hetero_links, runall
from repro.experiments.harness import ExperimentResult, ExperimentScale
from repro.experiments.parallel import (
    cell,
    default_jobs,
    run_cells,
    run_grouped,
)

SMALL = ExperimentScale(
    sizes=(50, 90), seeds=(0, 1), data_per_node=5, n_queries=30, n_trials=5
)


def square(x: int) -> int:
    return x * x


def own_pid() -> int:
    return os.getpid()


def boom() -> None:
    raise RuntimeError("broken grid point")


def test_run_cells_preserves_submission_order():
    cells = [cell(square, x=x) for x in range(20)]
    assert run_cells(cells, jobs=1) == [x * x for x in range(20)]
    assert run_cells(cells, jobs=4) == [x * x for x in range(20)]


def test_pooled_cells_run_in_workers_serial_cells_in_parent():
    parent = os.getpid()
    cells = [
        cell(own_pid),
        cell(own_pid),
        cell(own_pid, serial=True),
        cell(own_pid),
    ]
    pids = run_cells(cells, jobs=2)
    assert pids[2] == parent  # serial: the parent, after the pool drains
    assert all(pid != parent for i, pid in enumerate(pids) if i != 2)


def test_jobs_one_runs_everything_inline():
    parent = os.getpid()
    assert run_cells([cell(own_pid), cell(own_pid)], jobs=1) == [
        parent,
        parent,
    ]


def test_cell_exception_propagates():
    with pytest.raises(RuntimeError, match="broken grid point"):
        run_cells([cell(boom), cell(square, x=2)], jobs=2)
    with pytest.raises(RuntimeError, match="broken grid point"):
        run_cells([cell(boom)], jobs=1)


def test_run_grouped_slices_by_group_in_order():
    cells = [
        cell(square, group="a", x=1),
        cell(square, group="b", x=2),
        cell(square, group="a", x=3),
        cell(square, group="b", x=4),
    ]
    grouped = run_grouped(cells, jobs=2)
    assert grouped == {"a": [1, 9], "b": [4, 16]}


def test_default_jobs_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert default_jobs() == 6
    monkeypatch.setenv("REPRO_JOBS", "junk")
    assert default_jobs() == 1


def test_canonical_text_masks_volatile_columns():
    result = ExperimentResult(
        figure="F",
        title="t",
        columns=["n", "wall_s"],
        volatile=["wall_s"],
    )
    result.add_row(n=10, wall_s=0.123)
    other = ExperimentResult(
        figure="F",
        title="t",
        columns=["n", "wall_s"],
        volatile=["wall_s"],
    )
    other.add_row(n=10, wall_s=9.876)
    assert result.canonical_text() == other.canonical_text()
    assert result.fingerprint() == other.fingerprint()
    assert "0.123" not in result.canonical_text()
    # A behavioural column still distinguishes.
    third = ExperimentResult(
        figure="F", title="t", columns=["n", "wall_s"], volatile=["wall_s"]
    )
    third.add_row(n=11, wall_s=0.123)
    assert third.fingerprint() != result.fingerprint()


def test_grid_experiment_parallel_equals_sequential():
    """One real driver, pooled vs inline: identical canonical output."""
    sequential = hetero_links.run(SMALL, inter_delays=(1.0, 10.0), jobs=1)
    pooled = hetero_links.run(SMALL, inter_delays=(1.0, 10.0), jobs=3)
    assert pooled.canonical_text() == sequential.canonical_text()
    assert pooled.fingerprint() == sequential.fingerprint()


def test_runall_quick_parallel_equals_sequential():
    """The acceptance pin: the whole quick suite, --jobs 2 vs sequential,
    byte-identical canonical report."""
    sequential = runall.run_all(quick=True, jobs=1)
    pooled = runall.run_all(quick=True, jobs=2)
    assert runall.canonical_report(pooled) == runall.canonical_report(
        sequential
    )
