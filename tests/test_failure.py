"""Protocol tests: node failure and repair (§III-C, §III-D)."""

import pytest

from repro.core import BatonNetwork, check_invariants
from repro.core import collect_violations
from repro.util.errors import PeerNotFoundError

from tests.conftest import make_network


class TestFailure:
    def test_failed_peer_unreachable(self, net20):
        victim = net20.random_peer_address()
        net20.fail(victim)
        with pytest.raises(PeerNotFoundError):
            net20.peer(victim)
        assert victim in net20.ghosts

    def test_fail_unknown_address_raises(self, net20):
        with pytest.raises(PeerNotFoundError):
            net20.fail(99999)

    def test_stats_track_failures(self, net20):
        before = net20.stats.failures
        net20.fail(net20.random_peer_address())
        assert net20.stats.failures == before + 1


class TestRoutingAroundFailures:
    def test_searches_survive_single_failure(self, net100, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(200)]
        net100.bulk_load(keys)
        victim = net100.random_peer_address()
        lost = set(net100.peer(victim).store)
        net100.fail(victim)
        for key in rng.sample(keys, 50):
            result = net100.search_exact(key)
            if key not in lost:
                assert result.found, key

    def test_degraded_queries_cost_more(self, net100, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(300)]
        net100.bulk_load(keys)
        sample = rng.sample(keys, 80)
        healthy = sum(net100.search_exact(k).trace.total for k in sample)
        for _ in range(8):
            net100.fail(net100.random_peer_address())
        degraded = sum(net100.search_exact(k).trace.total for k in sample)
        assert degraded >= healthy

    def test_range_queries_partial_during_outage(self, net100, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(200)]
        net100.bulk_load(keys)
        net100.fail(net100.random_peer_address())
        result = net100.search_range(1, 10**9)  # must not raise
        assert result.keys  # partial answers still flow


class TestRepair:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_repair_leaf_failure(self, seed):
        net = make_network(50, seed=seed)
        leaf = next(a for a, p in net.peers.items() if p.is_leaf)
        net.fail(leaf)
        result = net.repair(leaf)
        assert result.trace.total > 0
        check_invariants(net)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_repair_internal_failure(self, seed):
        net = make_network(50, seed=seed)
        internal = next(
            a for a, p in net.peers.items() if not p.is_leaf and p.parent is not None
        )
        net.fail(internal)
        result = net.repair(internal)
        assert result.replacement is not None
        check_invariants(net)

    def test_repair_root_failure(self):
        net = make_network(50, seed=5)
        root = next(a for a, p in net.peers.items() if p.parent is None)
        net.fail(root)
        result = net.repair(root)
        assert result.replacement is not None
        check_invariants(net)

    def test_repair_restores_range_partition_without_data(self, net100, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(300)]
        net100.bulk_load(keys)
        victim = net100.random_peer_address()
        lost = sorted(net100.peer(victim).store)
        net100.fail(victim)
        net100.repair(victim)
        check_invariants(net100)
        remaining = sorted(k for p in net100.peers.values() for k in p.store)
        expected = sorted(keys)
        for key in lost:
            expected.remove(key)
        assert remaining == expected  # §III-C: range restored, data lost

    def test_repair_singleton(self):
        net = BatonNetwork(seed=0)
        root = net.bootstrap()
        net.fail(root)
        result = net.repair(root)
        assert result.replacement is None
        assert net.size == 0

    def test_repair_unknown_failure_raises(self, net20):
        with pytest.raises(PeerNotFoundError):
            net20.repair(4242)

    def test_repair_all_handles_concurrent_failures(self):
        net = make_network(120, seed=6)
        import random

        mix = random.Random(9)
        for _ in range(12):
            net.fail(mix.choice(net.addresses()))
            net.join()
        net.repair_all()
        assert not net.ghosts
        check_invariants(net)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_fail_join_query_repair_cycles(self, seed):
        net = make_network(80, seed=seed)
        import random

        mix = random.Random(100 + seed)
        for _ in range(6):
            net.fail(mix.choice(net.addresses()))
            net.join()
            net.search_exact(mix.randint(1, 10**9 - 1))
        net.repair_all()
        assert collect_violations(net) == []
