"""Tests for the chaos subsystem: fault-injecting transport
(repro.sim.faults), the at-least-once runtime path, the liveness monitor
(repro.sim.liveness), and the scenario harness (repro.workloads.chaos).
"""

import pytest

from repro.core.invariants import collect_violations_sampled
from repro.core.network import BatonNetwork
from repro.experiments import chaos as chaos_experiment
from repro.experiments.harness import quick_scale
from repro.sim.faults import (
    DEFAULT_LOSS_RATE,
    FaultPlan,
    OutageWindow,
    PartitionWindow,
    RetryPolicy,
)
from repro.sim.latency import ConstantLatency, ExponentialLatency
from repro.sim.liveness import LivenessMonitor
from repro.sim.runtime import AsyncBatonNetwork
from repro.sim.topology import ClusteredTopology
from repro.util.errors import DeliveryError
from repro.util.rng import SeededRng
from repro.workloads.chaos import (
    SCENARIO_NAMES,
    FlashCrowd,
    LossyLinks,
    PartitionHeal,
    build_scenario,
)
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload
from repro.workloads.generators import uniform_keys


def judged(plan, pairs, now=0.0):
    """The (delivered, duplicate) verdict sequence for a pair stream."""
    return [
        (d, dup) for d, _delay, dup in (
            plan.judge(src, dst, now) for src, dst in pairs
        )
    ]


WIRE_PAIRS = [(src, src + 1) for src in range(1, 201)]


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(ConstantLatency(1.0), drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(ConstantLatency(1.0), duplicate_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultPlan(
                ConstantLatency(1.0),
                drop_rate=0.5,
                duplicate_rate=0.4,
                delay_spike_rate=0.2,
            )

    def test_spike_factor_floor(self):
        with pytest.raises(ValueError):
            FaultPlan(ConstantLatency(1.0), delay_spike_factor=0.5)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(budget=-1)

    def test_retry_backoff_grows(self):
        policy = RetryPolicy(timeout=2.0, backoff=3.0, budget=4)
        assert policy.wait(1) == 2.0
        assert policy.wait(2) == 6.0
        assert policy.wait(3) == 18.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            PartitionWindow(10.0, 5.0)
        with pytest.raises(ValueError):
            PartitionWindow(0.0, 5.0, fraction=0.0)
        with pytest.raises(ValueError):
            OutageWindow(0.0, 5.0)  # neither region nor addresses


class TestSeededDeterminism:
    def test_same_seed_same_drop_schedule(self):
        make = lambda s: FaultPlan(  # noqa: E731
            ConstantLatency(1.0), seed=s, drop_rate=0.3, duplicate_rate=0.1
        )
        one, two = make(11), make(11)
        assert judged(one, WIRE_PAIRS) == judged(two, WIRE_PAIRS)
        assert one.stats == two.stats
        assert one.stats.drops > 0 and one.stats.duplicates > 0

    def test_different_seed_different_schedule(self):
        one = FaultPlan(ConstantLatency(1.0), seed=11, drop_rate=0.3)
        two = FaultPlan(ConstantLatency(1.0), seed=12, drop_rate=0.3)
        assert judged(one, WIRE_PAIRS) != judged(two, WIRE_PAIRS)

    def test_same_seed_same_partition_sides(self):
        cut = PartitionWindow(0.0, 10.0)
        make = lambda s: FaultPlan(  # noqa: E731
            ConstantLatency(1.0), seed=s, partitions=(cut,)
        )
        one, two = make(5), make(5)
        inside = judged(one, WIRE_PAIRS, now=5.0)
        assert inside == judged(two, WIRE_PAIRS, now=5.0)
        assert one.stats.refusals == two.stats.refusals > 0

    def test_inert_plan_consumes_no_randomness(self):
        plan = FaultPlan(ConstantLatency(1.0), seed=3)
        before = plan._draw()  # the stream's first value
        fresh = FaultPlan(ConstantLatency(1.0), seed=3)
        judged(fresh, WIRE_PAIRS)
        assert fresh._draw() == before  # judging drew nothing


class TestWindows:
    def test_partition_refuses_only_cross_cut_and_only_in_window(self):
        cut = PartitionWindow(10.0, 20.0)
        plan = FaultPlan(ConstantLatency(1.0), seed=0, partitions=(cut,))
        in_window = judged(plan, WIRE_PAIRS, now=15.0)
        refused = [pair for pair, (ok, _) in zip(WIRE_PAIRS, in_window) if not ok]
        passed = [pair for pair, (ok, _) in zip(WIRE_PAIRS, in_window) if ok]
        assert refused and passed  # a half split cuts some pairs, not all
        # The same pairs all pass outside the window.
        assert all(ok for ok, _ in judged(plan, WIRE_PAIRS, now=25.0))
        assert all(ok for ok, _ in judged(plan, WIRE_PAIRS, now=5.0))
        # Same-side pairs never see the cut: refusal means different sides.
        for src, dst in refused:
            assert plan.judge(src, src, 15.0)[0]  # local beat, never refused

    def test_region_partition_uses_the_inner_region_map(self):
        inner = ClusteredTopology(seed=4, regions=4)
        cut = PartitionWindow(0.0, 10.0, regions=frozenset({0}))
        plan = FaultPlan(inner, seed=0, partitions=(cut,))
        addresses = list(range(1, 41))
        side_a = [a for a in addresses if inner.region_of(a) == 0]
        side_b = [a for a in addresses if inner.region_of(a) != 0]
        assert side_a and side_b
        assert not plan.judge(side_a[0], side_b[0], 5.0)[0]
        assert plan.judge(side_b[0], side_b[1], 5.0)[0]
        assert plan.judge(side_a[0], side_b[0], 15.0)[0]  # healed

    def test_outage_refuses_hops_touching_the_down_region(self):
        inner = ClusteredTopology(seed=4, regions=4)
        out = OutageWindow(0.0, 10.0, region=1)
        plan = FaultPlan(inner, seed=0, outages=(out,))
        addresses = list(range(1, 41))
        down = [a for a in addresses if inner.region_of(a) == 1]
        up = [a for a in addresses if inner.region_of(a) != 1]
        assert not plan.judge(down[0], up[0], 5.0)[0]
        assert not plan.judge(up[0], down[0], 5.0)[0]
        assert plan.judge(up[0], up[1], 5.0)[0]
        assert plan.judge(down[0], up[0], 12.0)[0]  # power back on

    def test_ingress_hops_are_never_faulted(self):
        plan = FaultPlan(
            ConstantLatency(1.0),
            seed=0,
            drop_rate=0.9,
            partitions=(PartitionWindow(0.0, 100.0),),
        )
        for _ in range(50):
            delivered, _delay, duplicate = plan.judge(None, 7, 5.0)
            assert delivered and not duplicate


def build_anet(n_peers=60, seed=1, topology=None, **kwargs):
    return AsyncBatonNetwork(
        BatonNetwork.build(n_peers, seed=seed),
        topology=topology,
        **kwargs,
    )


def exponential(seed=9):
    return ExponentialLatency(1.0, SeededRng(seed).child("latency"))


class TestRuntimeChaosPath:
    def test_inert_plan_is_event_for_event_identical(self):
        """The zero-overhead contract: wrapping changes nothing by itself."""
        reports = []
        logs = []
        for wrap in (False, True):
            transport = exponential()
            if wrap:
                transport = FaultPlan(transport, seed=123)
            anet = build_anet(topology=transport)
            keys = uniform_keys(600, seed=2)
            anet.net.bulk_load(keys)
            config = ConcurrentConfig(
                duration=30.0, churn_rate=1.0, query_rate=6.0
            )
            reports.append(run_concurrent_workload(anet, keys, config, seed=7))
            logs.append(anet.event_log)
        assert logs[0] == logs[1]
        assert reports[0] == reports[1]
        assert reports[1].retries == 0 and reports[1].timeouts == 0

    def test_budget_exhaustion_fails_the_future_without_hanging(self):
        """A black-holed channel: every op resolves FAILED, none hang."""
        plan = FaultPlan(
            exponential(),
            seed=0,
            drop_rate=1.0,
            retry=RetryPolicy(timeout=2.0, backoff=2.0, budget=3),
        )
        anet = build_anet(n_peers=30, topology=plan)
        keys = uniform_keys(200, seed=3)
        anet.net.bulk_load(keys)
        futures = [anet.submit_search_exact(keys[i]) for i in range(10)]
        anet.drain()
        assert anet.in_flight == 0
        for future in futures:
            assert future.done and not future.succeeded
            assert isinstance(future.error, DeliveryError)
            assert future.error.attempts == 4  # 1 send + 3 retransmissions
        assert anet.fault_stats.gave_up == len(futures)
        assert anet.fault_stats.retries == 3 * len(futures)

    def test_retries_recover_from_moderate_loss(self):
        plan = FaultPlan(exponential(), seed=0, drop_rate=0.2)
        anet = build_anet(n_peers=30, topology=plan)
        keys = uniform_keys(200, seed=3)
        anet.net.bulk_load(keys)
        futures = [anet.submit_search_exact(keys[i]) for i in range(40)]
        anet.drain()
        assert anet.in_flight == 0
        assert all(f.succeeded for f in futures)
        assert anet.fault_stats.retries > 0
        # Retransmitted ops paid their timeouts in transit time.
        retried = [f for f in futures if f.retries]
        assert retried

    def test_fault_stats_empty_without_a_plan(self):
        anet = build_anet(n_peers=20, topology=exponential())
        assert anet.faults is None
        assert anet.fault_stats.as_dict() == {
            key: 0 for key in anet.fault_stats.as_dict()
        }


class TestLivenessMonitor:
    def test_monitor_detects_a_silent_crash(self):
        anet = build_anet(n_peers=30, topology=exponential())
        victim = sorted(anet.net.addresses())[5]
        crash = anet.submit_fail(victim)
        anet.drain()
        assert crash.succeeded
        assert victim in anet.pending_repairs()

        repaired = []
        monitor = LivenessMonitor(
            anet,
            interval=2.0,
            suspicion_threshold=2,
            horizon=40.0,
            on_repair=repaired.append,
        )
        monitor.start()
        anet.sim.run_until(anet.sim.now + 40.0)
        anet.drain()
        assert monitor.heartbeats > 0
        assert monitor.failed_heartbeats > 0
        assert monitor.suspicions >= 1
        assert monitor.repairs_submitted >= 1
        assert repaired and repaired[0].succeeded
        assert victim not in anet.pending_repairs()

    def test_monitor_quiet_on_a_healthy_network(self):
        anet = build_anet(n_peers=30, topology=exponential())
        monitor = LivenessMonitor(anet, interval=2.0, horizon=20.0)
        monitor.start()
        anet.sim.run_until(anet.sim.now + 30.0)
        anet.drain()
        assert monitor.heartbeats > 0
        assert monitor.failed_heartbeats == 0
        assert monitor.suspicions == 0
        assert monitor.repairs_submitted == 0

    def test_monitor_start_is_idempotent(self):
        anet = build_anet(n_peers=20, topology=exponential())
        monitor = LivenessMonitor(anet, interval=2.0, horizon=10.0)
        monitor.start()
        monitor.start()
        anet.sim.run_until(anet.sim.now + 4.0)
        rounds_so_far = monitor.heartbeats
        anet.sim.run_until(anet.sim.now + 2.0)
        # One round per interval, not two: the second start was a no-op.
        assert monitor.heartbeats <= rounds_so_far * 2


def run_scenario(scenario, n_peers=60, seed=1, duration=40.0, **config_kwargs):
    inner = ClusteredTopology(seed=seed, regions=4)
    plan = scenario.fault_plan(inner, seed)
    anet = build_anet(
        n_peers=n_peers,
        seed=seed,
        topology=plan or inner,
        record_events=False,
        retain_ops=False,
    )
    keys = uniform_keys(10 * n_peers, seed=2)
    anet.net.bulk_load(keys)
    defaults = dict(
        duration=duration, churn_rate=0.2, query_rate=4.0, min_peers=8
    )
    defaults.update(config_kwargs)
    config = ConcurrentConfig(**defaults)
    report = run_concurrent_workload(
        anet, keys, config, seed=seed, scenario=scenario
    )
    return anet, report


class TestScenarios:
    def test_lossy_links_meets_the_availability_floor(self):
        """The acceptance criterion: >90% availability at the default
        loss rate with retries on, and every future resolves."""
        scenario = LossyLinks(duration=40.0)
        assert scenario.drop_rate == DEFAULT_LOSS_RATE
        anet, report = run_scenario(scenario)
        assert report.unresolved_ops == 0
        assert report.availability_during is not None
        assert report.availability_during > 0.9
        assert report.retries > 0
        assert report.message_amplification > 1.0
        assert report.recover_time == 0.0

    def test_partition_heal_triggers_a_reconcile_storm(self):
        scenario = PartitionHeal(start=8.0, end=20.0)
        anet, report = run_scenario(scenario)
        assert report.unresolved_ops == 0
        assert report.partition_refusals > 0
        assert report.reconcile_sweeps >= 1  # the heal-time storm ran
        assert report.reconcile_messages > 0
        assert report.availability_during is not None

    def test_flash_crowd_leaves_invariants_clean(self):
        scenario = FlashCrowd(
            start=8.0, spike_len=6.0, joins=40, query_multiplier=20.0
        )
        anet, report = run_scenario(scenario, duration=30.0)
        assert report.unresolved_ops == 0
        assert report.joins_applied >= 20  # the burst actually landed
        assert report.window_queries > 100  # so did the spike
        assert collect_violations_sampled(anet.net, seed=5) == []

    def test_build_scenario_names_and_scaling(self):
        for name in SCENARIO_NAMES:
            scenario = build_scenario(name, duration=48.0, n_peers=100)
            assert scenario.name == name
            assert scenario.window[1] <= 48.0
        crowd = build_scenario("flash_crowd", duration=48.0, n_peers=100)
        assert crowd.joins == 100  # capped by the population
        with pytest.raises(ValueError):
            build_scenario("earthquake", duration=48.0)


class TestChaosExperiment:
    def test_quick_cell_reports_the_four_metrics(self):
        result = chaos_experiment.run(
            quick_scale(), scenarios=("lossy_links",), overlay_names=("baton",)
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["scenario"] == "lossy_links"
        assert row["avail_during"] > 0.9
        assert row["recover_t"] == 0.0
        assert row["amplification"] >= 1.0
        assert row["unresolved"] == 0

    def test_capability_filter_skips_with_a_note(self):
        result = chaos_experiment.run(
            quick_scale(),
            scenarios=("region_outage",),
            overlay_names=("chord",),
        )
        assert result.rows == []
        assert any("skipped on chord" in note for note in result.notes)
