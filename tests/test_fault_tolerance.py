"""Connectivity claims of §III-D.

"In a special case, even if all nodes at the same level fail, the tree is
not partitioned since adjacency links can be used to route across the gap."
These tests check exactly that: after failing whole link classes or whole
levels, the graph induced by the surviving peers' live links stays
connected.
"""

import random

import pytest

from repro.core import BatonNetwork

from tests.conftest import make_network


def live_link_graph(net: BatonNetwork) -> dict:
    """Adjacency sets over live peers' live links."""
    graph: dict = {address: set() for address in net.peers}
    for address, peer in net.peers.items():
        for _, info in peer.iter_links():
            if info.address in net.peers:
                graph[address].add(info.address)
                graph[info.address].add(address)
    return graph


def is_connected(graph: dict) -> bool:
    if not graph:
        return True
    start = next(iter(graph))
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbor in graph[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(graph)


class TestLevelWipeout:
    @pytest.mark.parametrize("level", [1, 2, 3, 4])
    def test_entire_level_failure_keeps_network_connected(self, level):
        net = make_network(120, seed=3)
        victims = [
            address
            for address, peer in net.peers.items()
            if peer.position.level == level
        ]
        assert victims, f"expected peers at level {level}"
        for address in victims:
            net.fail(address)
        assert is_connected(live_link_graph(net)), (
            f"level-{level} wipeout must not partition the overlay"
        )

    def test_root_failure_keeps_network_connected(self):
        net = make_network(60, seed=4)
        root = next(a for a, p in net.peers.items() if p.parent is None)
        net.fail(root)
        assert is_connected(live_link_graph(net))


class TestRandomFailures:
    @pytest.mark.parametrize("fraction", [0.05, 0.1, 0.15])
    def test_scattered_failures_do_not_partition(self, fraction):
        # The paper claims the network "remains connected even with a large
        # number of failures"; at simulation scale the redundancy holds
        # comfortably through 15% simultaneous loss.
        net = make_network(150, seed=5)
        mix = random.Random(6)
        victims = mix.sample(net.addresses(), int(net.size * fraction))
        for address in victims:
            net.fail(address)
        assert is_connected(live_link_graph(net))

    def test_queries_reach_live_owners_during_level_outage(self):
        net = make_network(100, seed=7)
        keys = [random.Random(8).randint(1, 10**9 - 1) for _ in range(200)]
        net.bulk_load(keys)
        level = 3
        lost_keys = set()
        for address, peer in list(net.peers.items()):
            if peer.position.level == level:
                lost_keys.update(peer.store)
                net.fail(address)
        answered = 0
        for key in keys[:60]:
            if key in lost_keys:
                continue
            if net.search_exact(key).found:
                answered += 1
        probed = sum(1 for key in keys[:60] if key not in lost_keys)
        # sideways + adjacent redundancy keeps nearly everything reachable
        assert answered >= probed * 0.9


class TestRepairAfterMassFailure:
    def test_level_wipeout_is_repairable(self):
        net = make_network(60, seed=9)
        victims = [
            address
            for address, peer in net.peers.items()
            if peer.position.level == 2
        ]
        for address in victims:
            net.fail(address)
        net.repair_all()
        from repro.core import collect_violations

        assert collect_violations(net) == []
