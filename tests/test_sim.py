"""Unit tests for the discrete-event engine (repro.sim)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, ExponentialLatency, UniformLatency
from repro.util.rng import SeededRng


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_during_run(self):
        sim = Simulator()
        order = []

        def chain():
            order.append("one")
            sim.schedule(1.0, lambda: order.append("two"))

        sim.schedule(1.0, chain)
        sim.run()
        assert order == ["one", "two"]
        assert sim.now == 2.0

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)  # in the past now

    def test_run_until_partial(self):
        sim = Simulator()
        order = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: order.append(t))
        executed = sim.run_until(2.0)
        assert executed == 2
        assert order == [1.0, 2.0]
        assert sim.pending_count == 1
        assert sim.now == 2.0

    def test_run_max_events(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending_count == 1

    def test_step_on_empty_queue(self):
        assert Simulator().step() is None

    def test_executed_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.executed_count == 1


class TestLatencyModels:
    """Scalar models are degenerate topologies: sample(src, dst) ignores
    the link (see tests/test_topology.py for the link-aware models)."""

    def test_constant(self):
        model = ConstantLatency(2.5)
        assert model.sample(1, 2) == 2.5
        assert model.sample(None, None) == 2.5  # link identity is ignored

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_within_bounds(self):
        model = UniformLatency(1.0, 2.0, SeededRng(3))
        for _ in range(100):
            assert 1.0 <= model.sample(1, 2) < 2.0

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0, SeededRng(3))

    def test_exponential_positive_with_roughly_right_mean(self):
        model = ExponentialLatency(2.0, SeededRng(5))
        samples = [model.sample(1, 2) for _ in range(2000)]
        assert all(s >= 0 for s in samples)
        assert 1.7 < sum(samples) / len(samples) < 2.3

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            ExponentialLatency(0.0, SeededRng(1))


class TestCancellation:
    def test_cancelled_event_never_runs(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1.0, lambda: ran.append("a"))
        sim.schedule(2.0, lambda: ran.append("b"))
        assert sim.cancel(event)
        sim.run()
        assert ran == ["b"]

    def test_cancel_is_idempotent_and_rejects_executed(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert sim.cancel(event)
        assert not sim.cancel(event)  # already cancelled
        done = sim.schedule(2.0, lambda: None)
        sim.run()
        assert not sim.cancel(done)  # already executed

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        sim.cancel(drop)
        assert sim.pending_count == 1
        sim.run()
        assert sim.pending_count == 0
        assert sim.cancelled_count == 1

    def test_run_until_skips_cancelled_head(self):
        sim = Simulator()
        order = []
        head = sim.schedule(1.0, lambda: order.append("head"))
        sim.schedule(1.5, lambda: order.append("mid"))
        sim.schedule(3.0, lambda: order.append("late"))
        sim.cancel(head)
        executed = sim.run_until(2.0)
        assert executed == 1
        assert order == ["mid"]
        assert sim.now == 2.0


class TestHeapCompaction:
    """Heap hygiene: when the lazily-cancelled set exceeds half the heap,
    the queue is compacted — memory reclaimed, zero behaviour change."""

    def test_compaction_reclaims_dead_events(self):
        sim = Simulator()
        events = [sim.schedule(float(t), lambda: None) for t in range(1, 41)]
        for event in events[:24]:  # 24 of 40 -> exceeds half the heap
            sim.cancel(event)
        assert len(sim._queue) < 40  # dead entries were dropped eagerly
        # whatever is still tombstoned is below the half-heap bound
        assert 2 * sim._dead <= len(sim._queue)
        assert sim.pending_count == 16
        assert sim.cancelled_count == 24

    def test_behavior_identical_with_and_without_compaction(self):
        def run(compact_min: int):
            sim = Simulator()
            order = []
            events = {}
            for t in range(1, 60):
                events[t] = sim.schedule(float(t), lambda t=t: order.append(t))
            sim._COMPACT_MIN_QUEUE = compact_min
            for t in range(1, 60):
                if t % 3:
                    sim.cancel(events[t])
            executed = sim.run()
            return order, executed, sim.now

        # A huge threshold disables compaction (pure lazy skipping).
        assert run(4) == run(10**9)

    def test_cancel_semantics_survive_compaction(self):
        sim = Simulator()
        events = [sim.schedule(float(t), lambda: None) for t in range(1, 30)]
        for event in events[:20]:
            assert sim.cancel(event)  # triggers compaction along the way
        for event in events[:20]:
            assert not sim.cancel(event)  # still reported as already gone
        assert sim.pending_count == 9
        sim.run()
        assert sim.executed_count == 9

    def test_small_queues_are_left_lazy(self):
        sim = Simulator()
        keep = sim.schedule(2.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        sim.cancel(drop)
        assert len(sim._queue) == 2  # below the compaction floor
        sim.run()
        assert sim.executed_count == 1
        assert keep.action is None  # executed handles are tombstoned too


class _ReferenceEvent:
    """The engine's original heap entry: a frozen, ordered dataclass.

    Kept here (not in the library) as the ordering oracle: the slotted
    :class:`~repro.sim.engine.Event` handles must pop in exactly the
    (time, seq) order this implementation produced.
    """

    def __init__(self, time, seq):
        self.time = time
        self.seq = seq

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class TestOrderEquivalence:
    """The refactored heap entries replay the old dataclass order exactly."""

    def _random_interleaving(self, seed: int):
        """One random schedule/cancel script; returns (script, n_events)."""
        import random

        rng = random.Random(seed)
        script = []
        n_events = 0
        for _ in range(rng.randint(20, 120)):
            if n_events and rng.random() < 0.35:
                script.append(("cancel", rng.randrange(n_events)))
            else:
                # Coarse times force (time, seq) ties; negative delays are
                # invalid so times are drawn absolute from a fixed clock.
                script.append(("schedule", float(rng.randint(0, 12))))
                n_events += 1
        return script

    def _reference_order(self, script):
        """Drive the old implementation: heap of (time, seq) dataclass-like
        entries plus the historical _cancelled side set, popped lazily."""
        import heapq as hq

        heap, cancelled, events, order = [], set(), [], []
        for op, arg in script:
            if op == "schedule":
                event = _ReferenceEvent(arg, len(events))
                events.append(event)
                hq.heappush(heap, event)
            else:
                event = events[arg]
                cancelled.add(event.seq)
        while heap:
            event = hq.heappop(heap)
            if event.seq not in cancelled:
                order.append((event.time, event.seq))
        return order

    def _engine_order(self, script):
        sim = Simulator()
        order = []
        events = []
        for op, arg in script:
            if op == "schedule":
                seq = len(events)
                time = arg

                def record(time=time, seq=seq):
                    order.append((time, seq))

                events.append(sim.schedule_at(arg, record))
            else:
                sim.cancel(events[arg])
        sim.run()
        return order

    def test_pop_order_matches_old_event_dataclass(self):
        for seed in range(40):
            script = self._random_interleaving(seed)
            assert self._engine_order(script) == self._reference_order(script), (
                f"divergence for script seed {seed}"
            )

    def test_cancel_interleaved_with_execution(self):
        # Cancels issued *during* the run follow the same lazy semantics:
        # each executing event cancels the one scheduled two slots later.
        sim = Simulator()
        executed = []
        handles = {}

        def fire(t):
            executed.append(t)
            later = handles.get(t + 2)
            if later is not None:
                sim.cancel(later)

        for t in range(1, 20):
            handles[t] = sim.schedule(float(t), lambda t=t: fire(t))
        sim.run()
        # 1 runs and kills 3; 2 runs and kills 4; 5 (first survivor after
        # the cascade restarts) runs and kills 7 ... i.e. survivors come in
        # leading pairs of each {4k+1, ...} block.
        assert executed == [t for t in range(1, 20) if t % 4 in (1, 2)]


class TestCancelHeavyScale:
    """Regression: pending_count and compaction stay consistent through a
    cancel-heavy 10k-event run, and the heap never balloons with tombstones."""

    def test_10k_event_churn_keeps_heap_compact(self):
        sim = Simulator()
        executed = []
        live = []
        n_events = 10_000
        for i in range(n_events):
            live.append(
                sim.schedule(float(i % 97) + i * 1e-4, lambda i=i: executed.append(i))
            )
            # Cancel in bursts, as churned operations do: every third event
            # retires the oldest outstanding handle.
            if i % 3 == 2:
                victim = live.pop(0)
                assert sim.cancel(victim)
                # The books always balance: heap length minus tombstones
                # equals the live pending count.
                assert sim.pending_count == len(sim._queue) - sim._dead
                assert sim.pending_count == len(live)
        cancelled = n_events - len(live)
        assert sim.cancelled_count == cancelled
        # Compaction bounds the heap: never more than the schedule highwater,
        # and tombstones never exceed half of it (plus the pre-threshold
        # residue on small queues).
        assert sim.peak_queue_len <= n_events
        assert 2 * sim._dead <= max(len(sim._queue), sim._COMPACT_MIN_QUEUE)
        total = sim.run()
        assert total == len(live)
        assert sim.executed_count == len(live)
        assert len(executed) == len(live)
        assert sim.pending_count == 0
        # The run popped everything: no tombstones survive the drain.
        assert not sim._queue and sim._dead == 0

    def test_peak_queue_len_tracks_highwater(self):
        sim = Simulator()
        for t in range(50):
            sim.schedule(float(t), lambda: None)
        assert sim.peak_queue_len == 50
        sim.run(max_events=30)
        sim.schedule(1.0, lambda: None)
        assert sim.peak_queue_len == 50  # highwater, not current length
