"""Unit tests for the discrete-event engine (repro.sim)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, ExponentialLatency, UniformLatency
from repro.util.rng import SeededRng


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_during_run(self):
        sim = Simulator()
        order = []

        def chain():
            order.append("one")
            sim.schedule(1.0, lambda: order.append("two"))

        sim.schedule(1.0, chain)
        sim.run()
        assert order == ["one", "two"]
        assert sim.now == 2.0

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)  # in the past now

    def test_run_until_partial(self):
        sim = Simulator()
        order = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: order.append(t))
        executed = sim.run_until(2.0)
        assert executed == 2
        assert order == [1.0, 2.0]
        assert sim.pending_count == 1
        assert sim.now == 2.0

    def test_run_max_events(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending_count == 1

    def test_step_on_empty_queue(self):
        assert Simulator().step() is None

    def test_executed_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.executed_count == 1


class TestLatencyModels:
    """Scalar models are degenerate topologies: sample(src, dst) ignores
    the link (see tests/test_topology.py for the link-aware models)."""

    def test_constant(self):
        model = ConstantLatency(2.5)
        assert model.sample(1, 2) == 2.5
        assert model.sample(None, None) == 2.5  # link identity is ignored

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_within_bounds(self):
        model = UniformLatency(1.0, 2.0, SeededRng(3))
        for _ in range(100):
            assert 1.0 <= model.sample(1, 2) < 2.0

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0, SeededRng(3))

    def test_exponential_positive_with_roughly_right_mean(self):
        model = ExponentialLatency(2.0, SeededRng(5))
        samples = [model.sample(1, 2) for _ in range(2000)]
        assert all(s >= 0 for s in samples)
        assert 1.7 < sum(samples) / len(samples) < 2.3

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            ExponentialLatency(0.0, SeededRng(1))


class TestCancellation:
    def test_cancelled_event_never_runs(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1.0, lambda: ran.append("a"))
        sim.schedule(2.0, lambda: ran.append("b"))
        assert sim.cancel(event)
        sim.run()
        assert ran == ["b"]

    def test_cancel_is_idempotent_and_rejects_executed(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert sim.cancel(event)
        assert not sim.cancel(event)  # already cancelled
        done = sim.schedule(2.0, lambda: None)
        sim.run()
        assert not sim.cancel(done)  # already executed

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        sim.cancel(drop)
        assert sim.pending_count == 1
        sim.run()
        assert sim.pending_count == 0
        assert sim.cancelled_count == 1

    def test_run_until_skips_cancelled_head(self):
        sim = Simulator()
        order = []
        head = sim.schedule(1.0, lambda: order.append("head"))
        sim.schedule(1.5, lambda: order.append("mid"))
        sim.schedule(3.0, lambda: order.append("late"))
        sim.cancel(head)
        executed = sim.run_until(2.0)
        assert executed == 1
        assert order == ["mid"]
        assert sim.now == 2.0


class TestHeapCompaction:
    """Heap hygiene: when the lazily-cancelled set exceeds half the heap,
    the queue is compacted — memory reclaimed, zero behaviour change."""

    def test_compaction_reclaims_dead_events(self):
        sim = Simulator()
        events = [sim.schedule(float(t), lambda: None) for t in range(1, 41)]
        for event in events[:24]:  # 24 of 40 -> exceeds half the heap
            sim.cancel(event)
        assert len(sim._queue) < 40  # dead entries were dropped eagerly
        # whatever is still marked cancelled is below the half-heap bound
        assert 2 * len(sim._cancelled) <= len(sim._queue)
        assert sim.pending_count == 16
        assert sim.cancelled_count == 24

    def test_behavior_identical_with_and_without_compaction(self):
        def run(compact_min: int):
            sim = Simulator()
            order = []
            events = {}
            for t in range(1, 60):
                events[t] = sim.schedule(float(t), lambda t=t: order.append(t))
            sim._COMPACT_MIN_QUEUE = compact_min
            for t in range(1, 60):
                if t % 3:
                    sim.cancel(events[t])
            executed = sim.run()
            return order, executed, sim.now

        # A huge threshold disables compaction (pure lazy skipping).
        assert run(4) == run(10**9)

    def test_cancel_semantics_survive_compaction(self):
        sim = Simulator()
        events = [sim.schedule(float(t), lambda: None) for t in range(1, 30)]
        for event in events[:20]:
            assert sim.cancel(event)  # triggers compaction along the way
        for event in events[:20]:
            assert not sim.cancel(event)  # still reported as already gone
        assert sim.pending_count == 9
        sim.run()
        assert sim.executed_count == 9

    def test_small_queues_are_left_lazy(self):
        sim = Simulator()
        keep = sim.schedule(2.0, lambda: None)
        drop = sim.schedule(1.0, lambda: None)
        sim.cancel(drop)
        assert len(sim._queue) == 2  # below the compaction floor
        sim.run()
        assert sim.executed_count == 1
        assert keep.seq not in sim._queued_seqs
