"""Protocol tests: range search (§IV-B)."""

import math

import pytest

from repro.core import BatonNetwork

from tests.conftest import make_network


class TestCompleteness:
    def test_returns_exactly_the_keys_in_range(self, net100, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(400)]
        net100.bulk_load(keys)
        for _ in range(30):
            low = rng.randint(1, 9 * 10**8)
            high = low + rng.randint(1, 10**8)
            result = net100.search_range(low, high)
            assert sorted(result.keys) == sorted(
                k for k in keys if low <= k < high
            )

    def test_full_domain_scan_returns_everything(self, net20, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(100)]
        net20.bulk_load(keys)
        result = net20.search_range(1, 10**9)
        assert sorted(result.keys) == sorted(keys)
        assert result.nodes_visited == net20.size

    def test_empty_answer(self, net20):
        result = net20.search_range(500, 600)
        assert result.keys == []
        assert result.nodes_visited >= 1

    def test_owners_are_contiguous_in_key_order(self, net100):
        result = net100.search_range(2 * 10**8, 4 * 10**8)
        ranges = [net100.peer(a).range for a in result.owners]
        for before, after in zip(ranges, ranges[1:]):
            assert before.high == after.low

    def test_rejects_empty_interval(self, net20):
        with pytest.raises(ValueError):
            net20.search_range(10, 10)
        with pytest.raises(ValueError):
            net20.search_range(20, 10)

    def test_singleton_network(self):
        net = BatonNetwork(seed=0)
        root = net.bootstrap()
        net.peer(root).store.insert(42)
        result = net.search_range(40, 50)
        assert result.keys == [42]


class TestCost:
    def test_cost_is_log_plus_answer_nodes(self, rng):
        # O(log N) to reach the first intersection, then 1 per covered node.
        for n_peers in (64, 256):
            net = make_network(n_peers, seed=5)
            for _ in range(20):
                low = rng.randint(1, 8 * 10**8)
                high = low + rng.randint(10**6, 10**8)
                result = net.search_range(low, high)
                bound = 1.44 * math.log2(n_peers) + 4 + result.nodes_visited
                assert result.trace.total <= bound

    def test_wide_range_dominated_by_answer_size(self):
        net = make_network(128, seed=6)
        result = net.search_range(1, 10**9)
        # one expansion hop per additional covered node
        assert result.trace.total <= math.ceil(1.44 * math.log2(128)) + net.size
        assert result.nodes_visited == net.size
