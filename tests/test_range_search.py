"""Protocol tests: range search (§IV-B)."""

import math

import pytest

from repro.core import BatonNetwork

from tests.conftest import make_network


class TestCompleteness:
    def test_returns_exactly_the_keys_in_range(self, net100, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(400)]
        net100.bulk_load(keys)
        for _ in range(30):
            low = rng.randint(1, 9 * 10**8)
            high = low + rng.randint(1, 10**8)
            result = net100.search_range(low, high)
            assert sorted(result.keys) == sorted(
                k for k in keys if low <= k < high
            )

    def test_full_domain_scan_returns_everything(self, net20, rng):
        keys = [rng.randint(1, 10**9 - 1) for _ in range(100)]
        net20.bulk_load(keys)
        result = net20.search_range(1, 10**9)
        assert sorted(result.keys) == sorted(keys)
        assert result.nodes_visited == net20.size

    def test_empty_answer(self, net20):
        result = net20.search_range(500, 600)
        assert result.keys == []
        assert result.nodes_visited >= 1

    def test_owners_are_contiguous_in_key_order(self, net100):
        result = net100.search_range(2 * 10**8, 4 * 10**8)
        ranges = [net100.peer(a).range for a in result.owners]
        for before, after in zip(ranges, ranges[1:]):
            assert before.high == after.low

    def test_rejects_empty_interval(self, net20):
        with pytest.raises(ValueError):
            net20.search_range(10, 10)
        with pytest.raises(ValueError):
            net20.search_range(20, 10)

    def test_singleton_network(self):
        net = BatonNetwork(seed=0)
        root = net.bootstrap()
        net.peer(root).store.insert(42)
        result = net.search_range(40, 50)
        assert result.keys == [42]


class TestCost:
    def test_cost_is_log_plus_answer_nodes(self, rng):
        # O(log N) to reach the first intersection, then 1 per covered node.
        for n_peers in (64, 256):
            net = make_network(n_peers, seed=5)
            for _ in range(20):
                low = rng.randint(1, 8 * 10**8)
                high = low + rng.randint(10**6, 10**8)
                result = net.search_range(low, high)
                bound = 1.44 * math.log2(n_peers) + 4 + result.nodes_visited
                assert result.trace.total <= bound

    def test_wide_range_dominated_by_answer_size(self):
        net = make_network(128, seed=6)
        result = net.search_range(1, 10**9)
        # one expansion hop per additional covered node
        assert result.trace.total <= math.ceil(1.44 * math.log2(128)) + net.size
        assert result.nodes_visited == net.size


class TestPartialResults:
    def test_dead_peer_in_chain_truncates_and_flags(self):
        net = make_network(64, seed=9)
        keys = list(range(10_000_000, 1_000_000_000, 3_000_000))
        net.bulk_load(keys)
        low, high = 10**8, 6 * 10**8
        healthy = net.search_range(low, high, via=net.addresses()[0])
        assert healthy.complete
        assert len(healthy.owners) >= 4

        victim = healthy.owners[2]  # mid-chain: the walk starts fine, then hits it
        net.fail(victim)
        partial = net.search_range(low, high, via=healthy.owners[0])
        assert not partial.complete
        assert len(partial.keys) < len(healthy.keys)
        assert victim not in partial.owners

    def test_repair_restores_complete_answers(self):
        net = make_network(64, seed=9)
        keys = list(range(10_000_000, 1_000_000_000, 3_000_000))
        net.bulk_load(keys)
        low, high = 10**8, 6 * 10**8
        healthy = net.search_range(low, high, via=net.addresses()[0])
        victim = healthy.owners[2]
        net.fail(victim)
        net.repair_all()
        repaired = net.search_range(low, high, via=healthy.owners[0])
        assert repaired.complete
        # the failed peer's own keys died with it; the chain is whole again
        survivors = set(healthy.keys) - set(repaired.keys)
        assert all(k in range(low, high) for k in survivors)

    def test_healthy_network_reports_complete(self, net100):
        net100.bulk_load(list(range(1, 10**9, 10**7)))
        result = net100.search_range(2 * 10**8, 5 * 10**8)
        assert result.complete

    def test_marooned_route_never_reports_complete(self):
        # Every owner of the query interval dies; routing gives up at a
        # surviving peer outside the interval.  The (empty) answer must be
        # flagged incomplete, not pass as a covered range.
        net = make_network(64, seed=9)
        keys = list(range(10_000_000, 1_000_000_000, 3_000_000))
        net.bulk_load(keys)
        low, high = 10**8, 2 * 10**8
        healthy = net.search_range(low, high, via=net.addresses()[0])
        assert healthy.complete and healthy.keys
        for owner in healthy.owners:
            net.fail(owner)
        survivor = next(a for a in net.addresses() if a not in healthy.owners)
        partial = net.search_range(low, high, via=survivor)
        assert not partial.complete
        assert partial.keys == []
