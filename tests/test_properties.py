"""Property-based tests (hypothesis) on the core invariants.

The heavyweight one is the model-based test: an arbitrary interleaving of
joins, leaves, inserts, deletes and searches must keep every structural
invariant *and* agree with a plain multiset oracle about the stored data.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BatonNetwork, check_invariants, collect_violations
from repro.core.ids import Position
from repro.core.storage import LocalStore

positions = st.integers(min_value=0, max_value=12).flatmap(
    lambda level: st.integers(min_value=1, max_value=2**level).map(
        lambda number: Position(level, number)
    )
)


class TestPositionProperties:
    @given(positions)
    def test_children_invert_parent(self, position):
        assert position.left_child().parent() == position
        assert position.right_child().parent() == position

    @given(positions)
    def test_inorder_sandwich(self, position):
        # left child < node < right child in in-order terms
        assert position.left_child().inorder_lt(position)
        assert position.inorder_lt(position.right_child())

    @given(positions, positions)
    def test_inorder_antisymmetry(self, a, b):
        if a == b:
            assert not a.inorder_lt(b) and not b.inorder_lt(a)
        else:
            assert a.inorder_lt(b) != b.inorder_lt(a)

    @given(positions, positions, positions)
    def test_inorder_transitivity(self, a, b, c):
        if a.inorder_lt(b) and b.inorder_lt(c):
            assert a.inorder_lt(c)

    @given(positions)
    def test_table_positions_are_symmetric(self, position):
        # if q is in p's right table, p is in q's left table (same index)
        for index, q in enumerate(position.right_table_positions()):
            back = list(q.left_table_positions())
            assert position in back
            assert back.index(position) == index


class TestStoreAgainstOracle:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "contains"]),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=200,
        )
    )
    def test_store_behaves_like_sorted_multiset(self, ops):
        store = LocalStore()
        oracle: Counter = Counter()
        for op, key in ops:
            if op == "insert":
                store.insert(key)
                oracle[key] += 1
            elif op == "delete":
                assert store.delete(key) == (oracle[key] > 0)
                if oracle[key] > 0:
                    oracle[key] -= 1
            else:
                assert (key in store) == (oracle[key] > 0)
        assert list(store) == sorted(oracle.elements())

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), max_size=100),
        st.integers(min_value=0, max_value=1000),
    )
    def test_split_below_partitions(self, keys, pivot):
        store = LocalStore(keys)
        moved = store.split_below(pivot)
        assert all(k < pivot for k in moved)
        assert all(k >= pivot for k in store)
        assert sorted(moved + list(store)) == sorted(keys)


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.integers(0, 10**6)),
        st.tuples(st.just("leave"), st.integers(0, 10**6)),
        st.tuples(st.just("insert"), st.integers(1, 10**9 - 1)),
        st.tuples(st.just("delete"), st.integers(1, 10**9 - 1)),
        st.tuples(st.just("search"), st.integers(1, 10**9 - 1)),
    ),
    min_size=5,
    max_size=60,
)


class TestModelBased:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 1000), ops=ops_strategy)
    def test_random_op_sequences_keep_invariants_and_data(self, seed, ops):
        net = BatonNetwork.build(8, seed=seed)
        oracle: Counter = Counter()
        inserted_keys: list[int] = []
        for op, value in ops:
            if op == "join":
                net.join()
            elif op == "leave" and net.size > 1:
                addresses = net.addresses()
                net.leave(addresses[value % len(addresses)])
            elif op == "insert":
                net.insert(value)
                oracle[value] += 1
                inserted_keys.append(value)
            elif op == "delete":
                key = (
                    inserted_keys[value % len(inserted_keys)]
                    if inserted_keys and value % 2
                    else value
                )
                applied = net.delete(key).applied
                assert applied == (oracle[key] > 0)
                if applied:
                    oracle[key] -= 1
            elif op == "search":
                key = (
                    inserted_keys[value % len(inserted_keys)]
                    if inserted_keys
                    else value
                )
                assert net.search_exact(key).found == (oracle[key] > 0)
        check_invariants(net)
        stored = Counter()
        for peer in net.peers.values():
            stored.update(peer.store)
        assert stored == +oracle  # +drops zero entries

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 100),
        n_initial=st.integers(2, 30),
        churn=st.lists(st.booleans(), min_size=5, max_size=40),
    )
    def test_churn_preserves_range_partition(self, seed, n_initial, churn):
        net = BatonNetwork.build(n_initial, seed=seed)
        for is_join in churn:
            if is_join or net.size <= 1:
                net.join()
            else:
                net.leave(net.random_peer_address())
        assert collect_violations(net) == []
        # in-order ranges tile the whole domain exactly
        ranges = sorted(
            (p.range.low, p.range.high) for p in net.peers.values()
        )
        assert ranges[0][0] == net.config.domain.low
        assert ranges[-1][1] == net.config.domain.high
        for (_, high), (low, _) in zip(ranges, ranges[1:]):
            assert high == low


class TestSearchProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 100),
        keys=st.lists(st.integers(1, 10**9 - 1), min_size=1, max_size=60),
        probe=st.integers(1, 10**9 - 1),
    )
    def test_search_agrees_with_membership(self, seed, keys, probe):
        net = BatonNetwork.build(12, seed=seed)
        net.bulk_load(keys)
        assert net.search_exact(probe).found == (probe in set(keys))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 100),
        keys=st.lists(st.integers(1, 10**9 - 1), min_size=1, max_size=60),
        bounds=st.tuples(st.integers(1, 10**9 - 2), st.integers(1, 10**9 - 1)),
    )
    def test_range_search_agrees_with_filter(self, seed, keys, bounds):
        low, high = min(bounds), max(bounds)
        if low == high:
            high += 1
        net = BatonNetwork.build(12, seed=seed)
        net.bulk_load(keys)
        result = net.search_range(low, high)
        assert sorted(result.keys) == sorted(k for k in keys if low <= k < high)
