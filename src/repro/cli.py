"""Command-line interface: quick demos and inspection.

Usage::

    python -m repro demo --peers 50 --keys 500
    python -m repro tree --peers 31
    python -m repro ranges --peers 20 --keys 400
    python -m repro experiments --quick
    python -m repro concurrent --peers 200 --churn-rate 1.0 --duration 60
    python -m repro concurrent --overlay chord --peers 200
    python -m repro concurrent --overlay all --peers 100 --duration 30
    python -m repro concurrent --overlay all --topology clustered
    python -m repro concurrent --replication --fail-fraction 0.5 --repair-delay 2
    python -m repro durability --quick
    python -m repro chaos --quick                  # all four scenarios
    python -m repro chaos --scenario lossy_links --overlay baton
    python -m repro multicast --quick              # dissemination showdown
    python -m repro profile                        # N=1000/10k/100k cells
    python -m repro profile --out BENCH_scale.json # dump the trajectory point
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import BatonNetwork, check_invariants, tree_height
from repro.core import viz
from repro.workloads.generators import uniform_keys

#: Defaults for the clustered-only flags; changing either with a different
#: --topology is rejected rather than silently ignored.
CLUSTERED_REGIONS_DEFAULT = 4
CLUSTERED_INTER_DELAY_DEFAULT = 5.0


def _build(args: argparse.Namespace) -> BatonNetwork:
    net = BatonNetwork.build(args.peers, seed=args.seed)
    if args.keys:
        net.bulk_load(uniform_keys(args.keys, seed=args.seed + 1))
    return net


def cmd_demo(args: argparse.Namespace) -> int:
    net = _build(args)
    print(f"{net.size} peers, height {tree_height(net)}")
    probes = uniform_keys(5, seed=args.seed + 2)
    for key in probes:
        result = net.search_exact(key)
        state = "hit" if result.found else "miss"
        print(f"  search {key}: {state} at addr={result.owner} "
              f"({result.trace.total} msgs)")
    span = net.search_range(10**8, 2 * 10**8)
    print(f"  range [1e8, 2e8): {len(span.keys)} keys from "
          f"{span.nodes_visited} peers ({span.trace.total} msgs)")
    check_invariants(net)
    print("invariants: OK")
    return 0


def cmd_tree(args: argparse.Namespace) -> int:
    net = _build(args)
    print(viz.render_tree(net, max_level=args.max_level))
    print()
    print(viz.level_histogram(net))
    return 0


def cmd_ranges(args: argparse.Namespace) -> int:
    net = _build(args)
    print(viz.render_range_map(net))
    return 0


def cmd_peer(args: argparse.Namespace) -> int:
    net = _build(args)
    address = args.address if args.address is not None else net.random_peer_address()
    print(viz.render_peer(net, address))
    return 0


def _experiment_setup(args: argparse.Namespace) -> int:
    """Apply the shared --jobs/--snapshot-cache flags; returns the jobs."""
    from repro.experiments import snapshot
    from repro.experiments.parallel import default_jobs

    snapshot.configure(enabled=getattr(args, "snapshot_cache", True))
    jobs = getattr(args, "jobs", None)
    return jobs if jobs is not None else default_jobs()


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import runall

    argv = ["--quick"] if args.quick else []
    if args.out:
        argv += ["--out", args.out]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if not args.snapshot_cache:
        argv += ["--no-snapshot-cache"]
    return runall.main(argv)


def cmd_durability(args: argparse.Namespace) -> int:
    """Run the durability experiment (crash churn, replication on vs. off)."""
    from repro.experiments import durability, harness

    jobs = _experiment_setup(args)
    scale = harness.quick_scale() if args.quick else harness.default_scale()
    result = durability.run(scale, n_peers=args.peers, jobs=jobs)
    print(result.to_text())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos suite (correlated disaster across overlays)."""
    from repro.experiments import chaos, harness

    jobs = _experiment_setup(args)
    scale = harness.quick_scale() if args.quick else harness.default_scale()
    scenarios = (
        chaos.SCENARIO_NAMES if args.scenario == "all" else (args.scenario,)
    )
    overlay_names = None if args.overlay == "all" else [args.overlay]
    result = chaos.run(
        scale,
        scenarios=scenarios,
        overlay_names=overlay_names,
        n_peers=args.peers,
        jobs=jobs,
    )
    print(result.to_text())
    return 0


def cmd_multicast(args: argparse.Namespace) -> int:
    """Run the dissemination showdown (multicast vs unicast vs flood)."""
    from repro.experiments import harness, multicast

    jobs = _experiment_setup(args)
    scale = harness.quick_scale() if args.quick else harness.default_scale()
    result = multicast.run(scale, jobs=jobs)
    print(result.to_text())
    return 0


def cmd_locality(args: argparse.Namespace) -> int:
    """Run the locality grid (route cache x join mode on a clustered WAN)."""
    from repro.experiments import harness, locality

    jobs = _experiment_setup(args)
    scale = harness.quick_scale() if args.quick else harness.default_scale()
    sizes = (args.peers,) if args.peers else None
    result = locality.run(scale, sizes=sizes, jobs=jobs)
    print(result.to_text())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Time build/churn/query phases; optionally dump BENCH_scale.json."""
    from repro.experiments import scale_profile

    if args.peers:
        sizes = tuple(args.peers)
    elif args.full:
        sizes = (1000, 2500, 5000, 10000)
    else:
        sizes = scale_profile.BENCH_SIZES
    bulk = not args.no_bulk_build
    if args.out:
        payload = scale_profile.write_benchmark(
            args.out, sizes, seed=args.seed, bulk=bulk, suite=args.suite
        )
        rows = payload["rows"]
        print(f"wrote {args.out} ({len(rows)} population(s))")
    else:
        # Same measurement as the --out/benchmark path (including the
        # shortened window for the big populations), just not persisted.
        rows = scale_profile.collect_benchmark(
            sizes, seed=args.seed, bulk=bulk, suite=args.suite
        )["rows"]
    for row in rows:
        if row.get("workload") == "suite":
            print(
                f"suite: sequential {row['sequential_s']:.1f}s, "
                f"--jobs {row['jobs']} cold {row['cold_s']:.1f}s, "
                f"warm {row['warm_s']:.1f}s "
                f"(speedup {row['speedup']:.2f}x, {row['results']} results, "
                f"identical canonical output)"
            )
            continue
        print(
            f"N={row['n_peers']}: build {row['build_s']:.2f}s "
            f"({row['build']}), drive {row['drive_s']:.2f}s "
            f"({row['events']} events, {row['events_per_s']:.0f}/s, "
            f"peak heap {row['peak_heap']}), "
            f"success {row['success']:.3f}, p50 {row['p50']:.2f}, "
            f"stretch p50 {row['stretch_p50']:.2f}, "
            f"rss {row['peak_rss_mb']:.0f}MB"
        )
    return 0


def cmd_concurrent(args: argparse.Namespace) -> int:
    """Drive interleaved churn + queries on the event-driven runtime."""
    from repro import overlays
    from repro.workloads.concurrent import ConcurrentConfig

    try:
        config = ConcurrentConfig(
            duration=args.duration,
            churn_rate=args.churn_rate,
            query_rate=args.query_rate,
            insert_rate=args.insert_rate,
            join_fraction=args.join_fraction,
            fail_fraction=args.fail_fraction,
            range_fraction=args.range_fraction,
            maintenance_interval=args.maintenance_interval,
            repair_delay=args.repair_delay,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.topology != "clustered" and (
        args.regions != CLUSTERED_REGIONS_DEFAULT
        or args.inter_delay != CLUSTERED_INTER_DELAY_DEFAULT
    ):
        print(
            "error: --regions/--inter-delay only apply to --topology clustered",
            file=sys.stderr,
        )
        return 2
    names = overlays.available() if args.overlay == "all" else [args.overlay]
    if args.replication:
        # Capabilities are honest (DESIGN.md): refuse rather than run a
        # comparison where only some contenders silently replicate.
        unsupported = [
            name
            for name in names
            if "replication" not in overlays.get(name).capabilities
        ]
        if unsupported:
            print(
                f"error: --replication is not supported by "
                f"{', '.join(unsupported)} (only overlays advertising the "
                f"capability can replicate)",
                file=sys.stderr,
            )
            return 2
    if args.cache or args.join_probes or args.replica_diversity:
        unsupported = [
            name
            for name in names
            if "locality" not in overlays.get(name).capabilities
        ]
        if unsupported:
            print(
                f"error: --cache/--join-probes/--replica-diversity are not "
                f"supported by {', '.join(unsupported)} (only overlays "
                f"advertising the locality capability)",
                file=sys.stderr,
            )
            return 2
    if args.replica_diversity and not args.replication:
        print(
            "error: --replica-diversity needs --replication "
            "(there is no mirror to place without it)",
            file=sys.stderr,
        )
        return 2
    if args.replica_diversity and args.topology != "clustered":
        print(
            "error: --replica-diversity needs --topology clustered "
            "(diversity is defined over regions)",
            file=sys.stderr,
        )
        return 2
    if args.join_probes < 0:
        print("error: --join-probes must be >= 0", file=sys.stderr)
        return 2
    for name in names:
        _run_concurrent_overlay(name, args, config)
    return 0


def _run_concurrent_overlay(name: str, args: argparse.Namespace, config) -> None:
    """One overlay's concurrent run, reported to stdout."""
    from repro import overlays
    from repro.sim.topology import make_topology
    from repro.workloads.concurrent import run_concurrent_workload

    entry = overlays.get(name)
    topology_params = {}
    if args.topology == "clustered":
        topology_params = {
            "regions": args.regions,
            "inter_delay": args.inter_delay,
        }
    topology = make_topology(args.topology, seed=args.seed, **topology_params)
    build_kwargs = {"replication": args.replication}
    if args.cache or args.join_probes or args.replica_diversity:
        # The registry's replication path injects its own config, so the
        # locality variant builds the (equivalent) config explicitly.
        from repro.core.cache import DEFAULT_CACHE_SIZE
        from repro.core.network import BatonConfig, LocalityConfig

        build_kwargs = {
            "config": BatonConfig(
                replication=args.replication,
                locality=LocalityConfig(
                    join_probes=args.join_probes,
                    replica_diversity=args.replica_diversity,
                    cache_size=DEFAULT_CACHE_SIZE if args.cache else 0,
                ),
            )
        }
    anet = entry.build_async(
        args.peers,
        seed=args.seed,
        topology=topology,
        record_events=False,
        retain_ops=False,
        **build_kwargs,
    )
    keys = uniform_keys(args.keys or 10 * args.peers, seed=args.seed + 1)
    anet.net.bulk_load(keys)
    if args.replication:
        anet.net.refresh_replicas()  # anchor mirrors before traffic starts
    report = run_concurrent_workload(anet, keys, config, seed=args.seed + 2)
    print(
        f"{name}: {args.peers} peers, event-driven runtime, "
        f"{args.topology} topology, seed {args.seed}"
    )
    for line in report.summary_lines():
        print(f"  {line}")
    if name != "baton":
        return
    from repro.core.invariants import collect_violations

    violations = collect_violations(anet.net)
    if violations:
        # Heavy churn can leave a rare residual Theorem-1 imbalance (a leaf
        # departed on a safe-departure check whose correction was lost to a
        # stale link); the next join heals it.  Report, don't crash.
        print(f"invariants: {len(violations)} residual violation(s) after repair/reconcile")
        for violation in violations:
            print(f"  - {violation}")
    else:
        print("invariants: OK (after post-run repair/reconcile)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--peers", type=int, default=50)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--keys", type=int, default=0)

    def parallel_flags(p: argparse.ArgumentParser) -> None:
        """--jobs and the snapshot-cache toggle, shared by experiment
        subcommands; output is identical at every --jobs value."""
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes for the cell fan-out "
            "(default: REPRO_JOBS or 1)",
        )
        cache = p.add_mutually_exclusive_group()
        cache.add_argument(
            "--snapshot-cache",
            dest="snapshot_cache",
            action="store_true",
            default=True,
            help="reuse built-network snapshots keyed by build config "
            "(default; protocol-grown builds only)",
        )
        cache.add_argument(
            "--no-snapshot-cache",
            dest="snapshot_cache",
            action="store_false",
            help="always build networks from scratch",
        )

    demo = sub.add_parser("demo", help="build a network and run sample queries")
    common(demo)
    demo.set_defaults(func=cmd_demo)

    tree = sub.add_parser("tree", help="print the overlay as an ASCII tree")
    common(tree)
    tree.add_argument("--max-level", type=int, default=None)
    tree.set_defaults(func=cmd_tree)

    ranges = sub.add_parser("ranges", help="print the range partition map")
    common(ranges)
    ranges.set_defaults(func=cmd_ranges)

    peer = sub.add_parser("peer", help="dump one peer's full state")
    common(peer)
    peer.add_argument("--address", type=int, default=None)
    peer.set_defaults(func=cmd_peer)

    experiments = sub.add_parser("experiments", help="run the Figure-8 suite")
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument("--out", default=None)
    parallel_flags(experiments)
    experiments.set_defaults(func=cmd_experiments)

    durability = sub.add_parser(
        "durability",
        help="keys lost vs. maintenance traffic under crash churn "
        "(replication on vs. off)",
    )
    durability.add_argument("--quick", action="store_true")
    durability.add_argument(
        "--peers", type=int, default=None, help="override the population"
    )
    parallel_flags(durability)
    durability.set_defaults(func=cmd_durability)

    from repro import overlays
    from repro.workloads.chaos import SCENARIO_NAMES

    chaos = sub.add_parser(
        "chaos",
        help="correlated-disaster scenarios (region outage, partition, "
        "flash crowd, lossy links) with availability/recovery metrics",
    )
    chaos.add_argument("--quick", action="store_true")
    chaos.add_argument(
        "--scenario",
        default="all",
        choices=list(SCENARIO_NAMES) + ["all"],
        help="which scenario to run ('all' runs the full suite)",
    )
    chaos.add_argument(
        "--overlay",
        default="all",
        choices=overlays.available() + ["all"],
        help="which overlay to stress (scenarios needing capabilities the "
        "overlay lacks are skipped with a note)",
    )
    chaos.add_argument(
        "--peers", type=int, default=None, help="override the population"
    )
    parallel_flags(chaos)
    chaos.set_defaults(func=cmd_chaos)

    multicast = sub.add_parser(
        "multicast",
        help="range-dissemination showdown: tree multicast vs per-owner "
        "unicast vs flood, WAN-priced, plus the lossy pub/sub cell",
    )
    multicast.add_argument("--quick", action="store_true")
    parallel_flags(multicast)
    multicast.set_defaults(func=cmd_multicast)

    locality = sub.add_parser(
        "locality",
        help="locality grid: hot-range route cache x topology-aware join "
        "on a clustered WAN (stretch, hit rate, probing surcharge)",
    )
    locality.add_argument("--quick", action="store_true")
    locality.add_argument(
        "--peers", type=int, default=None, help="override the grid's N"
    )
    parallel_flags(locality)
    locality.set_defaults(func=cmd_locality)

    profile = sub.add_parser(
        "profile",
        help="wall-clock build/churn/query phase timings "
        "(the benchmark trajectory; see BENCH_scale.json)",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--peers",
        type=int,
        nargs="*",
        default=None,
        help="population(s) to profile (default: 1000, a shortened 10000, "
        "and the heavy-window 100000 cell)",
    )
    profile.add_argument(
        "--no-bulk-build",
        action="store_true",
        help="grow BATON join by join instead of the direct bulk "
        "construction (the pre-refactor behaviour; very slow beyond 10k)",
    )
    profile.add_argument(
        "--full",
        action="store_true",
        help="profile the paper's full 1000/2500/5000/10000 grid",
    )
    profile.add_argument(
        "--out",
        default=None,
        help="also write the machine-readable BENCH_scale.json payload here",
    )
    profile.add_argument(
        "--suite",
        action="store_true",
        help="also time the full experiment suite sequentially and under "
        "--jobs 4 (the suite wall-clock trajectory row; several minutes)",
    )
    profile.set_defaults(func=cmd_profile)

    from repro import overlays

    concurrent = sub.add_parser(
        "concurrent", help="interleaved churn + queries on the event runtime"
    )
    common(concurrent)
    concurrent.add_argument(
        "--overlay",
        default="baton",
        choices=overlays.available() + ["all"],
        help="which overlay to drive ('all' runs the full comparison)",
    )
    from repro.sim.topology import available_topologies

    concurrent.add_argument("--duration", type=float, default=60.0)
    concurrent.add_argument("--churn-rate", type=float, default=1.0)
    concurrent.add_argument("--query-rate", type=float, default=8.0)
    concurrent.add_argument("--insert-rate", type=float, default=0.0)
    concurrent.add_argument("--join-fraction", type=float, default=0.5)
    concurrent.add_argument("--fail-fraction", type=float, default=0.0)
    concurrent.add_argument("--range-fraction", type=float, default=0.2)
    concurrent.add_argument(
        "--topology",
        default="exponential",
        choices=available_topologies(),
        help="per-link transport model (scalar models are single-region)",
    )
    concurrent.add_argument(
        "--regions",
        type=int,
        default=CLUSTERED_REGIONS_DEFAULT,
        help="region count for --topology clustered",
    )
    concurrent.add_argument(
        "--inter-delay",
        type=float,
        default=CLUSTERED_INTER_DELAY_DEFAULT,
        help="inter-region base delay for --topology clustered",
    )
    concurrent.add_argument(
        "--maintenance-interval",
        type=float,
        default=0.0,
        help="run an in-window reconcile sweep every this many time units "
        "(0 disables; overlays without the capability never sweep; with "
        "--replication each sweep also re-anchors every peer's replica)",
    )
    concurrent.add_argument(
        "--replication",
        action="store_true",
        help="mirror each peer's store at its adjacent and restore it on "
        "repair (only overlays advertising the replication capability)",
    )
    concurrent.add_argument(
        "--repair-delay",
        type=float,
        default=0.0,
        help="detect and repair each crash this many time units after it "
        "lands (0 repairs only after the run drains)",
    )
    concurrent.add_argument(
        "--cache",
        action="store_true",
        help="give every peer a bounded hot-range route cache (locality "
        "extension; hits/misses/invalidations land in the report)",
    )
    concurrent.add_argument(
        "--join-probes",
        type=int,
        default=0,
        help="topology-aware join: each joiner prices this many candidate "
        "entry points and attaches where its neighbourhood link cost is "
        "lowest (0 or 1 = the paper's Algorithm 1)",
    )
    concurrent.add_argument(
        "--replica-diversity",
        action="store_true",
        help="anchor each peer's mirror in a different region than its "
        "owner (needs --replication and --topology clustered)",
    )
    concurrent.set_defaults(func=cmd_concurrent)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
