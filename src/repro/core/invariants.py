"""Global structural invariants of a BATON overlay.

Used **only** by tests and debugging — protocols never call this module.
The checker validates everything the paper's theorems promise:

1.  Position-map/peer consistency, and tree closure (every non-root occupied
    slot has an occupied parent slot).
2.  Height balance (Definition 1: subtree heights differ by at most one at
    every node).
3.  Theorem 1's working condition: every peer with a child has full left and
    right routing tables.
4.  Theorem 2: a table link's parents are themselves table-linked.
5.  Adjacent links are exactly the in-order neighbours.
6.  Ranges: the in-order traversal reads out a gapless, ascending partition
    of the covered domain.
7.  Link accuracy: every NodeInfo matches the target's live state (address,
    position, range, children).
8.  Table completeness: an in-range slot entry is non-null iff the slot is
    occupied.
9.  Parent/child mutuality and store containment (every stored key inside
    its owner's range).
"""

from __future__ import annotations

import time
from typing import List, Optional, TYPE_CHECKING

from repro.core.ids import Position
from repro.core.links import LEFT, RIGHT, NodeInfo
from repro.core.peer import BatonPeer
from repro.util.errors import InvariantViolation

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def check_invariants(net: "BatonNetwork") -> None:
    """Raise :class:`InvariantViolation` listing every broken invariant."""
    errors = collect_violations(net)
    if errors:
        summary = "\n  - ".join(errors[:25])
        suffix = f"\n  (+{len(errors) - 25} more)" if len(errors) > 25 else ""
        raise InvariantViolation(f"{len(errors)} violation(s):\n  - {summary}{suffix}")


def collect_violations(net: "BatonNetwork") -> List[str]:
    """All invariant violations, as human-readable strings."""
    errors: List[str] = []
    if net.ghosts:
        errors.append(f"unrepaired ghosts present: {sorted(net.ghosts)}")
    if not net.peers:
        return errors
    errors.extend(_check_map_consistency(net))
    errors.extend(_check_tree_closure(net))
    errors.extend(_check_balance(net))
    errors.extend(_check_theorem1(net))
    errors.extend(_check_theorem2(net))
    errors.extend(_check_adjacency(net))
    errors.extend(_check_range_partition(net))
    errors.extend(_check_link_accuracy(net))
    errors.extend(_check_table_completeness(net))
    errors.extend(_check_parent_child(net))
    errors.extend(_check_store_containment(net))
    return errors


def collect_violations_sampled(
    net: "BatonNetwork",
    sample_size: int = 1024,
    seed: int = 0,
    budget_s: Optional[float] = None,
) -> List[str]:
    """Invariant violations visible from a random peer sample.

    The full checker is O(N log N) and walks every peer several times —
    half a minute at N=100k, which no test or post-build sanity hook can
    afford.  This variant draws ``sample_size`` peers (all of them when the
    network is smaller) and verifies every *locally checkable* invariant at
    each: map consistency, parent-slot closure, Theorem 1 table fullness,
    link accuracy, table completeness against the position map, parent and
    child mutuality, store containment, and the adjacency splice including
    range continuity (``left.high == own.low == …``) — so a gap, overlap or
    stale link anywhere in the sampled neighbourhoods is caught.  Global
    aggregates that need the whole tree at once (height balance, the full
    in-order walk) stay with :func:`collect_violations`.

    ``budget_s`` optionally stops after a wall-clock budget; at sample 1024
    a check costs ~10ms at N=100k, so the budget only bites when something
    is pathologically wrong (which the partial result will already show).
    """
    errors: List[str] = []
    if net.ghosts:
        errors.append(f"unrepaired ghosts present: {sorted(net.ghosts)}")
    if not net.peers:
        return errors
    if Position(0, 1) not in net._positions:
        errors.append("root slot unoccupied")
    addresses = list(net.peers)
    if sample_size >= len(addresses):
        chosen = addresses
    else:
        from repro.util.rng import SeededRng

        chosen = SeededRng(seed).sample(addresses, sample_size)
    deadline = time.perf_counter() + budget_s if budget_s else None
    for address in chosen:
        errors.extend(_check_peer_locally(net, net.peers[address]))
        if deadline is not None and time.perf_counter() > deadline:
            break
    return errors


def _check_peer_locally(net: "BatonNetwork", peer: BatonPeer) -> List[str]:
    """Every invariant checkable from one peer and its direct links."""
    errors: List[str] = []
    position = peer.position

    # Map consistency and tree closure.
    if net._positions.get(position) != peer.address:
        errors.append(f"peer {peer.address} at {position} missing from map")
    parent_position = position.parent()
    if parent_position is not None and parent_position not in net._positions:
        errors.append(
            f"occupied slot {position} has unoccupied parent {parent_position}"
        )

    # Theorem 1 and the link snapshots.
    if not peer.is_leaf and not peer.tables_full():
        errors.append(f"{position} has children but incomplete routing tables")
    for kind, info in peer.iter_links():
        problem = _info_matches(net, info)
        if problem is not None:
            errors.append(f"{position} {kind} link: {problem}")

    # Table completeness against the position map.
    for side in (LEFT, RIGHT):
        table = peer.table_on(side)
        for index in table.valid_indices():
            slot = table.position_at(index)
            occupant = net._positions.get(slot)
            entry = table.get(index)
            if occupant is not None and entry is None:
                errors.append(
                    f"{position} {side} table misses occupied slot {slot}"
                )
            elif occupant is None and entry is not None:
                errors.append(
                    f"{position} {side} table has entry for empty slot {slot}"
                )
            elif entry is not None and entry.address != occupant:
                errors.append(
                    f"{position} {side} table entry for {slot} points at "
                    f"{entry.address}, occupant is {occupant}"
                )

    # Parent/child mutuality.
    if peer.parent is None and position.level != 0:
        errors.append(f"non-root {position} has no parent link")
    for side, expected_pos in (
        (LEFT, position.left_child()),
        (RIGHT, position.right_child()),
    ):
        child_info = peer.child_on(side)
        if child_info is None:
            continue
        child = net.peers.get(child_info.address)
        if child is None:
            errors.append(f"{position} {side} child link is dead")
        elif child.position != expected_pos:
            errors.append(
                f"{position} {side} child at {child.position}, "
                f"expected {expected_pos}"
            )
        elif child.parent is None or child.parent.address != peer.address:
            errors.append(
                f"{child.position} does not point back at parent {position}"
            )

    # Adjacency splice and range continuity.  A boundary peer (no adjacent
    # on a side) must own out to the corresponding domain edge, so checking
    # every peer this way is exactly the global partition check.
    domain = net.config.domain
    left_info = peer.left_adjacent
    if left_info is None:
        if peer.range.low != domain.low:
            errors.append(
                f"{position} has no left adjacent but starts at "
                f"{peer.range.low}, not {domain.low}"
            )
    else:
        left = net.peers.get(left_info.address)
        if left is None:
            errors.append(f"{position} left adjacent link is dead")
        else:
            if left.range.high != peer.range.low:
                errors.append(
                    f"range gap/overlap before {position}: {left.range} "
                    f"then {peer.range}"
                )
            if not left.position.inorder_lt(position):
                errors.append(
                    f"{position} left adjacent {left.position} is not "
                    f"earlier in in-order"
                )
            right_back = left.right_adjacent
            if right_back is None or right_back.address != peer.address:
                errors.append(
                    f"{left.position} does not point back at right "
                    f"adjacent {position}"
                )
    right_info = peer.right_adjacent
    if right_info is None and peer.range.high != domain.high:
        errors.append(
            f"{position} has no right adjacent but ends at "
            f"{peer.range.high}, not {domain.high}"
        )

    # Store containment.
    minimum, maximum = peer.store.min(), peer.store.max()
    if minimum is not None and (
        minimum < peer.range.low or maximum >= peer.range.high
    ):
        errors.append(
            f"{position} stores keys [{minimum}, {maximum}] outside "
            f"{peer.range}"
        )
    if peer.range.is_empty:
        errors.append(f"empty range at {position}")
    return errors


# -- individual checks --------------------------------------------------------


def _check_map_consistency(net: "BatonNetwork") -> List[str]:
    errors = []
    for position, address in net._positions.items():
        peer = net.peers.get(address)
        if peer is None:
            errors.append(f"map slot {position} points at missing peer {address}")
        elif peer.position != position:
            errors.append(
                f"map slot {position} holds peer at {peer.position} (addr {address})"
            )
    for address, peer in net.peers.items():
        if net._positions.get(peer.position) != address:
            errors.append(f"peer {address} at {peer.position} missing from map")
    return errors


def _check_tree_closure(net: "BatonNetwork") -> List[str]:
    errors = []
    for position in net._positions:
        parent = position.parent()
        if parent is not None and parent not in net._positions:
            errors.append(f"occupied slot {position} has unoccupied parent {parent}")
    root = Position(0, 1)
    if root not in net._positions:
        errors.append("root slot unoccupied")
    return errors


def _subtree_height(net: "BatonNetwork", position: Position) -> int:
    """Height of the occupied subtree under ``position`` (0 if empty)."""
    if position not in net._positions:
        return 0
    return 1 + max(
        _subtree_height(net, position.left_child()),
        _subtree_height(net, position.right_child()),
    )


def _check_balance(net: "BatonNetwork") -> List[str]:
    errors = []
    for position in net._positions:
        left = _subtree_height(net, position.left_child())
        right = _subtree_height(net, position.right_child())
        if abs(left - right) > 1:
            errors.append(
                f"imbalance at {position}: subtree heights {left} vs {right}"
            )
    return errors


def _check_theorem1(net: "BatonNetwork") -> List[str]:
    errors = []
    for peer in net.peers.values():
        if not peer.is_leaf and not peer.tables_full():
            errors.append(
                f"{peer.position} has children but incomplete routing tables"
            )
    return errors


def _check_theorem2(net: "BatonNetwork") -> List[str]:
    errors = []
    for peer in net.peers.values():
        parent_info = peer.parent
        if parent_info is None:
            continue
        parent = net.peers.get(parent_info.address)
        if parent is None:
            continue
        for side in (LEFT, RIGHT):
            for _, info in peer.table_on(side).occupied():
                target_parent_pos = info.position.parent()
                if target_parent_pos is None or target_parent_pos == parent.position:
                    continue
                slot = parent.table_slot_for(target_parent_pos)
                if slot is None:
                    errors.append(
                        f"theorem 2: parent of {info.position} not at a table "
                        f"distance from {parent.position}"
                    )
                    continue
                entry = parent.table_on(slot[0]).get(slot[1])
                if entry is None:
                    errors.append(
                        f"theorem 2: {parent.position} lacks entry for parent "
                        f"of {info.position} linked by child {peer.position}"
                    )
    return errors


def _inorder_positions(net: "BatonNetwork") -> List[Position]:
    # Slots held by ghosts are excluded: the map-consistency check already
    # reports them, and the remaining checks need live peers.
    positions = [p for p, a in net._positions.items() if a in net.peers]
    positions.sort(key=lambda p: p.inorder_num_den()[0] / p.inorder_num_den()[1])
    # Exact ordering (floats are fine at simulation depths, but be safe):
    import functools

    positions.sort(
        key=functools.cmp_to_key(
            lambda a, b: -1 if a.inorder_lt(b) else (1 if b.inorder_lt(a) else 0)
        )
    )
    return positions


def _check_adjacency(net: "BatonNetwork") -> List[str]:
    errors = []
    ordered = _inorder_positions(net)
    previous: Optional[Position] = None
    for position in ordered:
        peer = net.peers[net._positions[position]]
        expected_left = net._positions.get(previous) if previous else None
        actual_left = peer.left_adjacent.address if peer.left_adjacent else None
        if actual_left != expected_left:
            errors.append(
                f"{position}: left adjacent is {actual_left}, expected "
                f"{expected_left}"
            )
        previous = position
    following: Optional[Position] = None
    for position in reversed(ordered):
        peer = net.peers[net._positions[position]]
        expected_right = net._positions.get(following) if following else None
        actual_right = peer.right_adjacent.address if peer.right_adjacent else None
        if actual_right != expected_right:
            errors.append(
                f"{position}: right adjacent is {actual_right}, expected "
                f"{expected_right}"
            )
        following = position
    return errors


def _check_range_partition(net: "BatonNetwork") -> List[str]:
    errors = []
    ordered = _inorder_positions(net)
    ranges = [net.peers[net._positions[p]].range for p in ordered]
    for earlier, later, pos in zip(ranges, ranges[1:], ordered[1:]):
        if earlier.high != later.low:
            errors.append(
                f"range gap/overlap before {pos}: {earlier} then {later}"
            )
    for range_, pos in zip(ranges, ordered):
        if range_.is_empty:
            errors.append(f"empty range at {pos}")
    return errors


def _info_matches(net: "BatonNetwork", info: NodeInfo) -> Optional[str]:
    peer = net.peers.get(info.address)
    if peer is None:
        return f"links dead peer {info.address}"
    if peer.position != info.position:
        return f"stale position {info.position} for peer at {peer.position}"
    if peer.range != info.range:
        return f"stale range {info.range} for peer holding {peer.range}"
    actual_left = peer.left_child.address if peer.left_child else None
    actual_right = peer.right_child.address if peer.right_child else None
    if info.left_child != actual_left or info.right_child != actual_right:
        return (
            f"stale children ({info.left_child}, {info.right_child}) for "
            f"peer with ({actual_left}, {actual_right})"
        )
    return None


def _check_link_accuracy(net: "BatonNetwork") -> List[str]:
    errors = []
    for peer in net.peers.values():
        for kind, info in peer.iter_links():
            problem = _info_matches(net, info)
            if problem is not None:
                errors.append(f"{peer.position} {kind} link: {problem}")
    return errors


def _check_table_completeness(net: "BatonNetwork") -> List[str]:
    errors = []
    for peer in net.peers.values():
        for side in (LEFT, RIGHT):
            table = peer.table_on(side)
            for index in table.valid_indices():
                slot = table.position_at(index)
                occupant = net._positions.get(slot)
                entry = table.get(index)
                if occupant is not None and entry is None:
                    errors.append(
                        f"{peer.position} {side} table misses occupied slot {slot}"
                    )
                if occupant is None and entry is not None:
                    errors.append(
                        f"{peer.position} {side} table has entry for empty "
                        f"slot {slot}"
                    )
                if (
                    occupant is not None
                    and entry is not None
                    and entry.address != occupant
                ):
                    errors.append(
                        f"{peer.position} {side} table entry for {slot} points "
                        f"at {entry.address}, occupant is {occupant}"
                    )
    return errors


def _check_parent_child(net: "BatonNetwork") -> List[str]:
    errors = []
    for peer in net.peers.values():
        for side, expected_pos in (
            (LEFT, peer.position.left_child()),
            (RIGHT, peer.position.right_child()),
        ):
            child_info = peer.child_on(side)
            if child_info is None:
                continue
            child = net.peers.get(child_info.address)
            if child is None:
                errors.append(f"{peer.position} {side} child link is dead")
                continue
            if child.position != expected_pos:
                errors.append(
                    f"{peer.position} {side} child at {child.position}, "
                    f"expected {expected_pos}"
                )
            if child.parent is None or child.parent.address != peer.address:
                errors.append(
                    f"{child.position} does not point back at parent "
                    f"{peer.position}"
                )
        if peer.parent is None and peer.position.level != 0:
            errors.append(f"non-root {peer.position} has no parent link")
    return errors


def _check_store_containment(net: "BatonNetwork") -> List[str]:
    errors = []
    for peer in net.peers.values():
        low, high = peer.range.low, peer.range.high
        minimum, maximum = peer.store.min(), peer.store.max()
        if minimum is not None and (minimum < low or maximum >= high):
            errors.append(
                f"{peer.position} stores keys [{minimum}, {maximum}] outside "
                f"{peer.range}"
            )
    return errors


def tree_height(net: "BatonNetwork") -> int:
    """Height of the occupied tree (1 for a singleton root)."""
    return _subtree_height(net, Position(0, 1))
