"""Adjacent-replica data durability (extension beyond the paper).

§III-C restores a failed peer's *range* but its locally stored keys are
lost — the paper does not replicate data.  This module adds the smallest
extension that closes the gap, in the spirit of the overlay's own links:
every peer's store is mirrored at its **right adjacent** node (the leftmost
peer mirrors at its right adjacent too; the rightmost falls back to its
left adjacent).  Repair then pulls the replica back when reassigning the
dead peer's range.

Consistency model (the "Durability contract" in DESIGN.md): write-through
for inserts and deletes (one extra :attr:`~repro.net.message.MsgType.REPLICATE`
message per update), plus an explicit anti-entropy pass
(:func:`refresh_replicas`) that re-anchors each peer's mirror at its
current adjacent after membership changes move ranges between peers.  That
mirrors how such schemes deploy in practice: cheap incremental upkeep with
a periodic full sweep.  A replica restored after heavy un-refreshed churn
is best-effort: restoration filters to the dead peer's final range so
structural invariants never regress.

Every function here is written as a *step generator* (the repository-wide
convention, :mod:`repro.util.stepper`): it performs one protocol step —
one counted message exchange — then yields a
:class:`~repro.sim.topology.Hop` naming the link the message crosses.  The
synchronous network drives a generator to exhaustion (one atomic
operation, the historical behaviour); the event-driven runtime lifts the
same generator onto the simulator, so replication traffic is priced per
link like any other message instead of being a free side effect.  Bulk
transfers — a full-store refresh, the repair-time replica pull — declare
their payload via ``Hop.size``, so bandwidth-limited topologies charge
them honestly.

Enable with ``BatonConfig(replication=True)``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.peer import BatonPeer
from repro.net.address import Address
from repro.net.message import MsgType
from repro.sim.topology import Hop
from repro.util.errors import PeerNotFoundError
from repro.util.stepper import MessageSteps, drive

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def replica_holder(net: "BatonNetwork", peer: BatonPeer) -> Optional[BatonPeer]:
    """The live peer mirroring ``peer``'s store (right adjacent, else left).

    With region-diverse placement on (``LocalityConfig.replica_diversity``
    and a region-aware topology — default off) and the adjacent pick in the
    owner's own region, the mirror moves to the owner's nearest cross-region
    link instead, so one region-wide outage can never take both copies
    (DESIGN.md, "Locality contract").  Falls back to the adjacent pick when
    every link is same-region.
    """
    first: Optional[BatonPeer] = None
    for info in (peer.right_adjacent, peer.left_adjacent):
        if info is not None and info.address in net.peers:
            first = net.peers[info.address]
            break
    if first is None:
        return None
    if not net.config.locality.replica_diversity:
        return first
    region_of = getattr(net.topology, "region_of", None)
    if region_of is None:
        return first
    home = region_of(peer.address)
    if region_of(first.address) != home:
        return first  # the adjacent pick is already diverse
    for _, info in peer.iter_links():
        if info.address in net.peers and region_of(info.address) != home:
            return net.peers[info.address]
    return first


def _write_target(net: "BatonNetwork", owner: BatonPeer) -> Optional[BatonPeer]:
    """Where a write-through goes: the recorded anchor while it is live,
    else the current adjacent (which becomes the new anchor)."""
    if owner.replica_anchor is not None:
        anchored = net.peers.get(owner.replica_anchor)
        if anchored is not None:
            return anchored
    return replica_holder(net, owner)


def replicate_insert_steps(
    net: "BatonNetwork", owner: BatonPeer, key: int
) -> MessageSteps:
    """Write-through one inserted key to the owner's replica holder.

    One REPLICATE message, one hop.  The mirror is applied at the holder
    *after* the hop lands; if either end vanishes in transit the update is
    dropped (the message was still paid for) and the next refresh heals it.
    """
    holder = _write_target(net, owner)
    if holder is None:
        return False
    try:
        net.count_message(owner.address, holder.address, MsgType.REPLICATE, key=key)
    except PeerNotFoundError:
        return False
    owner.replica_anchor = holder.address
    yield Hop(owner.address, holder.address)
    target = net.peers.get(holder.address)
    if target is not holder or net.peers.get(owner.address) is not owner:
        return False
    target.replicas.setdefault(owner.address, []).append(key)
    return True


def replicate_delete_steps(
    net: "BatonNetwork", owner: BatonPeer, key: int
) -> MessageSteps:
    """Write-through one deleted key to the owner's replica holder."""
    holder = _write_target(net, owner)
    if holder is None:
        return False
    try:
        net.count_message(owner.address, holder.address, MsgType.REPLICATE, key=key)
    except PeerNotFoundError:
        return False
    owner.replica_anchor = holder.address
    yield Hop(owner.address, holder.address)
    target = net.peers.get(holder.address)
    if target is not holder:
        return False
    mirror = target.replicas.get(owner.address)
    if mirror is not None and key in mirror:
        mirror.remove(key)
    return True


def replicate_insert(net: "BatonNetwork", owner: BatonPeer, key: int) -> None:
    """Synchronous write-through (drives the step generator atomically)."""
    drive(replicate_insert_steps(net, owner, key))


def replicate_delete(net: "BatonNetwork", owner: BatonPeer, key: int) -> None:
    """Synchronous write-through (drives the step generator atomically)."""
    drive(replicate_delete_steps(net, owner, key))


def refresh_peer_steps(net: "BatonNetwork", peer: BatonPeer) -> MessageSteps:
    """Re-anchor one peer's mirror at its current adjacent.

    One sized REPLICATE message carrying the full store (``Hop.size`` =
    number of keys, so bandwidth-limited links charge the bulk honestly).
    On arrival the holder installs the snapshot, the stale mirror at the
    previous anchor is dropped, and the holder prunes mirrors whose owner
    no longer exists (dead owners' mirrors are kept for repair).  Returns
    the number of messages spent (0 or 1).
    """
    holder = replica_holder(net, peer)
    if holder is None:
        return 0
    snapshot = list(peer.store)
    try:
        net.count_message(
            peer.address, holder.address, MsgType.REPLICATE, keys=len(snapshot)
        )
    except PeerNotFoundError:
        return 0
    yield Hop(peer.address, holder.address, size=float(max(1, len(snapshot))))
    target = net.peers.get(holder.address)
    if target is None or net.peers.get(peer.address) is not peer:
        # An end vanished mid-flight: the snapshot is stale, drop it.
        return 1
    old_anchor = peer.replica_anchor
    if old_anchor is not None and old_anchor != holder.address:
        previous = net.peers.get(old_anchor)
        if previous is not None:
            previous.replicas.pop(peer.address, None)
    peer.replica_anchor = holder.address
    target.replicas[peer.address] = snapshot
    for owner_address in list(target.replicas):
        if owner_address not in net.peers and owner_address not in net.ghosts:
            del target.replicas[owner_address]
    return 1


def refresh_replicas(net: "BatonNetwork") -> int:
    """Anti-entropy sweep: re-anchor every peer's replica at its current
    adjacent.  Returns the number of messages spent (one per peer)."""
    messages = 0
    for peer in list(net.peers.values()):
        messages += drive(refresh_peer_steps(net, peer))
    return messages


def restore_from_replica_steps(
    net: "BatonNetwork", ghost: BatonPeer, absorber: BatonPeer
) -> MessageSteps:
    """During repair, pull the dead peer's mirrored keys into ``absorber``.

    Three priced steps: the absorber's request to the mirror's holder (one
    message), the bulk reply carrying the mirror (one message, ``Hop.size``
    = number of keys), and the batched onward re-mirror of the recovered
    keys at the absorber's own replica holder (one sized message).  Only
    keys inside the absorber's (already merged) range are restored so the
    store-containment invariant cannot regress on stale replicas.  Returns
    the number of keys recovered.
    """
    holder = _find_replica_holder(net, ghost)
    if holder is None:
        return 0
    mirror = holder.replicas.pop(ghost.address, None)
    if not mirror:
        return 0
    try:
        net.count_message(
            absorber.address, holder.address, MsgType.REPLICATE, keys=len(mirror)
        )
    except PeerNotFoundError:
        return 0
    yield Hop(absorber.address, holder.address)
    if net.peers.get(holder.address) is not holder:
        return 0  # the mirror died with its holder mid-request
    try:
        net.count_message(
            holder.address, absorber.address, MsgType.RESPONSE, keys=len(mirror)
        )
    except PeerNotFoundError:
        return 0
    yield Hop(holder.address, absorber.address, size=float(len(mirror)))
    if net.peers.get(absorber.address) is not absorber:
        return 0  # the absorber vanished before the bulk reply landed
    recovered = [key for key in mirror if absorber.range.contains(key)]
    absorber.store.extend(recovered)
    if not recovered:
        return 0
    # The recovered keys now live at the absorber: mirror them onward as
    # one batched, sized transfer.
    onward = _write_target(net, absorber)
    if onward is None:
        return len(recovered)
    try:
        net.count_message(
            absorber.address, onward.address, MsgType.REPLICATE, keys=len(recovered)
        )
    except PeerNotFoundError:
        return len(recovered)
    absorber.replica_anchor = onward.address
    yield Hop(absorber.address, onward.address, size=float(len(recovered)))
    target = net.peers.get(onward.address)
    if target is onward and net.peers.get(absorber.address) is absorber:
        target.replicas.setdefault(absorber.address, []).extend(recovered)
    return len(recovered)


def restore_from_replica(
    net: "BatonNetwork", ghost: BatonPeer, absorber: BatonPeer
) -> int:
    """Synchronous replica pull (drives the step generator atomically)."""
    return drive(restore_from_replica_steps(net, ghost, absorber))


def _find_replica_holder(
    net: "BatonNetwork", ghost: BatonPeer
) -> Optional[BatonPeer]:
    """Locate whoever holds the dead peer's mirror.

    The ghost's recorded anchor and adjacent links name the holder
    directly; after concurrent churn they may be stale, so fall back to
    scanning (test-scale networks only pay this on the rare stale path).
    """
    candidates: list[Optional[Address]] = [ghost.replica_anchor]
    for info in (ghost.right_adjacent, ghost.left_adjacent):
        if info is not None:
            candidates.append(info.address)
    for address in candidates:
        if address is None:
            continue
        holder = net.peers.get(address)
        if holder is not None and ghost.address in holder.replicas:
            return holder
    for peer in net.peers.values():
        if ghost.address in peer.replicas:
            return peer
    return None
