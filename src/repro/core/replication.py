"""Adjacent-replica data durability (extension beyond the paper).

§III-C restores a failed peer's *range* but its locally stored keys are
lost — the paper does not replicate data.  This module adds the smallest
extension that closes the gap, in the spirit of the overlay's own links:
every peer's store is mirrored at its **right adjacent** node (the leftmost
peer mirrors at its right adjacent too; the rightmost falls back to its
left adjacent).  Repair then pulls the replica back when reassigning the
dead peer's range.

Consistency model: write-through for inserts and deletes (one extra
:attr:`~repro.net.message.MsgType.REPLICATE` message per update), plus an
explicit anti-entropy pass (:func:`refresh_replicas`) to re-anchor replicas
after membership changes move ranges between peers.  That mirrors how such
schemes deploy in practice: cheap incremental upkeep with a periodic full
sweep.  A replica restored after heavy un-refreshed churn is best-effort:
restoration filters to the dead peer's final range so structural invariants
never regress.

Enable with ``BatonConfig(replication=True)``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.peer import BatonPeer
from repro.net.address import Address
from repro.net.message import MsgType
from repro.util.errors import PeerNotFoundError

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def replica_holder(net: "BatonNetwork", peer: BatonPeer) -> Optional[BatonPeer]:
    """The live peer mirroring ``peer``'s store (right adjacent, else left)."""
    for info in (peer.right_adjacent, peer.left_adjacent):
        if info is not None and info.address in net.peers:
            return net.peers[info.address]
    return None


def replicate_insert(net: "BatonNetwork", owner: BatonPeer, key: int) -> None:
    """Write-through one inserted key to the owner's replica holder."""
    holder = replica_holder(net, owner)
    if holder is None:
        return
    try:
        net.count_message(owner.address, holder.address, MsgType.REPLICATE, key=key)
    except PeerNotFoundError:
        return
    holder.replicas.setdefault(owner.address, []).append(key)


def replicate_delete(net: "BatonNetwork", owner: BatonPeer, key: int) -> None:
    """Write-through one deleted key to the owner's replica holder."""
    holder = replica_holder(net, owner)
    if holder is None:
        return
    try:
        net.count_message(owner.address, holder.address, MsgType.REPLICATE, key=key)
    except PeerNotFoundError:
        return
    mirror = holder.replicas.get(owner.address)
    if mirror is not None and key in mirror:
        mirror.remove(key)


def refresh_replicas(net: "BatonNetwork") -> int:
    """Anti-entropy sweep: re-anchor every peer's replica at its current
    adjacent.  Returns the number of messages spent (one per peer)."""
    for peer in net.peers.values():
        peer.replicas.clear()
    messages = 0
    for peer in net.peers.values():
        holder = replica_holder(net, peer)
        if holder is None:
            continue
        try:
            net.count_message(
                peer.address, holder.address, MsgType.REPLICATE, keys=len(peer.store)
            )
        except PeerNotFoundError:
            continue
        holder.replicas[peer.address] = list(peer.store)
        messages += 1
    return messages


def restore_from_replica(
    net: "BatonNetwork", ghost: BatonPeer, absorber: BatonPeer
) -> int:
    """During repair, pull the dead peer's mirrored keys into ``absorber``.

    Only keys inside the absorber's (already merged) range are restored so
    the store-containment invariant cannot regress on stale replicas.
    Returns the number of keys recovered.
    """
    holder = _find_replica_holder(net, ghost)
    if holder is None:
        return 0
    mirror = holder.replicas.pop(ghost.address, None)
    if not mirror:
        return 0
    try:
        net.count_message(
            absorber.address, holder.address, MsgType.REPLICATE, keys=len(mirror)
        )
    except PeerNotFoundError:
        return 0
    recovered = [key for key in mirror if absorber.range.contains(key)]
    absorber.store.extend(recovered)
    # The recovered keys now live at the absorber: mirror them onward.
    for key in recovered:
        replicate_insert(net, absorber, key)
    return len(recovered)


def _find_replica_holder(
    net: "BatonNetwork", ghost: BatonPeer
) -> Optional[BatonPeer]:
    """Locate whoever holds the dead peer's mirror.

    The ghost's adjacent links name the holder directly; after concurrent
    churn the links may be stale, so fall back to scanning (test-scale
    networks only pay this on the rare stale path).
    """
    for info in (ghost.right_adjacent, ghost.left_adjacent):
        if info is None:
            continue
        holder = net.peers.get(info.address)
        if holder is not None and ghost.address in holder.replicas:
            return holder
    for peer in net.peers.values():
        if ghost.address in peer.replicas:
            return peer
    return None
