"""Result objects returned by the public network operations.

Every operation returns its :class:`~repro.net.bus.Trace` so experiments can
read off "number of passing messages" per operation — the paper's metric —
without poking at bus internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.address import Address
from repro.net.bus import Trace


@dataclass
class JoinResult:
    """Outcome of a node join."""

    address: Address
    parent: Address
    find_trace: Trace
    update_trace: Trace
    restructure_moves: int = 0

    @property
    def total_messages(self) -> int:
        return self.find_trace.total + self.update_trace.total


@dataclass
class LeaveResult:
    """Outcome of a node departure."""

    departed: Address
    replacement: Optional[Address]
    find_trace: Trace
    update_trace: Trace
    restructure_moves: int = 0

    @property
    def total_messages(self) -> int:
        return self.find_trace.total + self.update_trace.total


@dataclass
class SearchResult:
    """Outcome of an exact-match query."""

    found: bool
    owner: Address
    trace: Trace


@dataclass
class RangeSearchResult:
    """Outcome of a range query.

    ``complete`` is False when the adjacent-chain walk could not cover the
    whole query interval — it hit a dead peer or ran out of hops — so the
    returned keys are a truncated answer.  Callers that need the full
    answer should retry after repair rather than trust a partial result.
    """

    owners: List[Address]
    keys: List[int]
    trace: Trace
    complete: bool = True

    @property
    def nodes_visited(self) -> int:
        return len(self.owners)


@dataclass
class DataOpResult:
    """Outcome of an insert or delete."""

    applied: bool
    owner: Address
    trace: Trace
    balance_trace: Optional[Trace] = None
    balance_moves: int = 0

    @property
    def total_messages(self) -> int:
        total = self.trace.total
        if self.balance_trace is not None:
            total += self.balance_trace.total
        return total


@dataclass
class RepairResult:
    """Outcome of repairing a failed peer."""

    failed: Address
    replacement: Optional[Address]
    trace: Trace
    #: Keys pulled back from the dead peer's replica during repair (0
    #: unless the replication extension is enabled and a mirror survived).
    keys_recovered: int = 0


@dataclass
class BalanceEvent:
    """One load-balancing episode (for Figures 8(g) and 8(h))."""

    kind: str  # "adjacent" or "rejoin"
    messages: int
    shift_size: int = 0  # nodes moved by forced restructuring


@dataclass
class NetworkStats:
    """Aggregate counters a network keeps across its lifetime."""

    joins: int = 0
    leaves: int = 0
    failures: int = 0
    repairs: int = 0
    restructure_shift_sizes: List[int] = field(default_factory=list)
    balance_events: List[BalanceEvent] = field(default_factory=list)
