"""Node join: Algorithm 1 and the routing-table update protocol (§III-A).

A joining node contacts any existing peer; the JOIN request is forwarded —
to the parent when the contacted node's sideways tables are not full, to a
same-level neighbour that lacks a child, or to an adjacent node — until it
reaches a node with **full routing tables and a free child slot**, which by
Theorem 1 can accept a child without unbalancing the tree.

On acceptance the parent splits its range (and the stored keys) with the new
child, splices the child into the adjacent-link chain, and drives the table
update protocol: the parent notifies each of its sideways neighbours (≤ 2·L1
messages), each neighbour informs its children that border the new node
(≤ 2·L2 messages in total), and those children reply to the new node with
their own coordinates (≤ 2·L2 messages), which fills the new node's tables
and everyone else's — fewer than 6·log N messages end to end.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.ids import ROOT, Position
from repro.core.links import LEFT, RIGHT, NodeInfo
from repro.core.peer import BatonPeer
from repro.core.results import JoinResult
from repro.net.address import Address
from repro.net.message import MsgType
from repro.sim.topology import Hop
from repro.util.errors import PeerNotFoundError, ProtocolError
from repro.util.stepper import MessageSteps, drive

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def try_message(
    net: "BatonNetwork", src: Address, dst: Address, mtype: MsgType
) -> bool:
    """Send one counted message; False if the target turned out dead.

    During churn windows (§V-E) a join can hold stale links to peers that
    failed concurrently; the attempt is paid for and the protocol skips the
    dead neighbour — repair fills the resulting gaps afterwards.
    """
    try:
        net.count_message(src, dst, mtype)
    except PeerNotFoundError:
        return False
    return True


def join(net: "BatonNetwork", start: Address) -> JoinResult:
    """Join one new peer, entering the overlay at ``start``.

    In a degraded network (unrepaired failures) the placement walk can get
    boxed in by dead neighbours; the joiner then retries through a different
    entry point, as a real joining host would.

    With topology-aware probing on (``LocalityConfig.join_probes > 1`` and
    a topology installed — default off) the contact peer first probes
    candidate entry points on the joiner's behalf and the Algorithm 1 walk
    starts at the cheapest neighbourhood; with probing off the walk is
    message-for-message Algorithm 1 (pinned).
    """
    newcomer: Optional[BatonPeer] = None
    with net.open_trace("join.find") as find_trace:
        if probing_active(net):
            # The joiner's address (hence its physical placement) must
            # exist before the walk so probe replies can be priced against
            # it; the single allocation per join simply moves earlier.
            newcomer = BatonPeer(net.alloc.allocate(), ROOT, net.config.domain)
            start = drive(probe_entry_steps(net, newcomer.address, start))
        attempts = 3 if net.ghosts else 1
        parent_address: Optional[Address] = None
        for attempt in range(attempts):
            try:
                parent_address = find_join_parent(net, start)
                break
            except ProtocolError:
                if attempt == attempts - 1:
                    raise
                start = net.random_peer_address()
    with net.open_trace("join.update") as update_trace:
        parent = net.peer(parent_address)
        side = LEFT if parent.left_child is None else RIGHT
        new_peer = add_child(net, parent, side, peer=newcomer)
    return JoinResult(
        address=new_peer.address,
        parent=parent_address,
        find_trace=find_trace,
        update_trace=update_trace,
    )


def probing_active(net: "BatonNetwork") -> bool:
    """Whether topology-aware join probing applies to this network."""
    return net.config.locality.join_probes > 1 and net.topology is not None


def neighbourhood_cost(
    net: "BatonNetwork", joiner: Address, candidate: Address
) -> float:
    """The joiner's mean direct link cost to a candidate's neighbourhood.

    The candidate's probe RESPONSE carries its own coordinates and its
    adjacent links (local knowledge it already holds); the joiner prices
    the direct links to each — ``direct_delay`` is deterministic, so
    probing never perturbs the topology's jitter stream.
    """
    peer = net.peers.get(candidate)
    if peer is None:
        return float("inf")
    topology = net.topology
    total = topology.direct_delay(joiner, candidate)
    count = 1
    for info in (peer.left_adjacent, peer.right_adjacent):
        if info is not None:
            total += topology.direct_delay(joiner, info.address)
            count += 1
    return total / count


def probe_entry_steps(
    net: "BatonNetwork", joiner: Address, contact: Address
) -> MessageSteps:
    """Probe k candidate entry points; return where the walk should start.

    The joining host knows only its contact, so the contact probes
    ``join_probes - 1`` further uniformly drawn candidates on its behalf:
    one JOIN_PROBE out, one RESPONSE back per candidate, both counted and
    priced like any other message.  If a cheaper neighbourhood than the
    contact's turns up, one more JOIN_FIND hop forwards the walk there;
    candidates that die mid-probe are paid for and skipped (§III-D style).
    """
    best = contact
    best_cost = neighbourhood_cost(net, joiner, contact)
    seen = {contact}
    for _ in range(net.config.locality.join_probes - 1):
        candidate = net.random_peer_address()
        if candidate in seen:
            continue
        seen.add(candidate)
        if not try_message(net, contact, candidate, MsgType.JOIN_PROBE):
            continue
        yield Hop(contact, candidate)
        if candidate not in net.peers:
            continue  # died while the probe was in flight
        if not try_message(net, candidate, contact, MsgType.RESPONSE):
            continue
        yield Hop(candidate, contact)
        cost = neighbourhood_cost(net, joiner, candidate)
        if cost < best_cost:
            best, best_cost = candidate, cost
    if best != contact:
        if try_message(net, contact, best, MsgType.JOIN_FIND):
            yield Hop(contact, best)
        else:
            best = contact  # the winner died since its probe; stay put
    return best


def can_accept_join(peer: BatonPeer) -> bool:
    """Whether ``peer`` may accept a new child right now.

    Algorithm 1's test (full tables, free child slot) plus the range guard:
    a peer whose range has shrunk to a single key cannot hand half of it to
    a child, so the walk skips it instead of crashing in the split.
    """
    return peer.can_accept_child() and peer.range.can_split


def find_join_parent(net: "BatonNetwork", start: Address) -> Address:
    """Algorithm 1: walk the overlay to a node that may accept a child.

    The request carries the set of peers it has already consulted and is
    never re-forwarded to one of them (the natural implementation: the
    walk's path history rides in the JOIN message).  Without this, the
    purely local forwarding rules can trap the request in a cycle once a
    neighbourhood saturates — a frontier leaf's "tables not full" rule
    sends it to its parent, whose "descend via an adjacent" rule sends it
    straight back — which at N≈10k reliably exceeded any hop limit.
    Skipping visited peers costs nothing on the wire (no message is sent
    to them) and turns the walk into an outward exploration that reaches
    an open slot.
    """
    limit = 8 * max(net.size.bit_length(), 1) + 2 * net.size + 64
    current = start
    visited = {start}
    for _ in range(limit):
        peer = net.peer(current)
        if can_accept_join(peer):
            return current
        next_hop = None
        revisit: Optional[Address] = None
        for candidate in forward_targets(net, peer):
            if candidate in visited:
                if revisit is None:
                    revisit = candidate
                continue
            if try_message(net, current, candidate, MsgType.JOIN_FIND):
                next_hop = candidate
                break
        if next_hop is None and revisit is not None:
            # Every unvisited direction was dead: fall back to the best
            # already-visited one rather than strand the request (rare, and
            # only reachable in degraded networks).
            if try_message(net, current, revisit, MsgType.JOIN_FIND):
                next_hop = revisit
        if next_hop is None:
            raise ProtocolError(
                f"join request stuck at {peer.position}: no forwarding target"
            )
        visited.add(next_hop)
        current = next_hop
    raise ProtocolError("join request did not terminate (routing state corrupt?)")


def forward_targets(net: "BatonNetwork", peer: BatonPeer) -> list[Address]:
    """Where Algorithm 1 forwards a JOIN request from ``peer``, in order.

    The head of the list is the paper's choice; the tail adds §III-D-style
    fallbacks that only come into play when the preferred target died
    concurrently (the walk pays for the failed attempt either way).
    """
    targets: list[Address] = []
    if not peer.tables_full():
        # Some same-level slot next to us is empty; our parent can see the
        # would-be parent of that slot in *its* tables (Theorem 2).
        if peer.parent is not None:
            targets.append(peer.parent.address)
    else:
        # Tables full but both children taken: prefer a sideways neighbour
        # that still lacks a child; the entry's child links tell us locally.
        missing = (
            peer.left_table.nodes_missing_children()
            + peer.right_table.nodes_missing_children()
        )
        missing.sort(
            key=lambda info: abs(info.position.number - peer.position.number)
        )
        targets.extend(info.address for info in missing)
    # Descend via an adjacent node (the paper's remaining case), then any
    # other live link as a failure fallback.
    adjacents = [
        info.address
        for info in (peer.left_adjacent, peer.right_adjacent)
        if info is not None
    ]
    if len(adjacents) == 2 and net.rng.random() < 0.5:
        adjacents.reverse()
    targets.extend(adjacents)
    for _, info in peer.iter_links():
        targets.append(info.address)
    deduped: list[Address] = []
    seen: set[Address] = {peer.address}
    for address in targets:
        if address not in seen:
            seen.add(address)
            deduped.append(address)
    return deduped


def choose_split_pivot(net: "BatonNetwork", parent: BatonPeer) -> int:
    """Where the parent's range splits when handing half to a new child.

    ``median`` policy: the median stored key, so the child takes half the
    *content* (the paper's wording); falls back to the arithmetic midpoint
    when the store is empty or the median sits on a range boundary.
    """
    if not parent.range.can_split:
        raise ProtocolError(
            f"range {parent.range} too narrow to split at {parent.position}"
        )
    if net.config.split_policy == "median":
        median = parent.store.median()
        if median is not None and parent.range.low < median < parent.range.high:
            return median
    return parent.range.midpoint()


def add_child(
    net: "BatonNetwork",
    parent: BatonPeer,
    side: str,
    peer: Optional[BatonPeer] = None,
) -> BatonPeer:
    """Attach a new (or rejoining) peer as ``parent``'s ``side`` child.

    Performs the §III-A acceptance: range/content split, adjacent-link
    splice, and the full table update protocol.  ``peer`` is provided when a
    load-balancing victim rejoins with its existing address; otherwise a
    fresh peer is created.
    """
    if parent.child_on(side) is not None:
        raise ProtocolError(f"{parent.position} already has a {side} child")
    child_position = (
        parent.position.left_child() if side == LEFT else parent.position.right_child()
    )

    # --- range and content split -----------------------------------------
    pivot = choose_split_pivot(net, parent)
    if side == LEFT:
        child_range, parent_range = parent.range.split_at(pivot)
        moved_keys = parent.store.split_below(pivot)
    else:
        parent_range, child_range = parent.range.split_at(pivot)
        moved_keys = parent.store.split_at_or_above(pivot)

    if peer is None:
        peer = BatonPeer(net.alloc.allocate(), child_position, child_range)
    else:
        peer.move_to(child_position)
        peer.range = child_range
    parent.range = parent_range
    peer.store.extend(moved_keys)

    net.register_peer(peer)
    transfer: dict[str, int] = {"keys": len(moved_keys)}
    if parent.subscriptions:
        # Subscription entries covering the handed-off half travel with it.
        from repro.pubsub.subscribe import transfer_subscriptions

        moved_subs = transfer_subscriptions(net, parent, peer)
        if moved_subs:
            transfer["subs"] = moved_subs
    net.count_message(
        parent.address, peer.address, MsgType.JOIN_TRANSFER, **transfer
    )

    # --- parent/child links ------------------------------------------------
    parent.set_child(side, peer.snapshot())
    peer.parent = parent.snapshot()

    # --- adjacent links ------------------------------------------------------
    far_adjacent = parent.adjacent_on(side)
    if side == LEFT:
        peer.left_adjacent = far_adjacent.copy() if far_adjacent else None
        peer.right_adjacent = parent.snapshot()
        parent.left_adjacent = peer.snapshot()
    else:
        peer.right_adjacent = far_adjacent.copy() if far_adjacent else None
        peer.left_adjacent = parent.snapshot()
        parent.right_adjacent = peer.snapshot()
    if far_adjacent is not None:
        # The one message the new node itself sends (the paper's "+1").
        try_message(net, peer.address, far_adjacent.address, MsgType.TABLE_UPDATE)
        far_peer = net.peers.get(far_adjacent.address)
        if far_peer is not None:
            if side == LEFT:
                far_peer.right_adjacent = peer.snapshot()
            else:
                far_peer.left_adjacent = peer.snapshot()

    # --- sibling table entries (the parent's other child) ---------------------
    sibling_info = parent.child_on(RIGHT if side == LEFT else LEFT)
    if sibling_info is not None and try_message(
        net, parent.address, sibling_info.address, MsgType.TABLE_UPDATE
    ):
        sibling = net.peer(sibling_info.address)
        sibling.set_table_entry(peer.snapshot())
        sibling.update_link_info(parent.snapshot())
        net.count_message(sibling.address, peer.address, MsgType.RESPONSE)
        peer.set_table_entry(sibling.snapshot())

    # --- sideways tables via the parent's neighbours ----------------------------
    _fill_child_tables(net, parent, peer)

    # --- remaining stale links about the parent (range shrank) ------------------
    _refresh_parent_periphery(net, parent, exclude={peer.address})
    return peer


def _fill_child_tables(net: "BatonNetwork", parent: BatonPeer, child: BatonPeer) -> None:
    """Table update relay of §III-A.

    For every valid slot of the child's tables, Theorem 2 locates the slot
    occupant's parent inside *our* parent's tables; the parent messages that
    neighbour (carrying its own fresh snapshot), the neighbour relays to its
    bordering child, and that child replies to the new node.  Both ends
    record each other.
    """
    sibling_position = child.position.sibling()
    contacted: dict[Address, BatonPeer] = {}
    for side in (LEFT, RIGHT):
        table = child.table_on(side)
        for index in table.valid_indices():
            slot = table.position_at(index)
            if slot is None or slot == sibling_position:
                continue
            parent_slot = slot.parent()
            table_slot = parent.table_slot_for(parent_slot)
            if table_slot is None:
                continue
            w_side, w_index = table_slot
            w_info = parent.table_on(w_side).get(w_index)
            if w_info is None:
                continue  # no parent over there, hence no occupant (Theorem 2)
            w_peer = contacted.get(w_info.address)
            if w_peer is None:
                # Parent -> neighbour: announce the new child; the neighbour
                # also refreshes what it knows about the parent.
                if not try_message(
                    net, parent.address, w_info.address, MsgType.TABLE_UPDATE
                ):
                    continue  # neighbour died concurrently; repair fills in
                w_peer = net.peer(w_info.address)
                w_peer.update_link_info(parent.snapshot())
                contacted[w_info.address] = w_peer
            occupant = None
            if w_peer.left_child is not None and w_peer.left_child.position == slot:
                occupant = w_peer.left_child.address
            elif w_peer.right_child is not None and w_peer.right_child.position == slot:
                occupant = w_peer.right_child.address
            if occupant is None:
                continue  # slot itself is unoccupied
            # Neighbour -> its child: "add the new node to your table".
            if not try_message(net, w_peer.address, occupant, MsgType.TABLE_UPDATE):
                continue
            c_peer = net.peer(occupant)
            c_peer.set_table_entry(child.snapshot())
            # Child of neighbour -> new node: reply with its coordinates.
            net.count_message(occupant, child.address, MsgType.RESPONSE)
            child.set_table_entry(c_peer.snapshot())
    # Any remaining sideways neighbour of the parent that the relay did not
    # touch still holds the parent's old range/children: refresh them.
    for side in (LEFT, RIGHT):
        for _, info in parent.table_on(side).occupied():
            if info.address in contacted:
                continue
            receiver = net.peers.get(info.address)
            if receiver is None:
                continue

            def apply(receiver: BatonPeer = receiver) -> None:
                receiver.update_link_info(parent.snapshot())

            net.updates.notify(
                parent.address, info.address, MsgType.TABLE_UPDATE, apply
            )


def _refresh_parent_periphery(
    net: "BatonNetwork", parent: BatonPeer, exclude: set[Address]
) -> None:
    """Refresh the parent's parent and far adjacent after the range split."""
    targets: list[NodeInfo] = []
    if parent.parent is not None:
        targets.append(parent.parent)
    for info in (parent.left_adjacent, parent.right_adjacent):
        if info is not None:
            targets.append(info)
    snapshot = parent.snapshot()
    seen: set[Address] = set(exclude)
    for info in targets:
        if info.address in seen or info.address == parent.address:
            continue
        seen.add(info.address)
        receiver = net.peers.get(info.address)
        if receiver is None:
            continue

        def apply(receiver: BatonPeer = receiver) -> None:
            receiver.update_link_info(snapshot)

        net.updates.notify(
            parent.address, info.address, MsgType.TABLE_UPDATE, apply
        )
