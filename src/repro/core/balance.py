"""Load balancing (§IV-D): adjacent data shifts and leaf rejoins.

A peer is overloaded when its store exceeds the configured capacity.

* A **non-leaf** peer only balances with its adjacent nodes: it shifts part
  of its keys across the shared range boundary (cheap, and its adjacents are
  its in-order neighbours so the partition stays contiguous).
* A **leaf** first tries the same adjacent shift; if both adjacents are
  themselves loaded, it recruits a *lightly loaded leaf* found by probing
  through its routing tables.  The recruit hands its range and keys to its
  own right adjacent, departs (with a forced restructuring shift if its
  departure would unbalance the tree), and rejoins as a child of the
  overloaded peer, taking half its content — again with forced
  restructuring when Theorem 1 would be violated.

The paper's claim, which Figures 8(g) and 8(h) quantify: shifts are short
with exponentially decaying length, and the amortized cost per insertion is
O(log N).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.core.links import LEFT, RIGHT, NodeInfo
from repro.core.peer import BatonPeer
from repro.core.results import BalanceEvent
from repro.net.address import Address
from repro.net.bus import Trace
from repro.net.message import MsgType

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork, LoadBalanceConfig


@dataclass
class BalanceOutcome:
    """What a balancing episode did (internal; summarised in BalanceEvent)."""

    kind: str
    trace: Trace
    shift_size: int = 0


def maybe_balance(net: "BatonNetwork", address: Address) -> Optional[BalanceOutcome]:
    """Run one §IV-D balancing episode if the peer is overloaded.

    A peer whose last balancing attempt found nothing to do (all neighbours
    loaded, no light recruit) backs off until its store has grown another
    ~10%: retrying on every insert would turn the probe traffic itself into
    the hot-spot.
    """
    config = net.config.balance
    if not config.enabled:
        return None
    peer = net.peers.get(address)
    if peer is None or len(peer.store) <= config.capacity:
        return None
    stuck_at = net._balance_backoff.get(address)
    if stuck_at is not None and len(peer.store) < 1.1 * stuck_at:
        return None
    with net.open_trace("balance") as trace:
        if not peer.is_leaf:
            kind, shift = _balance_with_adjacent(net, peer, config), 0
        else:
            kind = _balance_with_adjacent(net, peer, config)
            shift = 0
            if kind is None and config.allow_rejoin:
                rejoin = _balance_by_rejoin(net, peer, config)
                if rejoin is not None:
                    kind, shift = "rejoin", rejoin
    if kind is None:
        net._balance_backoff[address] = len(peer.store)
        return None
    net._balance_backoff.pop(address, None)
    outcome = BalanceOutcome(kind=kind, trace=trace, shift_size=shift)
    net.stats.balance_events.append(
        BalanceEvent(kind=kind, messages=trace.total, shift_size=shift)
    )
    return outcome


# ---------------------------------------------------------------------------
# Adjacent-node balancing
# ---------------------------------------------------------------------------


def _balance_with_adjacent(
    net: "BatonNetwork", peer: BatonPeer, config: "LoadBalanceConfig"
) -> Optional[str]:
    """Shift keys across a range boundary to a lighter adjacent node."""
    best: Optional[tuple[int, str, BatonPeer]] = None
    for side in (RIGHT, LEFT):
        info = peer.adjacent_on(side)
        if info is None:
            continue
        neighbor = net.peers.get(info.address)
        if neighbor is None:
            continue
        net.count_message(peer.address, info.address, MsgType.BALANCE)  # load probe
        headroom = int(config.absorb_factor * config.capacity) - len(neighbor.store)
        if headroom <= 0:
            continue
        if best is None or headroom > best[0]:
            best = (headroom, side, neighbor)
    if best is None:
        return None
    headroom, side, neighbor = best
    surplus = (len(peer.store) - len(neighbor.store)) // 2
    amount = min(surplus, headroom)
    if amount <= 0:
        return None
    moved = _shift_keys(net, peer, neighbor, side, amount)
    if moved == 0:
        return None
    return "adjacent"


def _shift_keys(
    net: "BatonNetwork",
    donor: BatonPeer,
    receiver: BatonPeer,
    side: str,
    amount: int,
) -> int:
    """Move ~``amount`` boundary keys from donor to its ``side`` adjacent.

    The boundary between the two ranges moves with the keys; duplicates are
    never split across the boundary.  Returns the number of keys moved.
    """
    keys = list(donor.store)
    if side == RIGHT:
        index = len(keys) - amount
        while index > 0 and keys[index - 1] == keys[index]:
            index -= 1
        if index <= 0:
            return 0  # all duplicates: cannot place a boundary
        moved = keys[index:]
        boundary = moved[0]
        if boundary <= donor.range.low:
            return 0
        for key in moved:
            donor.store.delete(key)
        receiver.store.extend(moved)
        donor.range, handed = donor.range.split_at(boundary)
        receiver.range = receiver.range.merge(handed)
    else:
        index = amount
        while index < len(keys) and keys[index] == keys[index - 1]:
            index += 1
        if index >= len(keys):
            return 0
        moved = keys[:index]
        boundary = moved[-1] + 1
        if boundary >= donor.range.high:
            return 0
        for key in moved:
            donor.store.delete(key)
        receiver.store.extend(moved)
        handed, donor.range = donor.range.split_at(boundary)
        receiver.range = receiver.range.merge(handed)
    shift: dict[str, int] = {"keys": len(moved)}
    if donor.subscriptions:
        # The boundary moved: subscriptions covering the handed slice follow.
        from repro.pubsub.subscribe import transfer_subscriptions

        moved_subs = transfer_subscriptions(net, donor, receiver)
        if moved_subs:
            shift["subs"] = moved_subs
    net.count_message(
        donor.address, receiver.address, MsgType.BALANCE, **shift
    )
    # Both ranges changed: linkers of both peers must refresh.
    net.broadcast_update(donor, mtype=MsgType.TABLE_UPDATE)
    net.broadcast_update(receiver, mtype=MsgType.TABLE_UPDATE)
    return len(moved)


# ---------------------------------------------------------------------------
# Remote-leaf rejoin balancing
# ---------------------------------------------------------------------------


def _balance_by_rejoin(
    net: "BatonNetwork", overloaded: BatonPeer, config: "LoadBalanceConfig"
) -> Optional[int]:
    """Recruit a lightly loaded leaf to share the overloaded leaf's load.

    Returns the forced-restructuring shift size, or None if no recruit was
    found within the probe budget.
    """
    if not overloaded.range.can_split:
        # A width-1 range cannot hand half of itself to the recruit; raising
        # mid-episode would strand the recruit after it departed its slot.
        return None
    victim = _probe_for_light_leaf(net, overloaded, config)
    if victim is None:
        return None

    from repro.core import leave as leave_protocol
    from repro.core import restructure as restructure_protocol

    # The recruit hands its range and keys to its right adjacent, then
    # leaves its slot (shifting the tree if its departure is unsafe).
    shift = 0
    if leave_protocol.can_depart_simply(victim):
        detached = leave_protocol.depart_leaf(
            net, victim, content_target="right_adjacent"
        )
    else:
        shift += restructure_protocol.depart_with_restructure(
            net, victim, content_target="right_adjacent"
        )
        detached = victim
    # ... and rejoins as a child of the overloaded peer, taking half its
    # content; forced restructuring may shift the tree again.
    side = LEFT if overloaded.child_on(LEFT) is None else RIGHT
    shift += restructure_protocol.forced_add_child(net, overloaded, side, detached)
    return shift


def _probe_for_light_leaf(
    net: "BatonNetwork", overloaded: BatonPeer, config: "LoadBalanceConfig"
) -> Optional[BatonPeer]:
    """Probe sideways-table neighbours (and their children) for a light leaf.

    The paper's footnote: neighbour tables suffice to find *a* lighter
    loaded node, even if not the lightest.  Each probe is one message.
    """
    threshold = max(1, int(config.low_watermark * config.capacity))
    candidates: List[NodeInfo] = []
    for side in (LEFT, RIGHT):
        for _, info in overloaded.table_on(side).occupied():
            candidates.append(info)
    probes = 0
    seen: set[Address] = {overloaded.address}
    queue = list(candidates)
    while queue and probes < config.probe_limit:
        info = queue.pop(0)
        if info.address in seen:
            continue
        seen.add(info.address)
        target = net.peers.get(info.address)
        if target is None:
            continue
        net.count_message(overloaded.address, info.address, MsgType.BALANCE)
        probes += 1
        if (
            target.is_leaf
            and len(target.store) < threshold
            and target.parent is not None
            and not _bad_recruit(overloaded, target)
        ):
            return target
        for child in (target.left_child, target.right_child):
            if child is not None and child.address not in seen:
                queue.append(child)
    return None


def _bad_recruit(overloaded: BatonPeer, candidate: BatonPeer) -> bool:
    """Recruits whose hand-over would interact with the overloaded peer.

    A candidate that is one of the overloaded peer's adjacents — or whose
    own right adjacent *is* the overloaded peer — would hand its keys right
    back into the hot spot; the probe skips those, there are plenty of other
    leaves.
    """
    adjacents = {
        info.address
        for info in (overloaded.left_adjacent, overloaded.right_adjacent)
        if info is not None
    }
    if candidate.address in adjacents:
        return True
    return (
        candidate.right_adjacent is not None
        and candidate.right_adjacent.address == overloaded.address
    )
