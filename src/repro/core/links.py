"""Links between peers: remote-node snapshots and sideways routing tables.

A *link* is what one peer knows about another: its physical address, its
logical position, the range it currently manages, and the addresses of its
children.  The paper is explicit that routing-table entries carry this extra
information beyond the bare IP address (§III) — search needs the ranges, and
the join algorithm needs to know which neighbours lack children.

The two sideways routing tables hold links to same-level nodes at distances
``2^i``.  An *in-range* slot with no occupant holds ``None`` ("an entry is
still made ... but marked as null"); slots beyond the level's number range
(``number ± 2^i`` outside ``[1, 2^L]``) do not exist at all.  A table is
*full* when every existing slot is non-null — the local condition behind
Theorem 1's balance guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.ids import Position
from repro.core.ranges import Range
from repro.net.address import Address

LEFT = "left"
RIGHT = "right"


@lru_cache(maxsize=1 << 16)
def _table_slots(level: int, number: int, side: str) -> Tuple[Position, ...]:
    """The valid sideways slots of a table, nearest first.

    Slot geometry depends only on the owner's (level, number) and the
    side, and :class:`Position` is immutable — so the tuple is computed
    once per distinct owner slot and shared by every table built there
    (tables are rebuilt wholesale on refresh sweeps; at N=10k peers this
    is one of the hottest constructors in the reconcile path).
    """
    owner = Position(level, number)
    slots = []
    i = 0
    while True:
        slot = owner.table_position(side, i)
        if slot is None:
            return tuple(slots)
        slots.append(slot)
        i += 1


@dataclass
class NodeInfo:
    """One peer's view of a remote peer.

    Mutable on purpose: link owners update these snapshots when the remote
    peer notifies them of a change (range move, new child, replacement).
    """

    address: Address
    position: Position
    range: Range
    left_child: Optional[Address] = None
    right_child: Optional[Address] = None

    @property
    def has_both_children(self) -> bool:
        return self.left_child is not None and self.right_child is not None

    @property
    def has_any_child(self) -> bool:
        return self.left_child is not None or self.right_child is not None

    def copy(self) -> "NodeInfo":
        """An independent snapshot (links must not be aliased across peers).

        Built by direct construction — ``dataclasses.replace`` re-runs the
        field machinery and dominated reconcile profiles at N=10k.
        """
        return NodeInfo(
            self.address,
            self.position,
            self.range,
            self.left_child,
            self.right_child,
        )

    def __str__(self) -> str:
        return f"peer@{self.address}{self.position}{self.range}"


@dataclass
class RoutingTable:
    """One sideways routing table (left or right) of a peer.

    ``entries[i]`` describes the node at distance ``2^i`` on this side, or is
    ``None`` if that in-range slot is currently unoccupied.  Only in-range
    indices appear as keys.
    """

    owner: Position
    side: str
    entries: Dict[int, Optional[NodeInfo]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.side not in (LEFT, RIGHT):
            raise ValueError(f"side must be {LEFT!r} or {RIGHT!r}")
        # The owner position is frozen for the table's lifetime (peers get a
        # fresh table when they move), so the slot geometry is shared via
        # the module-level cache rather than recomputed per table.
        slots = _table_slots(self.owner.level, self.owner.number, self.side)
        self._slots: Tuple[Position, ...] = slots
        self._valid_indices: List[int] = list(range(len(slots)))
        for index in self._valid_indices:
            self.entries.setdefault(index, None)
        extraneous = set(self.entries) - set(self._valid_indices)
        if extraneous:
            raise ValueError(f"indices {extraneous} out of range for {self.owner}")

    # -- geometry -----------------------------------------------------------

    def valid_indices(self) -> List[int]:
        """Indices i whose slot ``number ± 2^i`` exists at this level."""
        return self._valid_indices

    def position_at(self, index: int) -> Optional[Position]:
        """The slot at distance ``2^index``, or None when out of range."""
        slots = self._slots
        return slots[index] if 0 <= index < len(slots) else None

    # -- access ---------------------------------------------------------------

    def get(self, index: int) -> Optional[NodeInfo]:
        return self.entries.get(index)

    def set(self, index: int, info: Optional[NodeInfo]) -> None:
        if self.position_at(index) is None:
            raise ValueError(
                f"index {index} out of range for {self.side} table of {self.owner}"
            )
        if info is not None and info.position != self.position_at(index):
            raise ValueError(
                f"entry position {info.position} does not match slot "
                f"{self.position_at(index)}"
            )
        self.entries[index] = info

    def occupied(self) -> Iterator[tuple[int, NodeInfo]]:
        """(index, link) pairs for every non-null entry, nearest first.

        Iterates the cached slot geometry (0..k-1) rather than sorting the
        entry dict's keys on every call — this is on the hot path of both
        routing and reconcile sweeps.
        """
        entries = self.entries
        for index in self._valid_indices:
            info = entries[index]
            if info is not None:
                yield index, info

    def addresses(self) -> List[Address]:
        """Addresses of all linked neighbours on this side."""
        return [info.address for _, info in self.occupied()]

    # -- paper-level predicates -----------------------------------------------

    def is_full(self) -> bool:
        """All in-range slots occupied (the Theorem 1 condition)."""
        return all(self.entries[index] is not None for index in self._valid_indices)

    def first_missing_index(self) -> Optional[int]:
        """Smallest in-range index with a null entry, if any."""
        entries = self.entries
        for index in self._valid_indices:
            if entries[index] is None:
                return index
        return None

    def nodes_missing_children(self) -> List[NodeInfo]:
        """Linked neighbours that do not yet have both children."""
        return [info for _, info in self.occupied() if not info.has_both_children]

    def nodes_with_children(self) -> List[NodeInfo]:
        """Linked neighbours that have at least one child."""
        return [info for _, info in self.occupied() if info.has_any_child]

    def farthest_satisfying(
        self, predicate: Callable[[NodeInfo], bool]
    ) -> Optional[NodeInfo]:
        """The farthest linked neighbour passing ``predicate`` (search step).

        "Farthest" is by table index, i.e. by distance ``2^i`` along the
        level, exactly the greedy step of the exact-match algorithm.
        """
        entries = self.entries
        for index in reversed(self._valid_indices):
            info = entries[index]
            if info is not None and predicate(info):
                return info
        return None

    def entry_for_address(self, address: Address) -> Optional[tuple[int, NodeInfo]]:
        """Locate the entry linking to ``address``, if present."""
        entries = self.entries
        for index in self._valid_indices:
            info = entries[index]
            if info is not None and info.address == address:
                return index, info
        return None
