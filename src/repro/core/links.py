"""Links between peers: remote-node snapshots and sideways routing tables.

A *link* is what one peer knows about another: its physical address, its
logical position, the range it currently manages, and the addresses of its
children.  The paper is explicit that routing-table entries carry this extra
information beyond the bare IP address (§III) — search needs the ranges, and
the join algorithm needs to know which neighbours lack children.

The two sideways routing tables hold links to same-level nodes at distances
``2^i``.  An *in-range* slot with no occupant holds ``None`` ("an entry is
still made ... but marked as null"); slots beyond the level's number range
(``number ± 2^i`` outside ``[1, 2^L]``) do not exist at all.  A table is
*full* when every existing slot is non-null — the local condition behind
Theorem 1's balance guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.ids import Position, _interned
from repro.core.ranges import Range
from repro.net.address import Address

LEFT = "left"
RIGHT = "right"


@lru_cache(maxsize=1 << 16)
def _table_slots(level: int, number: int, side: str) -> Tuple[Position, ...]:
    """The valid sideways slots of a table, nearest first.

    Slot geometry depends only on the owner's (level, number) and the
    side, and :class:`Position` is immutable — so the tuple is computed
    once per distinct owner slot and shared by every table built there
    (tables are rebuilt wholesale on refresh sweeps; at N=10k peers this
    is one of the hottest constructors in the reconcile path).
    """
    slots = []
    distance = 1
    if side == LEFT:
        while number - distance >= 1:
            slots.append(_interned(level, number - distance))
            distance <<= 1
    elif side == RIGHT:
        cap = 1 << level
        while number + distance <= cap:
            slots.append(_interned(level, number + distance))
            distance <<= 1
    else:
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    return tuple(slots)


@dataclass(slots=True)
class NodeInfo:
    """One peer's view of a remote peer.

    Mutable on purpose: link owners update these snapshots when the remote
    peer notifies them of a change (range move, new child, replacement).
    Slotted: a 100k-peer network holds on the order of N·log N of these
    (every routing-table row is one), so the per-instance dict is the
    single largest memory line item the scale profile sees.
    """

    address: Address
    position: Position
    range: Range
    left_child: Optional[Address] = None
    right_child: Optional[Address] = None

    def __getstate__(self) -> tuple:
        # Explicit pickle path: the generic slotted-dataclass reduce walks
        # dataclasses.fields() per instance, which dominates snapshot
        # restore time at N=10k (one NodeInfo per routing-table row).
        return (
            self.address,
            self.position,
            self.range,
            self.left_child,
            self.right_child,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.address,
            self.position,
            self.range,
            self.left_child,
            self.right_child,
        ) = state

    @property
    def has_both_children(self) -> bool:
        return self.left_child is not None and self.right_child is not None

    @property
    def has_any_child(self) -> bool:
        return self.left_child is not None or self.right_child is not None

    def copy(self) -> "NodeInfo":
        """An independent snapshot (links must not be aliased across peers).

        Built by direct construction — ``dataclasses.replace`` re-runs the
        field machinery and dominated reconcile profiles at N=10k.
        """
        return NodeInfo(
            self.address,
            self.position,
            self.range,
            self.left_child,
            self.right_child,
        )

    def __str__(self) -> str:
        return f"peer@{self.address}{self.position}{self.range}"


#: Shared index ranges for the dense tables below: a table with k slots
#: always iterates 0..k-1, and k only varies with the owner's level, so
#: one range object per distinct k serves every table in the network.
@lru_cache(maxsize=64)
def _index_range(n: int) -> range:
    return range(n)


class RoutingTable:
    """One sideways routing table (left or right) of a peer.

    ``entries[i]`` describes the node at distance ``2^i`` on this side, or is
    ``None`` if that in-range slot is currently unoccupied.  ``entries`` is a
    dense list over exactly the in-range indices (slot geometry is fixed by
    the owner position): at 100k peers there are ~200k tables averaging
    log N rows each, and a dict per table was the second-largest line item
    in the memory profile after the row snapshots themselves.
    """

    __slots__ = ("owner", "side", "entries", "_slots_cache", "_valid_indices")

    def __init__(self, owner: Position, side: str):
        # The slot *count* is pure arithmetic — #{i : number ± 2^i stays in
        # [1, 2^level]} — so construction never materialises the slot
        # positions; ``_slots`` builds them on first geometry lookup.  At
        # 100k peers that makes table construction O(1) per table, which
        # cut bulk-build wall-clock by almost half.
        if side == LEFT:
            width = (owner.number - 1).bit_length()
        elif side == RIGHT:
            width = ((1 << owner.level) - owner.number).bit_length()
        else:
            raise ValueError(f"side must be {LEFT!r} or {RIGHT!r}")
        self.owner = owner
        self.side = side
        self._slots_cache: Optional[Tuple[Position, ...]] = None
        self._valid_indices: range = _index_range(width)
        self.entries: List[Optional[NodeInfo]] = [None] * width

    @property
    def _slots(self) -> Tuple[Position, ...]:
        cached = self._slots_cache
        if cached is None:
            cached = self._slots_cache = _table_slots(
                self.owner.level, self.owner.number, self.side
            )
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutingTable):
            return NotImplemented
        return (
            self.owner == other.owner
            and self.side == other.side
            and self.entries == other.entries
        )

    def __repr__(self) -> str:
        return (
            f"RoutingTable(owner={self.owner!r}, side={self.side!r}, "
            f"entries={self.entries!r})"
        )

    # -- geometry -----------------------------------------------------------

    def valid_indices(self) -> range:
        """Indices i whose slot ``number ± 2^i`` exists at this level."""
        return self._valid_indices

    def position_at(self, index: int) -> Optional[Position]:
        """The slot at distance ``2^index``, or None when out of range."""
        slots = self._slots
        return slots[index] if 0 <= index < len(slots) else None

    # -- access ---------------------------------------------------------------

    def get(self, index: int) -> Optional[NodeInfo]:
        entries = self.entries
        return entries[index] if 0 <= index < len(entries) else None

    def set(self, index: int, info: Optional[NodeInfo]) -> None:
        if self.position_at(index) is None:
            raise ValueError(
                f"index {index} out of range for {self.side} table of {self.owner}"
            )
        if info is not None and info.position != self.position_at(index):
            raise ValueError(
                f"entry position {info.position} does not match slot "
                f"{self.position_at(index)}"
            )
        self.entries[index] = info

    def occupied(self) -> Iterator[tuple[int, NodeInfo]]:
        """(index, link) pairs for every non-null entry, nearest first.

        Iterates the cached slot geometry (0..k-1) rather than sorting the
        entry dict's keys on every call — this is on the hot path of both
        routing and reconcile sweeps.
        """
        entries = self.entries
        for index in self._valid_indices:
            info = entries[index]
            if info is not None:
                yield index, info

    def addresses(self) -> List[Address]:
        """Addresses of all linked neighbours on this side."""
        return [info.address for _, info in self.occupied()]

    # -- paper-level predicates -----------------------------------------------

    def is_full(self) -> bool:
        """All in-range slots occupied (the Theorem 1 condition)."""
        return None not in self.entries

    def first_missing_index(self) -> Optional[int]:
        """Smallest in-range index with a null entry, if any."""
        entries = self.entries
        for index in self._valid_indices:
            if entries[index] is None:
                return index
        return None

    def nodes_missing_children(self) -> List[NodeInfo]:
        """Linked neighbours that do not yet have both children."""
        return [info for _, info in self.occupied() if not info.has_both_children]

    def nodes_with_children(self) -> List[NodeInfo]:
        """Linked neighbours that have at least one child."""
        return [info for _, info in self.occupied() if info.has_any_child]

    def farthest_satisfying(
        self, predicate: Callable[[NodeInfo], bool]
    ) -> Optional[NodeInfo]:
        """The farthest linked neighbour passing ``predicate`` (search step).

        "Farthest" is by table index, i.e. by distance ``2^i`` along the
        level, exactly the greedy step of the exact-match algorithm.
        """
        entries = self.entries
        for index in reversed(self._valid_indices):
            info = entries[index]
            if info is not None and predicate(info):
                return info
        return None

    def entry_for_address(self, address: Address) -> Optional[tuple[int, NodeInfo]]:
        """Locate the entry linking to ``address``, if present."""
        entries = self.entries
        for index in self._valid_indices:
            info = entries[index]
            if info is not None and info.address == address:
                return index, info
        return None
