"""Node departure: Algorithm 2 and the graceful-leave protocol (§III-B).

A leaf whose departure cannot unbalance the tree — no sideways neighbour has
children, so Theorem 1 keeps holding — leaves directly: content and range go
to its parent, adjacent links are spliced, LEAVE notices null the entries in
its neighbours' tables (≤ 2·L2 + 2·L1 + 2 messages total).

Any other node must find a *replacement*: a FINDREPLACEMENT request descends
(children first, else a sideways neighbour's child) to a deepest leaf whose
own departure is safe.  That leaf leaves its slot the simple way, then takes
over the departing node's position, address change broadcast to everyone who
linked to it (≤ 8·log N messages).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.links import LEFT, RIGHT
from repro.core.peer import BatonPeer
from repro.core.results import LeaveResult
from repro.net.address import Address
from repro.net.message import MsgType
from repro.util.errors import PeerNotFoundError, ProtocolError

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def can_depart_simply(peer: BatonPeer) -> bool:
    """Theorem 1's safe-departure test: a leaf with child-free neighbours."""
    if not peer.is_leaf:
        return False
    return not peer.left_table.nodes_with_children() and not (
        peer.right_table.nodes_with_children()
    )


def leave(net: "BatonNetwork", address: Address) -> LeaveResult:
    """Gracefully remove the peer at ``address`` from the overlay."""
    departing = net.peer(address)
    if net.size == 1:
        with net.open_trace("leave.update") as update_trace:
            net.unregister_peer(address)
        return LeaveResult(
            departed=address,
            replacement=None,
            find_trace=net.new_trace("leave.find"),
            update_trace=update_trace,
        )

    if can_depart_simply(departing):
        with net.open_trace("leave.update") as update_trace:
            depart_leaf(net, departing, content_target="parent")
        return LeaveResult(
            departed=address,
            replacement=None,
            find_trace=net.new_trace("leave.find"),
            update_trace=update_trace,
        )

    with net.open_trace("leave.find") as find_trace:
        replacement_address = find_replacement(net, departing)
    with net.open_trace("leave.update") as update_trace:
        replacement = net.peer(replacement_address)
        if not can_depart_simply(replacement):
            raise ProtocolError(
                f"replacement {replacement.position} cannot depart safely"
            )
        depart_leaf(net, replacement, content_target="parent")
        transplant(net, departing, replacement)
    return LeaveResult(
        departed=address,
        replacement=replacement_address,
        find_trace=find_trace,
        update_trace=update_trace,
    )


def find_replacement(net: "BatonNetwork", departing: BatonPeer) -> Address:
    """Algorithm 2: locate a deepest leaf that can safely move."""
    start = replacement_entry_point(net, departing)
    limit = 4 * max(net.size.bit_length(), 2) + 32
    current = start
    for _ in range(limit):
        peer = net.peer(current)
        next_hop: Optional[Address] = None
        if peer.left_child is not None:
            next_hop = peer.left_child.address
        elif peer.right_child is not None:
            next_hop = peer.right_child.address
        else:
            with_children = (
                peer.left_table.nodes_with_children()
                + peer.right_table.nodes_with_children()
            )
            if with_children:
                nearest = min(
                    with_children,
                    key=lambda info: abs(
                        info.position.number - peer.position.number
                    ),
                )
                next_hop = nearest.left_child or nearest.right_child
            else:
                return current
        if next_hop is None:
            raise ProtocolError("replacement walk lost its target")
        net.count_message(current, next_hop, MsgType.LEAVE_FIND)
        current = next_hop
    raise ProtocolError("replacement search did not terminate")


def replacement_entry_point(net: "BatonNetwork", departing: BatonPeer) -> Address:
    """Where the FINDREPLACEMENT request is first sent."""
    if departing.is_leaf:
        with_children = (
            departing.left_table.nodes_with_children()
            + departing.right_table.nodes_with_children()
        )
        if not with_children:
            raise ProtocolError("leaf with safe departure needs no replacement")
        nearest = min(
            with_children,
            key=lambda info: abs(info.position.number - departing.position.number),
        )
        target = nearest.left_child or nearest.right_child
        if target is None:
            raise ProtocolError("neighbour advertises children it does not have")
        net.count_message(departing.address, target, MsgType.LEAVE_FIND)
        return target
    # Internal node: descend through the adjacent node inside our own
    # subtree ("a leaf node, or as deep as possible").
    if departing.left_child is not None and departing.left_adjacent is not None:
        target = departing.left_adjacent.address
    elif departing.right_child is not None and departing.right_adjacent is not None:
        target = departing.right_adjacent.address
    else:
        raise ProtocolError(f"internal node {departing.position} has no adjacent")
    net.count_message(departing.address, target, MsgType.LEAVE_FIND)
    return target


def depart_leaf(
    net: "BatonNetwork",
    leaf: BatonPeer,
    content_target: str,
) -> BatonPeer:
    """Remove a safely-departing leaf from the overlay.

    ``content_target`` names who absorbs the leaf's range and keys:
    ``"parent"`` for the standard graceful leave, ``"right_adjacent"`` /
    ``"left_adjacent"`` for the load-balancing hand-off of §IV-D, or
    ``"none"`` when a failed peer's content is already lost (§III-C).
    Returns the detached peer object (links cleared, address retained).
    """
    if leaf.parent is None:
        raise ProtocolError("the last peer cannot depart via this path")
    parent = net.peer(leaf.parent.address)
    side = LEFT if leaf.position.is_left_child else RIGHT

    _hand_over_content(net, leaf, content_target)

    # Splice adjacent links: the leaf's far adjacent now borders the parent
    # on the vacated side (the near adjacent *is* the parent for a leaf).
    far = leaf.adjacent_on(side)
    parent.set_child(side, None)
    if content_target != "parent":
        # The parent still needs to hear about the departure (child link).
        net.count_message(leaf.address, parent.address, MsgType.LEAVE_TRANSFER)
    parent.set_adjacent(side, far.copy() if far is not None else None)
    if far is not None:
        try:
            net.count_message(leaf.address, far.address, MsgType.LEAVE_TRANSFER)
        except PeerNotFoundError:
            pass  # the far adjacent failed; repair will reconnect it
        far_peer = net.peers.get(far.address)
        if far_peer is not None:
            opposite = RIGHT if side == LEFT else LEFT
            far_peer.set_adjacent(opposite, parent.snapshot())

    # LEAVE notices to sideways neighbours: null their entry for our slot.
    position = leaf.position
    for table_side in (LEFT, RIGHT):
        for _, info in leaf.table_on(table_side).occupied():
            receiver = net.peers.get(info.address)
            if receiver is None:
                continue

            def apply(receiver: BatonPeer = receiver) -> None:
                receiver.clear_table_entry(position)

            net.updates.notify(
                leaf.address, info.address, MsgType.LEAVE_TRANSFER, apply
            )

    # The parent announces its new content/children to its own linkers.
    net.broadcast_update(parent, exclude={leaf.address})

    detached = net.unregister_peer(leaf.address)
    detached.parent = None
    detached.left_adjacent = None
    detached.right_adjacent = None
    return detached


def _hand_over_content(
    net: "BatonNetwork", leaf: BatonPeer, content_target: str
) -> None:
    """Transfer the departing leaf's range and keys to its absorber."""
    if content_target == "none":
        return
    if content_target == "parent":
        absorber_info = leaf.parent
    elif content_target == "right_adjacent":
        absorber_info = leaf.right_adjacent or leaf.left_adjacent
    elif content_target == "left_adjacent":
        absorber_info = leaf.left_adjacent or leaf.right_adjacent
    else:
        raise ValueError(f"unknown content target {content_target!r}")
    if absorber_info is None:
        raise ProtocolError(f"{leaf.position} has nobody to absorb its range")
    absorber = net.peer(absorber_info.address)
    handover: dict[str, int] = {"keys": len(leaf.store)}
    if leaf.subscriptions:
        # Subscription entries ride the same handover as the keys.
        handover["subs"] = len(leaf.subscriptions)
    net.count_message(
        leaf.address, absorber.address, MsgType.LEAVE_TRANSFER, **handover
    )
    absorber.range = absorber.range.merge(leaf.range)
    absorber.store.extend(leaf.store.clear())
    if leaf.subscriptions:
        from repro.pubsub.subscribe import transfer_subscriptions

        transfer_subscriptions(net, leaf, absorber)
    if absorber_info is not leaf.parent:
        # Range change at a non-parent absorber: its linkers must hear.
        net.broadcast_update(absorber, exclude={leaf.address})


def transplant(net: "BatonNetwork", departing: BatonPeer, replacement: BatonPeer) -> None:
    """The replacement peer assumes the departing peer's position.

    The logical position, range and content stay put; only the physical
    address changes, so every linker of the departing node is told to
    repoint (§III-B's ≤ 8·log N message budget).
    """
    replacement.position = departing.position
    replacement.range = departing.range
    replacement.store = departing.store
    replacement.parent = departing.parent
    replacement.left_child = departing.left_child
    replacement.right_child = departing.right_child
    replacement.left_adjacent = departing.left_adjacent
    replacement.right_adjacent = departing.right_adjacent
    replacement.left_table = departing.left_table
    replacement.right_table = departing.right_table
    # Owner state tied to the range travels too: the subscription table
    # and the dedup window (the position keeps its exactly-once history).
    replacement.subscriptions = departing.subscriptions
    replacement.seen_messages = departing.seen_messages

    net.register_peer(replacement)
    net.unregister_peer(departing.address)
    net.count_message(
        departing.address, replacement.address, MsgType.LEAVE_TRANSFER
    )
    _announce_replacement(net, departing.address, replacement)


def _announce_replacement(
    net: "BatonNetwork", old_address: Address, replacement: BatonPeer
) -> None:
    """Repoint every linker of ``old_address`` at the replacement."""
    snapshot = replacement.snapshot()
    notified: set[Address] = set()
    for _, info in replacement.iter_links():
        if info.address in notified or info.address == replacement.address:
            continue
        notified.add(info.address)
        receiver = net.peers.get(info.address)
        if receiver is None:
            continue

        def apply(receiver: BatonPeer = receiver) -> None:
            receiver.replace_link_address(old_address, snapshot)

        net.updates.notify(
            replacement.address, info.address, MsgType.TABLE_UPDATE, apply
        )
    # The parent's sideways neighbours track the parent's child addresses;
    # the parent re-announces itself to them (the paper's 2·L1 block).
    if replacement.parent is not None:
        parent = net.peers.get(replacement.parent.address)
        if parent is not None:
            parent.replace_link_address(old_address, snapshot)
            # No exclusions: the replacement itself inherited a parent link
            # naming the old address as a child and needs the refresh too.
            net.broadcast_update(parent)
