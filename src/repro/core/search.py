"""Query routing: exact-match and range search (§IV-A, §IV-B).

The exact-match step at a node holding range ``[low, high)`` for value
``v >= high`` is: jump to the *farthest* right-table neighbour whose lower
bound does not exceed ``v``; failing that descend to the right child, else
cross to the right adjacent node (mirror for the left).  Every hop at least
halves the remaining search space, giving O(log N) hops without routing
through the root.

A range query routes like a point query for the first intersecting node,
then expands along adjacent links — O(log N + X) for X covered nodes.

Fault tolerance (§III-D): each step computes an ordered candidate list
(greedy choice first, then nearer sideways entries, child, adjacent, parent);
a hop to a dead peer costs its message and falls through to the next
candidate, which is how queries route around failures while repair runs.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.core import cache as route_cache
from repro.core.links import LEFT, RIGHT
from repro.core.peer import BatonPeer
from repro.core.results import RangeSearchResult, SearchResult
from repro.net.address import Address
from repro.net.message import MsgType
from repro.util.errors import PeerNotFoundError, ProtocolError

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def search_exact(net: "BatonNetwork", start: Address, key: int) -> SearchResult:
    """Route an exact-match query for ``key`` starting at ``start``."""
    with net.open_trace("search.exact") as trace:
        owner = route_to_owner(net, start, key, MsgType.SEARCH)
        peer = net.peer(owner)
        found = peer.range.contains(key) and key in peer.store
    return SearchResult(found=found, owner=owner, trace=trace)


def route_to_owner(
    net: "BatonNetwork", start: Address, key: int, mtype: MsgType
) -> Address:
    """Walk the overlay to the peer whose range covers ``key``.

    Returns the extreme (leftmost/rightmost) peer when ``key`` falls outside
    the covered domain; callers that insert may then expand its range.

    With the hot-range cache enabled (locality extension, default off) the
    entry peer first tries its cached shortcut: a verified hit resolves in
    one direct message, a stale hint is invalidated and the walk continues
    from wherever it landed — never a wrong answer (see
    :mod:`repro.core.cache`).
    """
    limit = hop_limit(net)
    current = start
    cached = net.config.locality.cache_size > 0
    if cached:
        current = route_cache.consult(net, start, key, mtype)
    for _ in range(limit):
        peer = net.peer(current)
        if peer.range.contains(key):
            if cached:
                route_cache.record_route(net, start, peer)
            return current
        primary, fallback = hop_candidates(peer, key)
        if not primary:
            return current  # extreme node; key beyond the covered domain
        next_hop = first_live_hop(net, current, primary + fallback, mtype)
        if next_hop is None:
            if network_degraded(net):
                return current  # marooned next to the failure; best effort
            raise ProtocolError(
                f"all routes from {peer.position} toward {key} are dead"
            )
        current = next_hop
    if network_degraded(net):
        # The owner itself is dead or routing state is still propagating:
        # the query gives up (TTL) and reports the last peer reached.
        return current
    raise ProtocolError(f"search for {key} did not terminate")


def network_degraded(net: "BatonNetwork") -> bool:
    """Whether unrepaired failures or in-flight updates can strand a query."""
    return bool(net.ghosts) or net.updates.deferred or net.updates.pending_count > 0


def hop_limit(net: "BatonNetwork") -> int:
    return 16 * max(net.size.bit_length(), 2) + 64


def hop_candidates(peer: BatonPeer, key: int) -> tuple[List[Address], List[Address]]:
    """Next hops from ``peer`` toward ``key``: (primary, failure fallbacks).

    Primary follows §IV-A — greedy farthest qualifying sideways entry, then
    nearer ones (which only matter when the greedy pick is dead), then the
    child, then the adjacent node.  The parent is never a primary: an
    extreme node with no primary hop *is* the stopping point for an
    out-of-domain key.  It serves only as a §III-D fallback around failures.
    """
    primary: List[Address] = []
    if key >= peer.range.high:
        table, child, adjacent = (
            peer.right_table,
            peer.right_child,
            peer.right_adjacent,
        )
        entries = table.entries
        for index in reversed(table.valid_indices()):
            info = entries[index]
            if info is not None and info.range.low <= key:
                primary.append(info.address)
    else:
        table, child, adjacent = (
            peer.left_table,
            peer.left_child,
            peer.left_adjacent,
        )
        entries = table.entries
        for index in reversed(table.valid_indices()):
            info = entries[index]
            if info is not None and info.range.high > key:
                primary.append(info.address)
    if child is not None:
        primary.append(child.address)
    if adjacent is not None:
        primary.append(adjacent.address)
    fallback: List[Address] = []
    if peer.parent is not None:
        fallback.append(peer.parent.address)
    seen: set[Address] = {peer.address}
    deduped_primary: List[Address] = []
    for address in primary:
        if address not in seen:
            seen.add(address)
            deduped_primary.append(address)
    deduped_fallback = [a for a in fallback if a not in seen]
    return deduped_primary, deduped_fallback


def first_live_hop(
    net: "BatonNetwork",
    current: Address,
    candidates: List[Address],
    mtype: MsgType,
) -> Optional[Address]:
    """Try candidates in order; a hop to a dead peer is paid for and skipped."""
    for candidate in candidates:
        try:
            net.count_message(current, candidate, mtype)
        except PeerNotFoundError:
            continue
        return candidate
    return None


def search_range(
    net: "BatonNetwork", start: Address, low: int, high: int
) -> RangeSearchResult:
    """Route a range query for [low, high) and expand over its owners."""
    if low >= high:
        raise ValueError(f"empty query range [{low}, {high})")
    with net.open_trace("search.range") as trace:
        first = route_to_owner(net, start, low, MsgType.RANGE_SEARCH)
        owners: List[Address] = []
        keys: List[int] = []
        # In a degraded network route_to_owner may give up and report a
        # marooned peer that does not anchor the interval; everything the
        # walk collects from there is suspect, so the answer can never be
        # complete.  A legitimate anchor either owns ``low`` or is the
        # extreme peer on the side of an out-of-domain ``low``.
        complete = False
        anchored = anchors_range(net.peer(first), low)
        current = first
        limit = hop_limit(net) + net.size
        for _ in range(limit):
            peer = net.peer(current)
            if peer.range.low >= high:
                complete = anchored
                break
            owners.append(current)
            keys.extend(peer.store.keys_in(low, high))
            if peer.range.high >= high or peer.right_adjacent is None:
                complete = anchored
                break
            next_hop = peer.right_adjacent.address
            try:
                net.count_message(current, next_hop, MsgType.RANGE_SEARCH)
            except PeerNotFoundError:
                break  # partial answer (complete=False); repair restores the chain
            current = next_hop
    return RangeSearchResult(owners=owners, keys=keys, trace=trace, complete=complete)


def anchors_range(peer: BatonPeer, low: int) -> bool:
    """Whether ``peer`` is a valid starting point for a range walk at ``low``.

    True for the actual owner of ``low`` and for the extreme peers when
    ``low`` falls outside the covered domain (no keys can exist there).
    """
    if peer.range.contains(low):
        return True
    if low < peer.range.low and peer.left_adjacent is None:
        return True
    return low >= peer.range.high and peer.right_adjacent is None
