"""Human-readable views of an overlay: ASCII tree, range map, table dump.

Debugging aids (used by the CLI and handy in tests): none of this is part
of the protocols, and like the invariant checker it may read the global
position map.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.core.ids import Position

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def render_tree(net: "BatonNetwork", max_level: Optional[int] = None) -> str:
    """An indented ASCII rendering of the occupied tree.

    Each line shows ``(level,number) addr=A range=[lo,hi) keys=K`` with
    children indented under their parent.
    """
    if not net.peers:
        return "(empty network)"
    lines: List[str] = []

    def visit(position: Position, depth: int) -> None:
        address = net.occupant(position)
        if address is None:
            return
        if max_level is not None and position.level > max_level:
            return
        peer = net.peers.get(address)
        if peer is None:
            lines.append("  " * depth + f"{position} addr={address} (FAILED)")
            return
        lines.append(
            "  " * depth
            + f"{position} addr={address} range={peer.range} keys={len(peer.store)}"
        )
        visit(position.left_child(), depth + 1)
        visit(position.right_child(), depth + 1)

    visit(Position(0, 1), 0)
    return "\n".join(lines)


def render_range_map(net: "BatonNetwork", width: int = 72) -> str:
    """The in-order partition as a proportional bar plus a legend.

    Each peer owns a slice of the bar sized by its range width; the legend
    lists the slices in key order.  Makes range skew visible at a glance.
    """
    if not net.peers:
        return "(empty network)"
    peers = sorted(net.peers.values(), key=lambda p: p.range.low)
    total = peers[-1].range.high - peers[0].range.low
    if total <= 0:
        return "(degenerate domain)"
    glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    bar: List[str] = []
    for index, peer in enumerate(peers):
        cells = max(1, round(width * peer.range.width / total))
        bar.append(glyphs[index % len(glyphs)] * cells)
    legend = [
        f"  {glyphs[index % len(glyphs)]}: addr={peer.address} {peer.range} "
        f"keys={len(peer.store)}"
        for index, peer in enumerate(peers)
    ]
    return "|" + "".join(bar) + "|\n" + "\n".join(legend)


def render_peer(net: "BatonNetwork", address) -> str:
    """Everything one peer knows: links, tables, store summary."""
    peer = net.peers.get(address)
    if peer is None:
        return f"peer {address} is not alive"
    lines = [
        f"peer addr={peer.address} at {peer.position}",
        f"  range: {peer.range}   keys: {len(peer.store)}",
        f"  parent: {peer.parent}",
        f"  children: L={peer.left_child} R={peer.right_child}",
        f"  adjacent: L={peer.left_adjacent} R={peer.right_adjacent}",
    ]
    for side in ("left", "right"):
        table = peer.table_on(side)
        lines.append(f"  {side} table:")
        if not table.valid_indices():
            lines.append("    (no slots at this position)")
        for index in table.valid_indices():
            entry = table.get(index)
            slot = table.position_at(index)
            lines.append(
                f"    [{index}] slot {slot}: "
                + (str(entry) if entry is not None else "null")
            )
    return "\n".join(lines)


def level_histogram(net: "BatonNetwork") -> str:
    """Peer count per level as an ASCII histogram."""
    from collections import Counter

    counts = Counter(peer.position.level for peer in net.peers.values())
    if not counts:
        return "(empty network)"
    widest = max(counts.values())
    lines = []
    for level in sorted(counts):
        bar = "#" * max(1, round(40 * counts[level] / widest))
        lines.append(f"level {level:>2}: {counts[level]:>5} {bar}")
    return "\n".join(lines)
