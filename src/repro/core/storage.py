"""A peer's local key store.

Keys are plain integers kept in a sorted list (duplicates allowed, matching
the paper's footnote about duplicate partition-key values).  The store only
needs ordered-set operations — insert, delete, range count, split at a pivot
— all O(log n) via bisection plus O(n) for the physical list edits, which is
plenty at simulation scale.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional


class LocalStore:
    """Sorted multiset of integer keys owned by one peer."""

    __slots__ = ("_keys",)

    def __init__(self, keys: Optional[Iterable[int]] = None):
        self._keys: List[int] = sorted(keys) if keys else []

    # -- basic container protocol -----------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys)

    def __contains__(self, key: int) -> bool:
        index = bisect.bisect_left(self._keys, key)
        return index < len(self._keys) and self._keys[index] == key

    # -- updates ------------------------------------------------------------

    def insert(self, key: int) -> None:
        """Add one occurrence of ``key`` (duplicates are kept)."""
        bisect.insort(self._keys, key)

    def delete(self, key: int) -> bool:
        """Remove one occurrence of ``key``; return whether it was present."""
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            del self._keys[index]
            return True
        return False

    def extend(self, keys: Iterable[int]) -> None:
        """Bulk-add keys (used for content handover on leave/balance)."""
        self._keys.extend(keys)
        self._keys.sort()

    def clear(self) -> List[int]:
        """Remove and return every key (content transfer on departure)."""
        keys, self._keys = self._keys, []
        return keys

    # -- queries ------------------------------------------------------------

    def count_in(self, low: int, high: int) -> int:
        """Number of keys in the half-open interval [low, high)."""
        return bisect.bisect_left(self._keys, high) - bisect.bisect_left(
            self._keys, low
        )

    def keys_in(self, low: int, high: int) -> List[int]:
        """The keys in [low, high), in sorted order."""
        lo = bisect.bisect_left(self._keys, low)
        hi = bisect.bisect_left(self._keys, high)
        return self._keys[lo:hi]

    def min(self) -> Optional[int]:
        return self._keys[0] if self._keys else None

    def max(self) -> Optional[int]:
        return self._keys[-1] if self._keys else None

    def median(self) -> Optional[int]:
        """The middle key, used as a data-aware split point on join."""
        if not self._keys:
            return None
        return self._keys[len(self._keys) // 2]

    # -- splitting ------------------------------------------------------------

    def split_below(self, pivot: int) -> List[int]:
        """Remove and return all keys < ``pivot`` (handover to a left child)."""
        index = bisect.bisect_left(self._keys, pivot)
        moved, self._keys = self._keys[:index], self._keys[index:]
        return moved

    def split_at_or_above(self, pivot: int) -> List[int]:
        """Remove and return all keys >= ``pivot`` (handover to a right child)."""
        index = bisect.bisect_left(self._keys, pivot)
        moved, self._keys = self._keys[index:], self._keys[:index]
        return moved
