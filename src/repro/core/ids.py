"""Logical node positions in the BATON tree.

A node's *logical id* is the pair ``(level, number)`` from §III of the paper:
the root is level 0; at level ``L`` positions are numbered 1..2^L whether or
not a peer currently occupies them.  The pair fully determines the node's
place in the binary tree, its parent/children positions, and — through the
in-order traversal — its place in the linear key order that ranges follow.

Positions are immutable values; peers move *between* positions during
restructuring, so identity of a peer is its address, never its position.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional


@lru_cache(maxsize=1 << 17)
def _interned(level: int, number: int) -> "Position":
    """Shared Position instances for the tree-geometry hot paths.

    Parent/child/table-slot arithmetic creates the same handful of
    positions over and over (every reconcile sweep walks the whole tree);
    interning skips the validating constructor on repeats.  Positions are
    immutable, so sharing is safe.  Only the geometry methods below go
    through here — direct ``Position(...)`` construction still validates.
    """
    return Position(level, number)


@dataclass(frozen=True, order=False, slots=True)
class Position:
    """A slot in the (conceptually infinite) binary tree."""

    level: int
    number: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError(f"level must be >= 0, got {self.level}")
        if not 1 <= self.number <= (1 << self.level):
            raise ValueError(
                f"number must be in [1, 2^{self.level}], got {self.number}"
            )

    def __getstate__(self) -> tuple:
        # Explicit pickle path (network snapshot restore): skips the
        # generic slotted-dataclass state walk; values were validated at
        # construction, so restore trusts them.
        return (self.level, self.number)

    def __setstate__(self, state: tuple) -> None:
        object.__setattr__(self, "level", state[0])
        object.__setattr__(self, "number", state[1])

    # -- tree geometry ------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return self.level == 0

    @property
    def is_left_child(self) -> bool:
        """Left children have odd numbers (root is neither side)."""
        return self.level > 0 and self.number % 2 == 1

    @property
    def is_right_child(self) -> bool:
        return self.level > 0 and self.number % 2 == 0

    def parent(self) -> Optional["Position"]:
        """Position of the parent slot, or None for the root."""
        if self.level == 0:
            return None
        return _interned(self.level - 1, (self.number + 1) // 2)

    def left_child(self) -> "Position":
        return _interned(self.level + 1, 2 * self.number - 1)

    def right_child(self) -> "Position":
        return _interned(self.level + 1, 2 * self.number)

    def sibling(self) -> Optional["Position"]:
        """The other child of this node's parent, or None for the root."""
        if self.level == 0:
            return None
        offset = 1 if self.is_left_child else -1
        return _interned(self.level, self.number + offset)

    def ancestor_at(self, level: int) -> "Position":
        """The ancestor slot at the given (shallower or equal) level."""
        if not 0 <= level <= self.level:
            raise ValueError(f"level {level} is not an ancestor level of {self}")
        shift = self.level - level
        # Repeated parent() is ceil-halving the number `shift` times.
        number = ((self.number - 1) >> shift) + 1
        return Position(level, number)

    def is_ancestor_of(self, other: "Position") -> bool:
        """Strict ancestry test (a position is not its own ancestor)."""
        return self.level < other.level and other.ancestor_at(self.level) == self

    # -- sideways (routing-table) geometry -----------------------------------

    def left_table_positions(self) -> Iterator["Position"]:
        """Valid left-routing-table slots: numbers ``number - 2^i`` >= 1."""
        i = 0
        while self.number - (1 << i) >= 1:
            yield Position(self.level, self.number - (1 << i))
            i += 1

    def right_table_positions(self) -> Iterator["Position"]:
        """Valid right-routing-table slots: numbers ``number + 2^i`` <= 2^L."""
        i = 0
        while self.number + (1 << i) <= (1 << self.level):
            yield Position(self.level, self.number + (1 << i))
            i += 1

    def table_position(self, side: str, index: int) -> Optional["Position"]:
        """The slot at distance ``2^index`` on ``side``, or None if invalid."""
        if side == "left":
            number = self.number - (1 << index)
            return _interned(self.level, number) if number >= 1 else None
        if side == "right":
            number = self.number + (1 << index)
            return (
                _interned(self.level, number)
                if number <= (1 << self.level)
                else None
            )
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")

    # -- in-order (key) order -------------------------------------------------

    def inorder_num_den(self) -> tuple[int, int]:
        """Exact in-order key as the fraction ``(2*number - 1) / 2^(level+1)``.

        Mapping every slot into (0, 1) this way linearises the infinite tree:
        slot A precedes slot B in an in-order traversal iff key(A) < key(B).
        Returned as (numerator, denominator) of exact integers.
        """
        return 2 * self.number - 1, 1 << (self.level + 1)

    def inorder_lt(self, other: "Position") -> bool:
        """True iff self comes before other in the in-order traversal."""
        num_a, den_a = self.inorder_num_den()
        num_b, den_b = other.inorder_num_den()
        return num_a * den_b < num_b * den_a

    def inorder_key(self) -> float:
        """Float approximation of the in-order key (debugging/plots only)."""
        num, den = self.inorder_num_den()
        return num / den

    def __str__(self) -> str:
        return f"({self.level},{self.number})"


ROOT = Position(0, 1)
"""The root slot (level 0, number 1)."""
