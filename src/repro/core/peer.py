"""The state one BATON peer maintains.

Exactly the link set from §III: parent, two children, two adjacent nodes
(in-order predecessor/successor) and the two sideways routing tables — plus
the range it manages and its local key store.  Peers never reach into each
other's state directly; the protocol modules move information between peers
via counted messages and then call these local mutators.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.ids import Position
from repro.core.links import LEFT, RIGHT, NodeInfo, RoutingTable
from repro.core.ranges import Range
from repro.core.storage import LocalStore
from repro.net.address import Address


class BatonPeer:
    """A peer occupying one tree position.

    Slotted: peers are the unit of population, and at N=100k the
    per-instance ``__dict__`` of an open class costs more than the links
    it holds.  The slot list **is** the public attribute API — every field
    below is read and written by the protocol modules and tests.
    """

    __slots__ = (
        "address",
        "position",
        "range",
        "store",
        "replicas",
        "replica_anchor",
        "parent",
        "left_child",
        "right_child",
        "left_adjacent",
        "right_adjacent",
        "left_table",
        "right_table",
        "subscriptions",
        "seen_messages",
        "route_cache",
    )

    def __init__(self, address: Address, position: Position, range_: Range):
        self.address = address
        self.position = position
        self.range = range_
        self.store = LocalStore()
        #: Mirrored stores of other peers (replication extension; keyed by
        #: the owner's address).  Empty unless ``BatonConfig.replication``.
        self.replicas: dict[Address, list[int]] = {}
        #: Where this peer's own mirror was last anchored (replication
        #: extension).  Write-throughs follow the anchor while it is live;
        #: a replica refresh re-anchors at the current adjacent and cleans
        #: the old anchor, so stale mirrors never accumulate.
        self.replica_anchor: Optional[Address] = None
        self.parent: Optional[NodeInfo] = None
        self.left_child: Optional[NodeInfo] = None
        self.right_child: Optional[NodeInfo] = None
        self.left_adjacent: Optional[NodeInfo] = None
        self.right_adjacent: Optional[NodeInfo] = None
        self.left_table = RoutingTable(owner=position, side=LEFT)
        self.right_table = RoutingTable(owner=position, side=RIGHT)
        #: Range subscriptions stored at this owner, keyed by sub_id
        #: (dissemination extension).  Lazily allocated: ``None`` until
        #: the first entry lands, so pub/sub-free populations pay nothing.
        self.subscriptions: Optional[dict] = None
        #: Bounded window of applied dissemination ids (exactly-once
        #: application; see ``repro.pubsub.state``).  Lazy like above.
        self.seen_messages: Optional[dict] = None
        #: Hot-range routing cache (locality extension; see
        #: :mod:`repro.core.cache`).  Lazy like above: ``None`` until this
        #: peer originates a resolved walk with the cache enabled, so
        #: cache-off populations pay nothing.
        self.route_cache = None

    # -- descriptive properties ---------------------------------------------

    @property
    def level(self) -> int:
        return self.position.level

    @property
    def is_leaf(self) -> bool:
        return self.left_child is None and self.right_child is None

    def snapshot(self) -> NodeInfo:
        """A fresh :class:`NodeInfo` describing this peer to others."""
        return NodeInfo(
            address=self.address,
            position=self.position,
            range=self.range,
            left_child=self.left_child.address if self.left_child else None,
            right_child=self.right_child.address if self.right_child else None,
        )

    def tables_full(self) -> bool:
        """Theorem 1 condition: both sideways tables have no null entry."""
        return self.left_table.is_full() and self.right_table.is_full()

    def can_accept_child(self) -> bool:
        """Algorithm 1 acceptance test: full tables and a free child slot."""
        return self.tables_full() and (
            self.left_child is None or self.right_child is None
        )

    # -- generic link access ----------------------------------------------------

    def child_on(self, side: str) -> Optional[NodeInfo]:
        return self.left_child if side == LEFT else self.right_child

    def set_child(self, side: str, info: Optional[NodeInfo]) -> None:
        if side == LEFT:
            self.left_child = info
        else:
            self.right_child = info

    def adjacent_on(self, side: str) -> Optional[NodeInfo]:
        return self.left_adjacent if side == LEFT else self.right_adjacent

    def set_adjacent(self, side: str, info: Optional[NodeInfo]) -> None:
        if side == LEFT:
            self.left_adjacent = info
        else:
            self.right_adjacent = info

    def table_on(self, side: str) -> RoutingTable:
        return self.left_table if side == LEFT else self.right_table

    def iter_links(self) -> Iterator[tuple[str, NodeInfo]]:
        """Every non-null link, labelled by kind.

        Because all BATON link relations are symmetric (x links y iff y links
        x), this is exactly the set of peers that must be notified when this
        peer's state changes.
        """
        if self.parent is not None:
            yield "parent", self.parent
        if self.left_child is not None:
            yield "left_child", self.left_child
        if self.right_child is not None:
            yield "right_child", self.right_child
        if self.left_adjacent is not None:
            yield "left_adjacent", self.left_adjacent
        if self.right_adjacent is not None:
            yield "right_adjacent", self.right_adjacent
        for _, info in self.left_table.occupied():
            yield "left_table", info
        for _, info in self.right_table.occupied():
            yield "right_table", info

    def link_addresses(self) -> List[Address]:
        """Deduplicated addresses of every linked peer."""
        seen: dict[Address, None] = {}
        for _, info in self.iter_links():
            seen.setdefault(info.address, None)
        return list(seen)

    # -- table entry addressing by position ------------------------------------

    def table_slot_for(self, position: Position) -> Optional[tuple[str, int]]:
        """Which (side, index) of my tables covers ``position``, if any.

        Returns None when the position is not at my level or not at a
        power-of-two distance.
        """
        if position.level != self.level:
            return None
        delta = position.number - self.position.number
        if delta == 0:
            return None
        side = RIGHT if delta > 0 else LEFT
        distance = abs(delta)
        if distance & (distance - 1) != 0:
            return None
        return side, distance.bit_length() - 1

    def set_table_entry(self, info: NodeInfo) -> bool:
        """Record ``info`` in whichever table slot matches its position."""
        slot = self.table_slot_for(info.position)
        if slot is None:
            return False
        side, index = slot
        self.table_on(side).set(index, info)
        return True

    def clear_table_entry(self, position: Position) -> bool:
        """Null out the slot for ``position`` (neighbour departed)."""
        slot = self.table_slot_for(position)
        if slot is None:
            return False
        side, index = slot
        self.table_on(side).set(index, None)
        return True

    # -- updating knowledge about other peers -----------------------------------

    def update_link_info(self, info: NodeInfo) -> int:
        """Refresh every link slot that points at ``info.address``.

        Returns the number of slots refreshed.  Used when a linked peer
        announces a change (new range, new child, position move).
        """
        if self.route_cache is not None:
            # The announcing peer's snapshot already paid its message;
            # correcting a cached route from it is free (locality cache's
            # restructure hook — see repro.core.cache).
            info_range = info.range
            self.route_cache.refresh(
                info.address, info_range.low, info_range.high
            )
        updated = 0
        if self.parent is not None and self.parent.address == info.address:
            self.parent = info.copy()
            updated += 1
        # Fast path for the tables: when the announcing peer sits exactly
        # where my geometry expects it (the overwhelmingly common case),
        # its entry can only live in that one slot — no scan needed.  The
        # scan below still catches entries parked at a stale slot after a
        # position move.
        expected_slot = self.table_slot_for(info.position)
        for side in (LEFT, RIGHT):
            child = self.child_on(side)
            if child is not None and child.address == info.address:
                self.set_child(side, info.copy())
                updated += 1
            adjacent = self.adjacent_on(side)
            if adjacent is not None and adjacent.address == info.address:
                self.set_adjacent(side, info.copy())
                updated += 1
            table = self.table_on(side)
            if expected_slot is not None and expected_slot[0] == side:
                index = expected_slot[1]
                current = table.get(index)
                if current is not None and current.address == info.address:
                    table.set(index, info.copy())
                    updated += 1
                    continue
            found = table.entry_for_address(info.address)
            if found is not None:
                index, _ = found
                if table.position_at(index) == info.position:
                    table.set(index, info.copy())
                else:
                    table.set(index, None)
                updated += 1
        return updated

    def replace_link_address(self, old: Address, info: NodeInfo) -> int:
        """Repoint every link slot from ``old`` to the replacement peer.

        Used when a replacement node takes over a departed peer's position
        (§III-B): the logical position is unchanged but the physical address
        is new.
        """
        if self.route_cache is not None:
            # The departed address can never answer a shortcut again.
            self.route_cache.invalidate(old)
        updated = 0
        if self.parent is not None and self.parent.address == old:
            self.parent = info.copy()
            updated += 1
        for side in (LEFT, RIGHT):
            child = self.child_on(side)
            if child is not None and child.address == old:
                self.set_child(side, info.copy())
                updated += 1
            adjacent = self.adjacent_on(side)
            if adjacent is not None and adjacent.address == old:
                self.set_adjacent(side, info.copy())
                updated += 1
            table = self.table_on(side)
            found = table.entry_for_address(old)
            if found is not None:
                index, _ = found
                if table.position_at(index) == info.position:
                    table.set(index, info.copy())
                else:
                    table.set(index, None)
                updated += 1
        return updated

    # -- position changes (restructuring) ---------------------------------------

    def move_to(self, position: Position) -> None:
        """Take over a new tree position, clearing position-bound links.

        The caller (restructuring protocol) is responsible for rebuilding
        links afterwards; range and store travel with the peer ("no data
        movement is required", §III-E).
        """
        self.position = position
        self.parent = None
        self.left_child = None
        self.right_child = None
        self.left_adjacent = None
        self.right_adjacent = None
        self.left_table = RoutingTable(owner=position, side=LEFT)
        self.right_table = RoutingTable(owner=position, side=RIGHT)

    def __repr__(self) -> str:
        return f"BatonPeer(addr={self.address}, pos={self.position}, range={self.range})"
