"""Hot-range routing cache (locality extension; not in the paper).

ART (PAPERS.md) gets sub-logarithmic effective lookup cost by letting
peers shortcut the tree with cached coverage information; the RIB
next-hop cache in the gdp-multicast-simulator snippet (SNIPPETS.md) is
the same idiom one layer down.  This module applies it to BATON's §IV-A
walk: each peer keeps a small bounded map of recently-routed
``owner -> range`` entries, recorded when a walk it originated resolves.
A later lookup whose key falls inside a cached range pays **one** direct
message to the remembered owner instead of the O(log N) walk.

Staleness contract — *miss, never wrong* (DESIGN.md, "Locality
contract"):

* every shortcut is **verified at the landed peer**: if its range no
  longer covers the key (the tree restructured underneath the entry) the
  entry is invalidated and the normal walk continues from wherever the
  shortcut landed — the stale hint costs one message, it can never
  produce a wrong answer;
* a shortcut to a dead owner costs its (counted) send attempt, drops the
  entry, and falls back to the full walk from the entry peer;
* restructure traffic refreshes entries for free: a peer applying a
  counted ``TABLE_UPDATE`` snapshot (:meth:`BatonPeer.update_link_info`)
  corrects any cache entry it holds about the announcing peer, and a
  repair's ``replace_link_address`` drops entries about the dead address;
* the anti-entropy ``reconcile()`` sweep validates every surviving entry
  against ground truth (the same documented map substitution the link
  rebuild uses), so staleness is bounded by the maintenance interval.

With ``LocalityConfig.cache_size == 0`` (the default) none of this
exists: no cache objects are allocated, no branches send messages, and
runs are event-for-event identical to the uncached fast path (pinned).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.net.address import Address
from repro.net.message import MsgType
from repro.util.errors import PeerNotFoundError

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork
    from repro.core.peer import BatonPeer

#: Capacity used when a surface enables the cache without choosing one
#: (the ``--cache`` CLI flag, the locality experiment grid).  Sized to
#: hold a hot range's owner set at experiment scale while keeping the
#: per-lookup linear scan trivial.
DEFAULT_CACHE_SIZE = 128


class CacheStats:
    """Network-wide hit/miss/invalidation counters.

    One instance per :class:`~repro.core.network.BatonNetwork`, shared by
    reference with every peer's :class:`RouteCache` so peer-local events
    (an entry corrected by a TABLE_UPDATE snapshot) land in the same
    counters the reports read.
    """

    __slots__ = ("hits", "misses", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> tuple:
        return (self.hits, self.misses, self.invalidations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations})"
        )


class RouteCache:
    """One peer's bounded ``owner -> (low, high)`` route memory.

    Keyed by owner address (a live peer owns exactly one range, so the
    key is also the dedup unit); lookup scans the bounded entry set for a
    covering range.  Insertion order doubles as LRU order: a hit moves
    its entry to the back, a record over capacity evicts the front.
    Capacity evictions are routine forgetting, not staleness, and are not
    counted as invalidations.
    """

    __slots__ = ("capacity", "stats", "_entries")

    def __init__(self, capacity: int, stats: CacheStats):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.stats = stats
        self._entries: dict[Address, tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def owners(self) -> List[Address]:
        return list(self._entries)

    def lookup(self, key: int) -> Optional[Address]:
        """The cached owner whose recorded range covers ``key``, if any."""
        for owner, (low, high) in self._entries.items():
            if low <= key < high:
                # LRU touch: re-insert at the back.
                self._entries[owner] = self._entries.pop(owner)
                return owner
        return None

    def record(self, owner: Address, low: int, high: int) -> None:
        entries = self._entries
        if owner in entries:
            del entries[owner]
        elif len(entries) >= self.capacity:
            del entries[next(iter(entries))]
        entries[owner] = (low, high)

    def invalidate(self, owner: Address) -> bool:
        """Drop a stale entry; counted, True when something was dropped."""
        if self._entries.pop(owner, None) is not None:
            self.stats.invalidations += 1
            return True
        return False

    def refresh(self, owner: Address, low: int, high: int) -> None:
        """Correct the entry for ``owner`` from a fresh snapshot.

        Called while applying counted update traffic (the snapshot already
        paid its message), so correcting in place is free and keeps the
        cache warm; a corrected range counts as one invalidation (the old
        entry was stale).
        """
        current = self._entries.get(owner)
        if current is not None and current != (low, high):
            self._entries[owner] = (low, high)
            self.stats.invalidations += 1


def cache_enabled(net: "BatonNetwork") -> bool:
    return net.config.locality.cache_size > 0


def peer_cache(
    net: "BatonNetwork", address: Address, create: bool = False
) -> Optional[RouteCache]:
    """The cache of the live peer at ``address`` (lazily created)."""
    peer = net.peers.get(address)
    if peer is None:
        return None
    cache = peer.route_cache
    if cache is None and create:
        cache = RouteCache(net.config.locality.cache_size, net.cache_stats)
        peer.route_cache = cache
    return cache


def record_route(net: "BatonNetwork", entry: Address, owner: "BatonPeer") -> None:
    """Remember a resolved walk's owner at the walk's entry peer.

    The record rides the (unmodeled) response leg back to the client's
    entry point — no extra message.  Recording the entry peer itself is
    pointless (a local range check beats any cache), so skipped.
    """
    if entry == owner.address:
        return
    cache = peer_cache(net, entry, create=True)
    if cache is None:
        return  # the entry peer vanished while the walk was in flight
    owner_range = owner.range
    cache.record(owner.address, owner_range.low, owner_range.high)


def consult(
    net: "BatonNetwork", start: Address, key: int, mtype: MsgType
) -> Address:
    """Synchronous shortcut attempt; returns where the walk should start.

    On a verified hit the returned address *is* the owner (the caller's
    walk confirms immediately with zero further messages).  On a stale
    hint the walk continues from wherever the shortcut landed; on a dead
    or absent hint it starts at ``start``.  Exactly one of hit/miss is
    counted per consult.
    """
    stats = net.cache_stats
    peer = net.peers.get(start)
    cache = peer.route_cache if peer is not None else None
    hint = cache.lookup(key) if cache is not None else None
    if hint is None or hint == start:
        stats.misses += 1
        return start
    try:
        net.count_message(start, hint, mtype)
    except PeerNotFoundError:
        stats.misses += 1
        cache.invalidate(hint)
        return start
    target = net.peers[hint]
    if target.range.contains(key):
        stats.hits += 1
        return hint
    stats.misses += 1
    cache.invalidate(hint)
    return hint  # verified-stale: keep walking from where we landed


def reconcile_peer(net: "BatonNetwork", peer: "BatonPeer") -> None:
    """Anti-entropy validation of one peer's cache against ground truth.

    Runs inside the ``reconcile()`` sweep, which already substitutes the
    position map for a peer-to-peer digest exchange (the documented cost
    model); dead owners are dropped, moved ranges corrected — both
    counted as invalidations.
    """
    cache = peer.route_cache
    if cache is None:
        return
    for owner in cache.owners():
        live = net.peers.get(owner)
        if live is None:
            cache.invalidate(owner)
        else:
            live_range = live.range
            cache.refresh(owner, live_range.low, live_range.high)
