"""BATON core: the balanced tree overlay (the paper's primary contribution).

Public entry point is :class:`BatonNetwork`; everything else here is the
structure it is made of (positions, ranges, links, peers) plus the protocol
modules it delegates to.
"""

from repro.core.ids import Position, ROOT
from repro.core.invariants import check_invariants, collect_violations, tree_height
from repro.core.links import LEFT, RIGHT, NodeInfo, RoutingTable
from repro.core.network import BatonConfig, BatonNetwork, LoadBalanceConfig
from repro.core.peer import BatonPeer
from repro.core.ranges import Range
from repro.core.results import (
    BalanceEvent,
    DataOpResult,
    JoinResult,
    LeaveResult,
    RangeSearchResult,
    RepairResult,
    SearchResult,
)
from repro.core.storage import LocalStore

__all__ = [
    "Position",
    "ROOT",
    "Range",
    "LocalStore",
    "NodeInfo",
    "RoutingTable",
    "LEFT",
    "RIGHT",
    "BatonPeer",
    "BatonConfig",
    "BatonNetwork",
    "LoadBalanceConfig",
    "JoinResult",
    "LeaveResult",
    "SearchResult",
    "RangeSearchResult",
    "DataOpResult",
    "RepairResult",
    "BalanceEvent",
    "check_invariants",
    "collect_violations",
    "tree_height",
]
