"""Bulk balanced build: the final BATON tree computed directly from N.

BATON's §III invariants pin the balanced shape for a population of N
peers up to the order joins arrive in: levels ``0..L-1`` are complete and
the remaining ``M = N - (2^L - 1)`` peers sit in the leftmost slots of
level ``L``.  Growing that shape join-by-join costs N walks and N table
update rounds — 89% of total wall-clock at N=10k in the committed
benchmark trajectory — yet every message it sends is reconstructible
arithmetic.  D²-Tree and D³-Tree (PAPERS.md) get their deterministic
bounds by the same observation: *structural construction* is separable
from *dynamic maintenance*.

This module is that separation.  :func:`bulk_build` computes positions,
ranges, parent/child/adjacent links and both sideways routing tables for
all N peers in ``O(N log N)`` time with **zero simulated messages**, and
is pinned link-for-link, range-for-range equal to the incremental
reference (:func:`incremental_reference` — Algorithm 1 joins driven in
the same canonical order) by ``tests/test_bulk_build.py``.

What bulk construction is **not** (DESIGN.md, "Construction contract"):
it is deployment-time scaffolding only.  Churn — every join, leave,
failure and repair after time zero — must still run the paper's
protocols; nothing here may be called on a non-empty network.

Ranges come from one of two regimes.  Without data the recurrence is the
arithmetic-midpoint carve that Algorithm 1 produces over empty stores —
the regime the small-N equivalence test pins.  That carve cannot reach
production depth: each level the right spine keeps only half of its
remaining half (range width *and* key share quarter per level), so an
integer domain of 10⁹ bottoms out near depth 15 and N=100k needs 17 —
and driving Algorithm 1 at canonical parents hits the same wall, because
live joiners route toward data-rich regions instead.  So with a dataset
(``keys=...``) the bulk path builds the state churn converges to rather
than replaying any join order: the sorted keys are dealt to the N nodes
in in-order position order, ~K/N each (a B+-tree-style bulk load, and
the fixpoint of the paper's §V load balancing), with range boundaries
read off the slice edges.  In-order contiguity is precisely the range
invariant, and every key lands in its owner with no per-key routing.

Memory: every peer's :class:`NodeInfo` snapshot is built once and
**shared** by all of its linkers (parent slot, child slots, adjacents,
every routing-table row that points at it).  Protocol code never mutates
a ``NodeInfo`` in place — updates replace entries with fresh copies — so
sharing is safe, and it replaces the ~N·log N independent snapshots the
incremental path accumulates with exactly N.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Optional, TYPE_CHECKING

from repro.core.ids import Position
from repro.core.links import NodeInfo
from repro.core.peer import BatonPeer
from repro.core.ranges import Range

if TYPE_CHECKING:
    from repro.core.network import BatonConfig, BatonNetwork


def tree_shape(n_peers: int) -> tuple[int, int]:
    """The canonical shape for N peers: ``(complete_levels, last_row)``.

    Levels ``0..complete_levels-1`` are fully occupied; ``last_row`` peers
    occupy slots ``1..last_row`` of level ``complete_levels`` (0 when the
    tree is perfect).
    """
    if n_peers < 1:
        raise ValueError("need at least one peer")
    levels = 1
    while (1 << (levels + 1)) - 1 <= n_peers:
        levels += 1
    return levels, n_peers - ((1 << levels) - 1)


def bulk_build(
    n_peers: int,
    seed: int = 0,
    config: Optional["BatonConfig"] = None,
    keys: Optional[Iterable[int]] = None,
) -> "BatonNetwork":
    """A fresh N-peer BATON overlay, constructed directly (no messages).

    ``keys`` (optional) is the dataset to load: ranges are then cut so
    every peer owns a ~K/N slice of the sorted keys (the load-balanced
    fixpoint) and each key lands directly in its owner's store.
    """
    from repro.core.network import BatonNetwork

    net = BatonNetwork(config=config, seed=seed)
    populate_balanced(net, n_peers, keys=keys)
    return net


def incremental_reference(
    n_peers: int,
    seed: int = 0,
    config: Optional["BatonConfig"] = None,
) -> "BatonNetwork":
    """The same shape grown through Algorithm 1, one join at a time.

    Each joiner is pointed at its canonical parent (level order, left to
    right), which Algorithm 1 accepts immediately — its tables are full
    and the left slot fills before the right.  This is the ground truth
    the bulk path is pinned against: same addresses, same ranges, same
    links, with every table filled by the paper's update protocol.
    """
    from repro.core.network import BatonNetwork

    net = BatonNetwork(config=config, seed=seed)
    net.bootstrap()
    complete_levels, last_row = tree_shape(n_peers)
    for level in range(1, complete_levels + (1 if last_row else 0)):
        row = (1 << level) if level < complete_levels else last_row
        for number in range(1, row + 1):
            parent_position = Position(level, number).parent()
            net.join(via=net.occupant(parent_position))
    return net


def populate_balanced(
    net: "BatonNetwork",
    n_peers: int,
    keys: Optional[Iterable[int]] = None,
) -> None:
    """Fill an **empty** network with the canonical N-peer tree.

    Runs in O(N log N + K log K): O(N) for positions/ranges/parent/child
    links, O(N log N) for the routing-table backfill and the in-order
    adjacency chain, O(K log K) to sort the optional dataset (each key is
    then placed in O(1)).  Sends nothing on the bus and draws nothing
    from the rng.
    """
    if net.peers:
        raise ValueError(
            "bulk build requires an empty network — live peers must grow "
            "through the join protocol (see DESIGN.md, Construction contract)"
        )
    complete_levels, last_row = tree_shape(n_peers)
    max_level = complete_levels if last_row else complete_levels - 1
    sorted_keys = sorted(keys) if keys is not None else []

    def row_width(level: int) -> int:
        if level < complete_levels:
            return 1 << level
        return last_row if level == complete_levels else 0

    # --- the in-order position sequence -------------------------------------
    # The exact in-order key of (level, number) is (2·number − 1)/2^(level+1);
    # scaling every key by 2^(max_level+1) makes the comparison integral.
    # Used for range assignment (with data) and the adjacency chain (always).
    ordered: List[tuple[int, int, int]] = []
    for level in range(max_level + 1):
        shift = max_level - level
        for index in range(row_width(level)):
            ordered.append((((2 * index) + 1) << shift, level, index))
    ordered.sort()

    ranges_by_level: List[List[Range]]
    spans_by_level: Optional[List[List[tuple[int, int]]]] = None
    if sorted_keys:
        # --- ranges from the data: the balanced in-order partition ----------
        # Deal the sorted keys to the N peers in in-order position order,
        # ~K/N each, and read the range boundaries off the slice edges —
        # bumped minimally (and clamped so the tail still fits) when a
        # duplicate run or sparse data would repeat a boundary.  In-order
        # contiguity of the resulting ranges IS the range-partition
        # invariant; per-peer load is the §V balancing fixpoint.
        domain = net.config.domain
        if domain.width < n_peers:
            raise ValueError(
                f"domain {domain} has fewer values than peers ({n_peers})"
            )
        k = len(sorted_keys)
        boundaries: List[int] = [domain.low]
        for rank in range(1, n_peers):
            candidate = sorted_keys[min(rank * k // n_peers, k - 1)]
            floor = boundaries[-1] + 1
            ceiling = domain.high - (n_peers - rank)
            boundaries.append(min(max(candidate, floor), ceiling))
        boundaries.append(domain.high)
        ranges_by_level = [
            [None] * row_width(level) for level in range(max_level + 1)
        ]
        spans_by_level = [
            [None] * row_width(level) for level in range(max_level + 1)
        ]
        for rank, (_, level, index) in enumerate(ordered):
            low, high = boundaries[rank], boundaries[rank + 1]
            ranges_by_level[level][index] = Range(low, high)
            spans_by_level[level][index] = (
                bisect_left(sorted_keys, low),
                bisect_left(sorted_keys, high),
            )
    else:
        # --- ranges without data: Algorithm 1's midpoint carve --------------
        # ``current[j]`` is the range parent j (0-based) holds *right now*
        # in the canonical join order; each child carves its half off
        # exactly as add_child would over an empty store — left child takes
        # the low half, right child the high half of what remains.  After a
        # row's children are done, ``current`` holds that row's final
        # ranges.
        ranges_by_level = []
        current: List[Range] = [net.config.domain]
        for level in range(max_level + 1):
            children = row_width(level + 1)
            next_current: List[Range] = []
            for child in range(children):
                parent_range = current[child // 2]
                pivot = parent_range.midpoint()
                if child % 2 == 0:  # left child: takes [low, pivot)
                    child_range, parent_range = parent_range.split_at(pivot)
                else:  # right child: takes [pivot, high)
                    parent_range, child_range = parent_range.split_at(pivot)
                current[child // 2] = parent_range
                next_current.append(child_range)
            ranges_by_level.append(current)
            current = next_current

    # --- peers, addresses in the canonical (level-order) join order -------
    peers_by_level: List[List[BatonPeer]] = []
    for level in range(max_level + 1):
        row = [
            BatonPeer(
                net.alloc.allocate(),
                Position(level, index + 1),
                ranges_by_level[level][index],
            )
            for index in range(row_width(level))
        ]
        peers_by_level.append(row)
        for index, peer in enumerate(row):
            net.register_peer(peer)
            if sorted_keys:
                lo, hi = spans_by_level[level][index]
                peer.store.extend(sorted_keys[lo:hi])

    # --- one shared snapshot per peer --------------------------------------
    snaps_by_level: List[List[NodeInfo]] = []
    for level, row in enumerate(peers_by_level):
        below = peers_by_level[level + 1] if level < max_level else []
        snaps = []
        for index, peer in enumerate(row):
            left, right = 2 * index, 2 * index + 1
            snaps.append(
                NodeInfo(
                    address=peer.address,
                    position=peer.position,
                    range=peer.range,
                    left_child=below[left].address if left < len(below) else None,
                    right_child=below[right].address if right < len(below) else None,
                )
            )
        snaps_by_level.append(snaps)

    # --- parent/child links and the routing-table backfill ------------------
    for level, row in enumerate(peers_by_level):
        snaps = snaps_by_level[level]
        above = snaps_by_level[level - 1] if level else []
        below = snaps_by_level[level + 1] if level < max_level else []
        occupied = len(row)  # occupancy at a level is always a prefix
        for index, peer in enumerate(row):
            if level:
                peer.parent = above[index // 2]
            left, right = 2 * index, 2 * index + 1
            if left < len(below):
                peer.left_child = below[left]
            if right < len(below):
                peer.right_child = below[right]
            number = index + 1
            # Left table: slots at number - 2^i, all of which are occupied
            # (occupancy is a left-to-right prefix of every level).
            entries = peer.left_table.entries
            for i in range(len(entries)):
                entries[i] = snaps[index - (1 << i)]
            # Right table: slots at number + 2^i, occupied iff inside the
            # prefix; beyond it the in-range slot stays null (the paper's
            # "an entry is still made ... but marked as null").
            entries = peer.right_table.entries
            for i in range(len(entries)):
                slot_number = number + (1 << i)
                if slot_number <= occupied:
                    entries[i] = snaps[index + (1 << i)]

    # --- adjacent links: the in-order chain ---------------------------------
    previous: Optional[tuple[int, int]] = None
    for _, level, index in ordered:
        peer = peers_by_level[level][index]
        if previous is not None:
            left_peer = peers_by_level[previous[0]][previous[1]]
            peer.left_adjacent = snaps_by_level[previous[0]][previous[1]]
            left_peer.right_adjacent = snaps_by_level[level][index]
        previous = (level, index)
