"""Half-open key ranges.

Every peer directly manages a contiguous range of the key domain; §IV
requires a node's own range to sit between the range of its left subtree and
the range of its right subtree, so the in-order traversal of peers reads out
the sorted partition of the whole domain.  Ranges here are half-open integer
intervals ``[low, high)``, the usual convention that makes adjacent ranges
compose without gaps or overlaps.
"""

from __future__ import annotations

from dataclasses import dataclass


DEFAULT_DOMAIN_LOW = 1
DEFAULT_DOMAIN_HIGH = 1_000_000_000
"""The paper's key domain: values are drawn from [1, 10^9)."""


@dataclass(frozen=True)
class Range:
    """A half-open interval ``[low, high)`` of integer keys."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"invalid range [{self.low}, {self.high})")

    @staticmethod
    def full_domain() -> "Range":
        """The paper's whole key domain."""
        return Range(DEFAULT_DOMAIN_LOW, DEFAULT_DOMAIN_HIGH)

    @property
    def width(self) -> int:
        return self.high - self.low

    @property
    def is_empty(self) -> bool:
        return self.low == self.high

    def contains(self, key: int) -> bool:
        return self.low <= key < self.high

    def overlaps(self, other: "Range") -> bool:
        """True iff the two ranges share at least one key."""
        return self.low < other.high and other.low < self.high

    def intersection(self, other: "Range") -> "Range":
        """The shared sub-range (possibly empty, anchored at max(low)s)."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return Range(low, low)
        return Range(low, high)

    @property
    def can_split(self) -> bool:
        """Whether the range holds an interior pivot (width >= 2).

        A width-1 range's :meth:`midpoint` equals ``low``, which
        :meth:`split_at` rejects — callers on the join/load-balancing split
        path must check this before splitting.
        """
        return self.width >= 2

    def midpoint(self) -> int:
        """A split point dividing the range roughly in half.

        Only meaningful as a pivot when :attr:`can_split` holds; on a
        width-1 range it degenerates to ``low``, which is not a valid
        :meth:`split_at` pivot.
        """
        return self.low + self.width // 2

    def split_at(self, pivot: int) -> tuple["Range", "Range"]:
        """Split into ``[low, pivot)`` and ``[pivot, high)``.

        The pivot must lie strictly inside the range so both halves are
        non-empty.
        """
        if not self.low < pivot < self.high:
            raise ValueError(f"pivot {pivot} not strictly inside [{self.low}, {self.high})")
        return Range(self.low, pivot), Range(pivot, self.high)

    def extend_to_include(self, key: int) -> "Range":
        """The smallest range containing both this range and ``key``.

        Used by the leftmost/rightmost peers when an insert falls outside the
        currently covered domain (§IV-C).
        """
        return Range(min(self.low, key), max(self.high, key + 1))

    def merge(self, other: "Range") -> "Range":
        """Union of two *adjacent* ranges (must share a boundary)."""
        if self.high == other.low:
            return Range(self.low, other.high)
        if other.high == self.low:
            return Range(other.low, self.high)
        raise ValueError(f"ranges [{self}] and [{other}] are not adjacent")

    def __str__(self) -> str:
        return f"[{self.low}, {self.high})"
