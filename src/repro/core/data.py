"""Data operations: insert and delete (§IV-C).

Both ride the exact-match routing; an insert that falls outside the covered
domain reaches the leftmost (or rightmost) peer, which expands its range to
cover the new key and spends an extra O(log N) round of routing-table
updates — the special case called out in §IV-C.  Inserts may then trigger
load balancing (§IV-D) at the receiving peer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import search as search_protocol
from repro.core.results import DataOpResult
from repro.net.address import Address
from repro.net.message import MsgType

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def insert(net: "BatonNetwork", start: Address, key: int) -> DataOpResult:
    """Route ``key`` to its owner and store it there."""
    with net.open_trace("insert") as trace:
        owner_address = search_protocol.route_to_owner(
            net, start, key, MsgType.INSERT
        )
        owner = net.peer(owner_address)
        if not owner.range.contains(key):
            expand_extreme_range(net, owner, key)
        owner.store.insert(key)
        if net.config.replication:
            from repro.core import replication

            replication.replicate_insert(net, owner, key)
        if owner.subscriptions:
            from repro.pubsub.subscribe import notify_steps
            from repro.util.stepper import drive

            drive(notify_steps(net, owner, key))
    result = DataOpResult(applied=True, owner=owner_address, trace=trace)

    from repro.core import balance as balance_protocol

    event = balance_protocol.maybe_balance(net, owner_address)
    if event is not None:
        result.balance_trace = event.trace
        result.balance_moves = event.shift_size
    return result


def delete(net: "BatonNetwork", start: Address, key: int) -> DataOpResult:
    """Route to the owner of ``key`` and remove one occurrence of it."""
    with net.open_trace("delete") as trace:
        owner_address = search_protocol.route_to_owner(
            net, start, key, MsgType.DELETE
        )
        owner = net.peer(owner_address)
        applied = owner.store.delete(key)
        if applied and net.config.replication:
            from repro.core import replication

            replication.replicate_delete(net, owner, key)
    return DataOpResult(applied=applied, owner=owner_address, trace=trace)


def expand_extreme_range(net: "BatonNetwork", owner, key: int) -> None:
    """Extreme-node range expansion for out-of-domain inserts.

    Only the leftmost peer (no left adjacent) may grow downward and only the
    rightmost (no right adjacent) upward; anything else reaching here means
    routing failed and we must not paper over it.
    """
    if key < owner.range.low and owner.left_adjacent is None:
        owner.range = owner.range.extend_to_include(key)
    elif key >= owner.range.high and owner.right_adjacent is None:
        owner.range = owner.range.extend_to_include(key)
    else:
        from repro.util.errors import ProtocolError

        raise ProtocolError(
            f"insert of {key} routed to non-covering peer {owner.position} "
            f"{owner.range}"
        )
    # "It takes an additional log N step for updating its routing tables."
    net.broadcast_update(owner)
