"""Node failure and repair (§III-C).

A failed peer simply stops answering: senders pay for the undelivered
message and route around it (see :mod:`repro.core.search`).  Repair is
coordinated by the failed node's parent (with §III-D fallbacks to adjacents
or children when the parent is gone too).  The coordinator regenerates the
missing routing state by contacting the children of the nodes in *its own*
routing tables — Theorem 2: the failed child's sideways neighbours are
exactly those children — and then drives a graceful departure on the failed
node's behalf.  The failed peer's locally stored keys are lost (the paper
does not replicate data) but its *range* is reassigned so the key-space
partition stays complete.

After the structural surgery the repair re-establishes link consistency with
the map-based rebuild helper from :mod:`repro.core.restructure` (the same
documented cost-model substitution), charging the coordinator one REPAIR
message per regenerated link.

Repair is written as a step generator (:func:`repair_steps`) so the
event-driven runtime can price it: the structural surgery runs as one
atomic segment (no other operation can observe a half-repaired tree), and
— when the replication extension is enabled — the replica pull that
restores the dead peer's keys follows as sized, per-link hops
(:func:`repro.core.replication.restore_from_replica_steps`).  The
synchronous :func:`repair` drives the same generator to exhaustion.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.links import LEFT, RIGHT
from repro.core.peer import BatonPeer
from repro.core.results import RepairResult
from repro.net.address import Address
from repro.net.bus import Trace
from repro.net.message import MsgType
from repro.util.errors import PeerNotFoundError, ProtocolError
from repro.util.stepper import MessageSteps, drive

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def fail(net: "BatonNetwork", address: Address) -> None:
    """Kill the peer at ``address`` abruptly (no protocol runs).

    The peer's last state is retained as a *ghost*: it stands in for the
    routing knowledge that survives at its linkers (parent, neighbours),
    which is what the repair coordinator reconstructs.  Its slot stays in
    the position map until repair so the hole is visible.
    """
    peer = net.peers.pop(address, None)
    if peer is None:
        raise PeerNotFoundError(address)
    net.pool_discard(address)
    net.bus.unregister(address)
    net.ghosts[address] = peer


def repair(net: "BatonNetwork", failed: Address) -> RepairResult:
    """Run the parent-coordinated repair for a failed peer (atomically)."""
    with net.open_trace("repair") as trace:
        return drive(repair_steps(net, failed, trace))


def repair_steps(
    net: "BatonNetwork", failed: Address, trace: Trace
) -> MessageSteps:
    """The §III-C repair as a step generator.

    The coordinator lookup, table regeneration and structural surgery all
    run in the first segment — between submission and the first yield no
    other operation can observe a half-repaired tree.  The only yielded
    hops are the replication extension's replica pull (request, sized bulk
    reply, batched onward re-mirror), so under the event-driven runtime
    recovery *latency* includes the wire time of moving the dead peer's
    data, while the tree itself is whole from the moment the repair runs.

    ``trace`` is recorded on the result; callers attribute the messages
    (the synchronous wrapper drives inside an open trace, the runtime
    activates the operation's own trace per segment).
    """
    ghost = net.ghosts.get(failed)
    if ghost is None:
        raise PeerNotFoundError(failed)
    coordinator = _find_coordinator(net, ghost)
    if coordinator is None:
        if net.size == 0:
            # The sole peer died: nothing to reconnect.
            _release_slot(net, ghost)
            del net.ghosts[failed]
            return RepairResult(failed=failed, replacement=None, trace=trace)
        # Every neighbour is dead too: block until another repair
        # revives one (repair_all retries in passes).
        raise ProtocolError(
            f"repair of {ghost.position} blocked: no live coordinator"
        )
    _regenerate_tables(net, coordinator, ghost)
    if _safe_leaf_removal(ghost):
        absorber = _remove_dead_leaf(net, coordinator, ghost)
        replacement: Optional[BatonPeer] = None
    else:
        replacement = _replace_dead_internal(net, coordinator, ghost)
        absorber = replacement
    del net.ghosts[failed]
    recovered = 0
    if net.config.replication and absorber is not None:
        from repro.core import replication

        recovered = yield from replication.restore_from_replica_steps(
            net, ghost, absorber
        )
    return RepairResult(
        failed=failed,
        replacement=replacement.address if replacement else None,
        trace=trace,
        keys_recovered=recovered,
    )


def _release_slot(net: "BatonNetwork", ghost: BatonPeer) -> None:
    if net._positions.get(ghost.position) == ghost.address:
        del net._positions[ghost.position]


def _find_coordinator(net: "BatonNetwork", ghost: BatonPeer) -> Optional[BatonPeer]:
    """The live peer that manages the repair: parent first, §III-D fallbacks."""
    candidates = [
        ghost.parent,
        ghost.left_adjacent,
        ghost.right_adjacent,
        ghost.left_child,
        ghost.right_child,
    ]
    for info in candidates:
        if info is not None and info.address in net.peers:
            return net.peers[info.address]
    # The ghost's snapshots may all be stale (its neighbours were repaired
    # under new addresses); fall back to the current slot occupants.
    slots = [
        ghost.position.parent(),
        ghost.position.left_child(),
        ghost.position.right_child(),
    ]
    for slot in slots:
        if slot is None:
            continue
        address = net.occupant(slot)
        if address is not None and address in net.peers:
            return net.peers[address]
    return None


def _live_parent(net: "BatonNetwork", ghost: BatonPeer) -> Optional[BatonPeer]:
    """The live peer at the ghost's parent slot (address may have changed)."""
    if ghost.parent is not None and ghost.parent.address in net.peers:
        return net.peers[ghost.parent.address]
    parent_slot = ghost.position.parent()
    if parent_slot is None:
        return None
    address = net.occupant(parent_slot)
    if address is not None and address in net.peers:
        return net.peers[address]
    return None


def _live_ghost_linkers(net: "BatonNetwork", ghost: BatonPeer) -> set[Address]:
    """Addresses of the ghost's linkers that are still alive."""
    return {
        info.address for _, info in ghost.iter_links() if info.address in net.peers
    }


def _regenerate_tables(
    net: "BatonNetwork", coordinator: BatonPeer, ghost: BatonPeer
) -> None:
    """Recreate the failed node's links at the coordinator, *current*.

    The coordinator queries each live node in its own routing tables for the
    relevant child (request + response, two counted messages per neighbour).
    Crucially the answers reflect the network as it is **now** — joins and
    repairs that happened after the crash — not the dead node's last view;
    repairing against a stale snapshot can remove a slot whose neighbours
    have since gained children and break Theorem 1.  The refreshed state is
    written into the ghost object, which stands in for the regenerated
    tables for the rest of the repair.
    """
    for side in (LEFT, RIGHT):
        for _, info in coordinator.table_on(side).occupied():
            if info.address not in net.peers:
                continue
            net.count_message(coordinator.address, info.address, MsgType.REPAIR)
            net.count_message(info.address, coordinator.address, MsgType.RESPONSE)
    from repro.core.restructure import refresh_links_from_map

    # Ghost-held slots stay visible: a dead child still owns its slot and
    # its slice of the key space, so the dead parent must not be mistaken
    # for a leaf (its repair would skip the child's range).
    refresh_links_from_map(net, ghost, include_ghosts=True)


def _safe_leaf_removal(ghost: BatonPeer) -> bool:
    """Whether simply dropping the dead node's slot keeps the tree balanced.

    Same test as graceful leave: a leaf none of whose sideways neighbours
    has children (evaluated on the regenerated link state).
    """
    if not ghost.is_leaf:
        return False
    return not ghost.left_table.nodes_with_children() and not (
        ghost.right_table.nodes_with_children()
    )


def _remove_dead_leaf(
    net: "BatonNetwork", coordinator: BatonPeer, ghost: BatonPeer
) -> Optional[BatonPeer]:
    """Drop a dead leaf: its parent absorbs the range.

    Returns the absorbing peer (the caller pulls the dead leaf's replica
    into it when the replication extension is enabled), or None on the
    parent-child double-failure path where nothing live absorbs yet.
    """
    parent = _live_parent(net, ghost)
    if parent is None:
        # Parent-child double failure (§III-C): fold the dead child's slice
        # into the dead parent's ghost state; whichever repair handles the
        # parent later carries the combined range forward.
        parent_slot = ghost.position.parent()
        parent_address = net.occupant(parent_slot) if parent_slot else None
        ghost_parent = net.ghosts.get(parent_address) if parent_address else None
        if ghost_parent is None:
            raise ProtocolError(f"dead leaf {ghost.position} has no parent at all")
        ghost_parent.range = ghost_parent.range.merge(ghost.range)
        _release_slot(net, ghost)

        from repro.core.restructure import rebuild_after_moves

        rebuild_after_moves(net, [coordinator], _live_ghost_linkers(net, ghost))
        return None
    parent.range = parent.range.merge(ghost.range)
    linkers = _live_ghost_linkers(net, ghost)
    for address in sorted(linkers):
        if address != coordinator.address:
            net.count_message(coordinator.address, address, MsgType.REPAIR)
    _release_slot(net, ghost)

    from repro.core.restructure import rebuild_after_moves

    rebuild_after_moves(net, [parent], linkers)
    return parent


def _replace_dead_internal(
    net: "BatonNetwork", coordinator: BatonPeer, ghost: BatonPeer
) -> BatonPeer:
    """Move a replacement leaf into a dead internal node's slot."""
    from repro.core import leave as leave_protocol
    from repro.core.restructure import rebuild_after_moves

    start = _live_descent_entry(net, ghost)
    if start is None:
        raise ProtocolError(
            f"cannot repair {ghost.position}: no live entry into its subtree"
        )
    replacement = net.peer(_walk_replacement(net, start))
    if not leave_protocol.can_depart_simply(replacement):
        # Cornered by other unrepaired failures (for example the candidate
        # still has a dead child whose slot would be orphaned): moving it
        # would break the tree.  Block; repair_all retries after the
        # blocking ghosts are handled.
        raise ProtocolError(
            f"repair of {ghost.position} blocked: replacement "
            f"{replacement.position} cannot depart safely yet"
        )
    pre_links = set(replacement.link_addresses()) | _live_ghost_linkers(net, ghost)

    parent_slot = replacement.position.parent()
    if parent_slot == ghost.position:
        # The replacement hangs directly under the dead node, so its keys
        # cannot go to its parent.  It keeps them and absorbs the dead
        # node's (now data-less) range, which is adjacent in order.
        merged_range = replacement.range.merge(ghost.range)
        net.unregister_peer(replacement.address)
    elif replacement.parent is None or replacement.parent.address not in net.peers:
        raise ProtocolError(
            f"repair of {ghost.position} blocked: replacement "
            f"{replacement.position}'s parent also failed; repair it first"
        )
    else:
        leave_protocol.depart_leaf(net, replacement, content_target="parent")
        merged_range = ghost.range

    replacement.move_to(ghost.position)
    replacement.range = merged_range
    _release_slot(net, ghost)
    net.register_peer(replacement)

    for address in sorted(pre_links):
        if address in net.peers and address != coordinator.address:
            net.count_message(coordinator.address, address, MsgType.REPAIR)
    rebuild_after_moves(net, [replacement], pre_links)
    return replacement


def _live_descent_entry(net: "BatonNetwork", ghost: BatonPeer) -> Optional[Address]:
    """A live node from which the replacement walk can descend.

    For a dead leaf the natural entries are the children of its sideways
    neighbours (the same entry point graceful leave uses); for a dead
    internal node, its adjacents sit in its own subtree.
    """
    candidates: list[Optional[Address]] = []
    if ghost.is_leaf:
        neighbours = (
            ghost.left_table.nodes_with_children()
            + ghost.right_table.nodes_with_children()
        )
        for info in sorted(
            neighbours,
            key=lambda i: abs(i.position.number - ghost.position.number),
        ):
            candidates.append(info.left_child or info.right_child)
    for info in (
        ghost.left_adjacent,
        ghost.right_adjacent,
        ghost.left_child,
        ghost.right_child,
    ):
        if info is not None:
            candidates.append(info.address)
    for address in candidates:
        if address is not None and address in net.peers:
            return address
    return None


def _walk_replacement(net: "BatonNetwork", start: Address) -> Address:
    """Algorithm 2, tolerating dead hops along the way."""
    limit = 4 * max(net.size.bit_length(), 2) + 32
    current = start
    for _ in range(limit):
        peer = net.peer(current)
        hops: list[Address] = []
        if peer.left_child is not None:
            hops.append(peer.left_child.address)
        if peer.right_child is not None:
            hops.append(peer.right_child.address)
        if not hops:
            with_children = (
                peer.left_table.nodes_with_children()
                + peer.right_table.nodes_with_children()
            )
            for info in sorted(
                with_children,
                key=lambda i: abs(i.position.number - peer.position.number),
            ):
                child = info.left_child or info.right_child
                if child is not None:
                    hops.append(child)
        if not hops:
            return current
        next_hop: Optional[Address] = None
        for candidate in hops:
            try:
                net.count_message(current, candidate, MsgType.LEAVE_FIND)
            except PeerNotFoundError:
                continue
            next_hop = candidate
            break
        if next_hop is None:
            return current  # everything deeper is dead; stop here
        current = next_hop
    raise ProtocolError("repair replacement walk did not terminate")
