"""The BATON overlay network: public API and shared protocol plumbing.

:class:`BatonNetwork` owns the peers, the message bus and the position map,
and exposes the paper's operations — join, leave, fail/repair, insert,
delete, exact-match and range search — by delegating to the protocol modules
(:mod:`repro.core.join`, :mod:`repro.core.leave`, …).

Honesty rules (see DESIGN.md at the repository root): protocol decisions use
only the acting peer's local links.  The global position map kept here serves
three sanctioned purposes only — the invariant checker, the restructuring
link-rebuild helper (a documented cost-model substitution), and test
assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.ids import ROOT, Position
from repro.core.links import LEFT, RIGHT, NodeInfo
from repro.core.peer import BatonPeer
from repro.core.ranges import Range
from repro.core.results import (
    DataOpResult,
    JoinResult,
    LeaveResult,
    NetworkStats,
    RangeSearchResult,
    RepairResult,
    SearchResult,
)
from repro.net.address import Address, AddressAllocator
from repro.net.bus import MessageBus, Trace
from repro.net.message import MsgType
from repro.util.errors import NetworkEmptyError, PeerNotFoundError
from repro.util.rng import SeededRng


@dataclass
class LoadBalanceConfig:
    """Tuning for §IV-D load balancing.

    A peer is *overloaded* when its store exceeds ``capacity`` keys and
    *lightly loaded* when below ``low_watermark * capacity``.  An overloaded
    leaf first tries its adjacent nodes; an adjacent node can absorb keys if
    that keeps it under ``absorb_factor * capacity``.  Otherwise the leaf
    recruits a lightly loaded leaf found by probing through the routing
    tables (``probe_limit`` probes at most).
    """

    capacity: int = 200
    low_watermark: float = 0.25
    absorb_factor: float = 0.75
    probe_limit: int = 16
    enabled: bool = True
    #: Ablation toggle: with rejoins disabled, overloaded leaves only shift
    #: data to adjacents — the "ripple through the network" regime §IV-D
    #: argues against.
    allow_rejoin: bool = True


@dataclass
class LocalityConfig:
    """The locality extension's knobs (DESIGN.md, "Locality contract").

    Everything defaults off, in which case every code path is byte-for-byte
    the paper's protocol: no extra rng draws, no extra messages, identical
    event logs (pinned by tests/test_locality.py).
    """

    #: Topology-aware join: the contact peer probes this many candidate
    #: entry points (itself included) on the joiner's behalf and forwards
    #: the Algorithm 1 walk to the cheapest neighbourhood.  0/1 disables
    #: probing.  Requires ``BatonNetwork.topology`` to be set.
    join_probes: int = 0
    #: Region-diverse replica placement: mirror at the nearest linked peer
    #: in a *different* region when the topology exposes ``region_of``;
    #: falls back to the plain adjacent holder otherwise.
    replica_diversity: bool = False
    #: Hot-range routing cache capacity per peer (entries); 0 disables the
    #: cache entirely (no per-peer cache objects are ever allocated).
    cache_size: int = 0

    def __post_init__(self) -> None:
        if self.join_probes < 0:
            raise ValueError("join_probes cannot be negative")
        if self.cache_size < 0:
            raise ValueError("cache_size cannot be negative")


@dataclass
class BatonConfig:
    """Network-wide settings."""

    domain: Range = field(default_factory=Range.full_domain)
    #: "median" splits a parent's range at the median of its stored keys
    #: (data-aware, the paper's "splits half of its content"); "midpoint"
    #: splits the range arithmetically.  Ablation toggle.
    split_policy: str = "median"
    balance: LoadBalanceConfig = field(default_factory=LoadBalanceConfig)
    #: Data-durability extension (not in the paper): mirror each peer's
    #: store at its right adjacent and restore it during repair.  See
    #: :mod:`repro.core.replication`.
    replication: bool = False
    #: Locality extension (not in the paper): topology-aware joins,
    #: region-diverse replicas, hot-range routing cache.  See
    #: :mod:`repro.core.cache` and DESIGN.md's "Locality contract".
    locality: LocalityConfig = field(default_factory=LocalityConfig)

    def __post_init__(self) -> None:
        if self.split_policy not in ("median", "midpoint"):
            raise ValueError(f"unknown split policy {self.split_policy!r}")


class UpdateChannel:
    """Delivery channel for third-party routing-state notifications.

    In normal (immediate) mode a notification is counted on the bus and
    applied at the receiver right away.  In *deferred* mode — used by the
    network-dynamics experiment (Fig 8i) to model update-propagation delay —
    the message is still counted at send time (it is in flight) but the
    receiver-side application is queued until :meth:`flush`.  Queries issued
    in between see stale link state and pay recovery messages, which is
    exactly the effect §V-E measures.

    A third mode serves the event-driven runtime (:mod:`repro.sim.runtime`):
    when a *delivery sink* is installed, each notification's receiver-side
    application is handed to the sink, which schedules it on the simulator
    at a per-message sampled latency.  The channel tracks how many such
    applications are still in flight so degraded-routing heuristics can
    tell that link state is transiently stale.

    Only fire-and-forget refreshes go through this channel.  Request/response
    handshakes inside join/leave (which the initiator blocks on) are always
    immediate.
    """

    def __init__(self, bus: MessageBus):
        self._bus = bus
        self.deferred = False
        self._queue: List[Callable[[], None]] = []
        self._sink: Optional[
            Callable[[Address, Address, Callable[[], None]], None]
        ] = None
        self.in_flight = 0

    def set_sink(
        self,
        sink: Optional[Callable[[Address, Address, Callable[[], None]], None]],
    ) -> None:
        """Route receiver-side applications through ``sink`` (None restores
        immediate application).  The sink takes the source and destination
        addresses and a zero-argument deliver callback, and decides when to
        invoke it — the link identity lets the runtime price the delivery
        per (src, dst) link, and the destination lets it drain a peer's
        in-flight updates before that peer hands its state to a
        replacement."""
        self._sink = sink

    def notify(
        self,
        src: Address,
        dst: Address,
        mtype: MsgType,
        apply: Callable[[], None],
    ) -> bool:
        """Send one notification; returns False if the target is dead."""
        try:
            self._bus.send_typed(src, dst, mtype)
        except PeerNotFoundError:
            return False
        if self._sink is not None:
            self.in_flight += 1

            def deliver() -> None:
                self.in_flight -= 1
                apply()

            self._sink(src, dst, deliver)
        elif self.deferred:
            self._queue.append(apply)
        else:
            apply()
        return True

    @property
    def pending_count(self) -> int:
        return len(self._queue) + self.in_flight

    def flush(self) -> int:
        """Apply every queued notification; returns how many were applied."""
        applied = 0
        while self._queue:
            action = self._queue.pop(0)
            action()
            applied += 1
        return applied


class BatonNetwork:
    """A simulated BATON overlay."""

    def __init__(self, config: Optional[BatonConfig] = None, seed: int = 0):
        self.config = config or BatonConfig()
        self.rng = SeededRng(seed)
        self.bus = MessageBus()
        self.updates = UpdateChannel(self.bus)
        self.alloc = AddressAllocator()
        self.peers: Dict[Address, BatonPeer] = {}
        #: Live addresses as a flat pool with swap-remove bookkeeping, so a
        #: uniform entry-point draw is O(1).  The old implementation sorted
        #: the peer dict on every draw — O(N log N) per submitted query,
        #: the dominant cost of the workload driver beyond N≈10k.
        self._address_pool: List[Address] = []
        self._pool_index: Dict[Address, int] = {}
        #: Peers that failed abruptly; state retained for the repair
        #: coordinator's reconstruction and for test assertions.
        self.ghosts: Dict[Address, BatonPeer] = {}
        self.stats = NetworkStats()
        self._positions: Dict[Position, Address] = {}
        #: Back-off bookkeeping for §IV-D (see balance.maybe_balance).
        self._balance_backoff: Dict[Address, int] = {}
        #: Dissemination ids and pub/sub counters (see repro.pubsub).
        #: Imported lazily: repro.pubsub reaches repro.sim for Hop, which
        #: imports this module right back.
        from repro.pubsub.state import PubSubState

        self.pubsub = PubSubState()
        #: The run's physical topology, when one exists (locality
        #: extension).  The async runtime installs its own; synchronous
        #: callers that want topology-aware joins or region-diverse
        #: replicas set it explicitly.  Protocol decisions only ever read
        #: the deterministic ``direct_delay``/``region_of`` surface — never
        #: the jittered ``sample`` stream — so setting it perturbs nothing.
        self.topology = None
        #: Hot-range cache counters, shared by every peer's cache (locality
        #: extension; all-zero unless ``config.locality.cache_size > 0``).
        from repro.core.cache import CacheStats

        self.cache_stats = CacheStats()
        self.bus.set_level_resolver(self._level_of)

    # -- bookkeeping ---------------------------------------------------------

    def _level_of(self, address: Address) -> Optional[int]:
        peer = self.peers.get(address)
        return peer.position.level if peer is not None else None

    @property
    def size(self) -> int:
        """Number of live peers."""
        return len(self.peers)

    def peer(self, address: Address) -> BatonPeer:
        """The live peer at ``address`` (raises if dead/unknown)."""
        try:
            return self.peers[address]
        except KeyError:
            raise PeerNotFoundError(address) from None

    def occupant(self, position: Position) -> Optional[Address]:
        """Address occupying a tree position (sanctioned uses only)."""
        return self._positions.get(position)

    def addresses(self) -> List[Address]:
        return list(self.peers)

    def random_peer_address(self) -> Address:
        """A uniformly random live peer (query/join entry points), O(1)."""
        pool = self._address_pool
        if not pool:
            raise NetworkEmptyError("network has no peers")
        return pool[self.rng.randint(0, len(pool) - 1)]

    def register_peer(self, peer: BatonPeer) -> None:
        self.peers[peer.address] = peer
        self._positions[peer.position] = peer.address
        if peer.address not in self._pool_index:
            self._pool_index[peer.address] = len(self._address_pool)
            self._address_pool.append(peer.address)
        self.bus.register(peer.address)

    def unregister_peer(self, address: Address) -> BatonPeer:
        peer = self.peers.pop(address)
        if self._positions.get(peer.position) == address:
            del self._positions[peer.position]
        self.pool_discard(address)
        self.bus.unregister(address)
        return peer

    def pool_discard(self, address: Address) -> None:
        """Swap-remove ``address`` from the O(1) entry-point pool.

        Pool order is irrelevant to a uniform draw; the draw itself is what
        must stay O(1).  Called by :meth:`unregister_peer` and by the abrupt
        failure path, which removes a peer without the leave protocol.
        """
        index = self._pool_index.pop(address, None)
        if index is None:
            return
        last = self._address_pool.pop()
        if last != address:
            self._address_pool[index] = last
            self._pool_index[last] = index

    def record_move(self, peer: BatonPeer, old_position: Position) -> None:
        """Update the position map after a restructuring move."""
        if self._positions.get(old_position) == peer.address:
            del self._positions[old_position]
        self._positions[peer.position] = peer.address

    # -- construction ----------------------------------------------------------

    def bootstrap(self) -> Address:
        """Create the first peer, owning the whole domain, at the root."""
        if self.peers:
            raise ValueError("network is already bootstrapped")
        peer = BatonPeer(self.alloc.allocate(), ROOT, self.config.domain)
        self.register_peer(peer)
        self.stats.joins += 1
        return peer.address

    @classmethod
    def build(
        cls,
        n_peers: int,
        seed: int = 0,
        config: Optional[BatonConfig] = None,
        bulk: bool = False,
        keys: Optional[Iterable[int]] = None,
    ) -> "BatonNetwork":
        """Convenience constructor: bootstrap and join ``n_peers - 1`` peers.

        ``bulk=True`` computes the final balanced tree directly instead of
        simulating N joins (see :mod:`repro.core.bulk_build` and DESIGN.md's
        "Construction contract") — same shape, same links, zero messages;
        entry-point placement differs only in that joins are random-entry.
        ``keys`` (bulk only) is the dataset to load while building.  Scale
        surfaces (``scale_profile``, the ``profile`` CLI) default to the
        bulk path; protocol tests that pin message traces keep joins.
        """
        if n_peers < 1:
            raise ValueError("need at least one peer")
        if keys is not None and not bulk:
            raise ValueError("keys= requires bulk=True (joins load via insert)")
        if bulk:
            from repro.core.bulk_build import populate_balanced

            net = cls(config=config, seed=seed)
            populate_balanced(net, n_peers, keys=keys)
            return net
        net = cls(config=config, seed=seed)
        net.bootstrap()
        for _ in range(n_peers - 1):
            net.join()
        return net

    # -- operations (delegate to protocol modules) ------------------------------

    def join(self, via: Optional[Address] = None) -> JoinResult:
        """Add one peer, contacting ``via`` (default: a random peer)."""
        from repro.core import join as join_protocol

        start = via if via is not None else self.random_peer_address()
        result = join_protocol.join(self, start)
        self.stats.joins += 1
        return result

    def leave(self, address: Address) -> LeaveResult:
        """Gracefully remove the peer at ``address``."""
        from repro.core import leave as leave_protocol

        result = leave_protocol.leave(self, address)
        self.stats.leaves += 1
        return result

    def fail(self, address: Address) -> None:
        """Abrupt departure: the peer vanishes without any protocol."""
        from repro.core import failure as failure_protocol

        failure_protocol.fail(self, address)
        self.stats.failures += 1

    def repair(self, failed: Address) -> RepairResult:
        """Run the §III-C repair for a failed peer."""
        from repro.core import failure as failure_protocol

        result = failure_protocol.repair(self, failed)
        self.stats.repairs += 1
        return result

    def repair_all(self) -> List[RepairResult]:
        """Repair every outstanding failure, retrying order-sensitive cases.

        Concurrent failures can depend on each other (a replacement's parent
        failed too); repairing in a different order resolves them, mirroring
        how independent repairs interleave in a real deployment.
        """
        from repro.util.errors import ProtocolError

        results: List[RepairResult] = []
        blocked: List[Address] = []
        passes = 0
        while self.ghosts and passes < len(self.ghosts) + 8:
            passes += 1
            progress = False
            for address in sorted(self.ghosts):
                try:
                    results.append(self.repair(address))
                    progress = True
                except ProtocolError:
                    blocked.append(address)
            if not progress:
                raise ProtocolError(
                    f"repairs deadlocked on ghosts {sorted(self.ghosts)}"
                )
        return results

    def search_exact(
        self, key: int, via: Optional[Address] = None
    ) -> SearchResult:
        """Route an exact-match query from ``via`` (default random peer)."""
        from repro.core import search as search_protocol

        start = via if via is not None else self.random_peer_address()
        return search_protocol.search_exact(self, start, key)

    def search_range(
        self, low: int, high: int, via: Optional[Address] = None
    ) -> RangeSearchResult:
        """Route a range query for [low, high) from ``via``."""
        from repro.core import search as search_protocol

        start = via if via is not None else self.random_peer_address()
        return search_protocol.search_range(self, start, low, high)

    def insert(self, key: int, via: Optional[Address] = None) -> DataOpResult:
        """Route an insert; may trigger load balancing (§IV-D)."""
        from repro.core import data as data_protocol

        start = via if via is not None else self.random_peer_address()
        return data_protocol.insert(self, start, key)

    def delete(self, key: int, via: Optional[Address] = None) -> DataOpResult:
        """Route a delete of one occurrence of ``key``."""
        from repro.core import data as data_protocol

        start = via if via is not None else self.random_peer_address()
        return data_protocol.delete(self, start, key)

    def multicast(self, low: int, high: int, via: Optional[Address] = None):
        """Deliver one message to every owner of [low, high) (pub/sub)."""
        from repro import pubsub as pubsub_protocol

        return pubsub_protocol.multicast(self, low, high, via=via)

    def subscribe(self, subscriber: Address, low: int, high: int):
        """Install a subscription for [low, high) at every range owner."""
        from repro import pubsub as pubsub_protocol

        return pubsub_protocol.subscribe(self, subscriber, low, high)

    def refresh_replicas(self) -> int:
        """Anti-entropy sweep of the replication extension (if enabled)."""
        from repro.core import replication

        if not self.config.replication:
            return 0
        return replication.refresh_replicas(self)

    # -- bulk loading -----------------------------------------------------------

    def bulk_load(self, keys: List[int]) -> int:
        """Place keys directly into their owners without routed messages.

        Experiments use this for the untimed initial data load (the paper
        loads 1000·N values "in batches"); the measured operations are then
        routed individually.  Returns the number of keys placed.
        """
        owners = sorted(self.peers.values(), key=lambda p: p.range.low)
        bounds = [p.range.low for p in owners]
        import bisect

        placed = 0
        for key in keys:
            index = bisect.bisect_right(bounds, key) - 1
            if index < 0:
                index = 0
            owner = owners[index]
            if not owner.range.contains(key):
                continue
            owner.store.insert(key)
            placed += 1
        return placed

    # -- shared protocol plumbing ------------------------------------------------

    def count_message(
        self, src: Address, dst: Address, mtype: MsgType, **payload: object
    ) -> None:
        """Count one protocol message on the bus (raises if dst is dead)."""
        self.bus.send_typed(src, dst, mtype, **payload)

    def broadcast_update(
        self,
        peer: BatonPeer,
        exclude: Optional[set[Address]] = None,
        mtype: MsgType = MsgType.TABLE_UPDATE,
    ) -> int:
        """Push ``peer``'s fresh snapshot to everything it links to.

        All BATON link relations are symmetric, so a peer's own link set is
        exactly the set of peers holding (now stale) information about it.
        Deferred-aware; returns the number of messages sent.
        """
        excluded = exclude or set()
        snapshot = peer.snapshot()
        sent = 0
        for target in peer.link_addresses():
            if target in excluded or target == peer.address:
                continue
            receiver = self.peers.get(target)
            if receiver is None:
                continue

            def apply(receiver: BatonPeer = receiver) -> None:
                receiver.update_link_info(snapshot)

            if self.updates.notify(peer.address, target, mtype, apply):
                sent += 1
        return sent

    def open_trace(self, label: str):
        """Context manager alias for :meth:`MessageBus.trace`."""
        return self.bus.trace(label)

    def new_trace(self, label: str) -> Trace:
        """An empty trace (for operations that turn out to be no-ops)."""
        return Trace(label=label)

    # -- snapshots for experiments ------------------------------------------------

    def load_snapshot(self) -> Dict[Address, int]:
        """Store sizes per peer (load-balance experiments)."""
        return {address: len(peer.store) for address, peer in self.peers.items()}

    def leftmost_peer(self) -> BatonPeer:
        """The peer owning the lowest range (no left adjacent)."""
        if not self.peers:
            raise NetworkEmptyError("network has no peers")
        return min(self.peers.values(), key=lambda p: p.range.low)

    def rightmost_peer(self) -> BatonPeer:
        """The peer owning the highest range (no right adjacent)."""
        if not self.peers:
            raise NetworkEmptyError("network has no peers")
        return max(self.peers.values(), key=lambda p: p.range.high)
