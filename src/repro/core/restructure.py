"""Network restructuring (§III-E): in-order shifts that restore balance.

When a join or departure is *forced* (load balancing, §IV-D) and would break
Theorem 1's condition, the tree is rebalanced AVL-style by shifting peers
along the in-order adjacency chain:

* **Forced insert** — the newcomer takes the anchor's slot and each displaced
  peer moves to its in-order successor's slot, until a displaced peer can
  "park" as the left child of its successor (empty left-child slot at a node
  with full tables, which by Theorem 1 accepts a child safely).
* **Forced removal** — the vacated slot is filled from the in-order
  predecessor side; each predecessor shifts one slot rightward until the
  shift vacates a leaf slot whose removal is balance-safe.

No data moves: ranges ride along with their peers, and because shifts follow
the in-order chain the sorted order of ranges is preserved.  Every shifted
peer then pays O(log N) messages to rebuild its links.

Implementation note (see DESIGN.md): the chain walk itself uses only local
adjacent links and is message-counted hop by hop.  The link *rebuild* after
the moves recomputes affected peers' links from the global position map and
charges each moved peer one message per rebuilt link — a documented
cost-model substitution for the paper's pointer-surgery, chosen so the
structural invariants are restorable and the message counts match the
paper's O(log N)-per-moved-node claim.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from repro.core.ids import Position
from repro.core.links import LEFT, RIGHT, NodeInfo, RoutingTable
from repro.core.peer import BatonPeer
from repro.net.address import Address
from repro.net.message import MsgType
from repro.util.errors import PeerNotFoundError, ProtocolError

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


# ---------------------------------------------------------------------------
# Map-based geometry helpers (sanctioned global-map uses)
# ---------------------------------------------------------------------------


def inorder_neighbor_position(
    net: "BatonNetwork", position: Position, side: str
) -> Optional[Position]:
    """In-order predecessor/successor slot among occupied positions."""
    if side == RIGHT:
        down, other = Position.right_child, Position.left_child
        take_parent_when = "is_left_child"
    else:
        down, other = Position.left_child, Position.right_child
        take_parent_when = "is_right_child"
    subtree_root = down(position)
    if net.occupant(subtree_root) is not None:
        current = subtree_root
        while net.occupant(other(current)) is not None:
            current = other(current)
        return current
    current = position
    while True:
        parent = current.parent()
        if parent is None:
            return None
        if getattr(current, take_parent_when):
            return parent
        current = parent


def map_snapshot(
    net: "BatonNetwork",
    position: Optional[Position],
    cache: Optional[dict] = None,
    include_ghosts: bool = False,
) -> Optional[NodeInfo]:
    """Ground-truth :class:`NodeInfo` for a slot, straight from the map.

    ``cache`` (scoped to one rebuild batch, during which occupancy and
    ranges are stable) avoids recomputing hot slots; cached entries are
    copied out because links must never be aliased between peers.

    ``include_ghosts`` makes slots held by failed peers visible (with their
    crash-time range): the repair coordinator needs them — a dead node's
    dead child still owns its slot and its slice of the key space.
    """
    if position is None:
        return None
    if cache is not None and position in cache:
        hit = cache[position]
        return hit.copy() if hit is not None else None
    address = net.occupant(position)
    peer = net.peers.get(address) if address is not None else None
    if peer is None and include_ghosts and address is not None:
        peer = net.ghosts.get(address)
    if peer is None:
        snapshot = None  # empty slot (or invisible ghost)
    else:
        snapshot = NodeInfo(
            address=address,
            position=position,
            range=peer.range,
            left_child=net.occupant(position.left_child()),
            right_child=net.occupant(position.right_child()),
        )
    if cache is not None:
        cache[position] = snapshot
        return snapshot.copy() if snapshot is not None else None
    return snapshot


def refresh_links_from_map(
    net: "BatonNetwork",
    peer: BatonPeer,
    cache: Optional[dict] = None,
    include_ghosts: bool = False,
) -> None:
    """Recompute every link of ``peer`` from the position map."""
    position = peer.position
    peer.parent = map_snapshot(net, position.parent(), cache, include_ghosts)
    peer.left_child = map_snapshot(net, position.left_child(), cache, include_ghosts)
    peer.right_child = map_snapshot(
        net, position.right_child(), cache, include_ghosts
    )
    peer.left_adjacent = map_snapshot(
        net, inorder_neighbor_position(net, position, LEFT), cache, include_ghosts
    )
    peer.right_adjacent = map_snapshot(
        net, inorder_neighbor_position(net, position, RIGHT), cache, include_ghosts
    )
    peer.left_table = RoutingTable(owner=position, side=LEFT)
    peer.right_table = RoutingTable(owner=position, side=RIGHT)
    for side in (LEFT, RIGHT):
        table = peer.table_on(side)
        entries = table.entries
        for index in table.valid_indices():
            # Direct assignment: the snapshot is built *at* the slot's
            # position, so RoutingTable.set's position check can never
            # fire here, and this loop runs N·log N times per sweep.
            entries[index] = map_snapshot(
                net, table.position_at(index), cache, include_ghosts
            )


def rebuild_after_moves(
    net: "BatonNetwork",
    movers: Sequence[BatonPeer],
    pre_link_addresses: set[Address],
    changed_slots: Optional[set[Position]] = None,
) -> None:
    """Restore link consistency around a set of moved peers.

    Refreshes, in order: the movers themselves; every peer that linked to a
    mover before or after the shift; and the linkers of every peer whose
    *child attributes* changed (their entries about that peer are stale).
    ``changed_slots`` — the set of tree slots whose occupancy changed — lets
    callers scope that last ring precisely; without it the helper falls back
    to the (safe, wider) linkers-of-the-whole-first-ring sweep.  Charges
    each mover one RESTRUCTURE message per rebuilt link.
    """
    # Ghost-held slots stay linked: until repaired, a dead peer still owns
    # its slot, and erasing links to it would let another repair move its
    # parent away and orphan the slot.
    include_ghosts = bool(net.ghosts)
    cache: dict = {}
    mover_addresses = {peer.address for peer in movers}
    for peer in movers:
        refresh_links_from_map(net, peer, cache, include_ghosts)

    first_ring: set[Address] = set(pre_link_addresses)
    for peer in movers:
        first_ring.update(peer.link_addresses())
    first_ring -= mover_addresses
    for address in sorted(first_ring):
        neighbor = net.peers.get(address)
        if neighbor is not None:
            refresh_links_from_map(net, neighbor, cache, include_ghosts)

    # Entries *about* a peer go stale only when that peer's own attributes
    # change; for non-movers that means "one of its child slots changed
    # occupant".  Those parents sit in the first ring (already refreshed);
    # here we refresh whoever links to them.
    second_ring: set[Address] = set()
    if changed_slots is not None:
        changed_parents: set[Address] = set()
        for slot in changed_slots:
            parent_slot = slot.parent()
            if parent_slot is None:
                continue
            address = net.occupant(parent_slot)
            if address is not None and address not in mover_addresses:
                changed_parents.add(address)
        for address in sorted(changed_parents):
            neighbor = net.peers.get(address)
            if neighbor is not None:
                second_ring.update(neighbor.link_addresses())
    else:
        for address in sorted(first_ring):
            neighbor = net.peers.get(address)
            if neighbor is not None:
                second_ring.update(neighbor.link_addresses())
    second_ring -= mover_addresses | first_ring
    for address in sorted(second_ring):
        neighbor = net.peers.get(address)
        if neighbor is not None:
            refresh_links_from_map(net, neighbor, cache, include_ghosts)

    for peer in movers:
        for target in peer.link_addresses():
            try:
                net.count_message(peer.address, target, MsgType.RESTRUCTURE)
            except PeerNotFoundError:
                continue


# ---------------------------------------------------------------------------
# Forced insert (rightward shift)
# ---------------------------------------------------------------------------


def _can_park_at(
    net: "BatonNetwork", info: Optional[NodeInfo], direction: str
) -> Optional[BatonPeer]:
    """Directional parking test: an adjacent with the facing child slot
    empty that can accept a child without violating Theorem 1."""
    if info is None:
        return None
    peer = net.peers.get(info.address)
    if peer is None:
        return None
    facing_child = peer.left_child if direction == RIGHT else peer.right_child
    if facing_child is None and peer.tables_full():
        return peer
    return None


def plan_insert_chain(
    net: "BatonNetwork", anchor: BatonPeer, side: str, direction: str = RIGHT
) -> tuple[List[BatonPeer], Position, bool]:
    """Decide which peers shift along ``direction`` and where the last parks.

    Returns ``(displaced, parking_position, safely_parked)``; the newcomer
    will occupy the first displaced peer's slot (or, for an empty chain, the
    parking slot directly).  ``safely_parked`` is False when the chain ran
    off the extreme of the tree and parked without the Theorem 1 check.
    Walks only adjacent links, one counted message per hop.

    ``side`` says where the newcomer lands relative to the anchor in key
    order (LEFT = immediately before it); ``direction`` which way existing
    peers shift to make room.  Both directions preserve in-order order; the
    caller may plan both and apply the shorter — the paper's observation
    that "much smaller shifts ... at each end" usually suffice.
    """
    along = direction  # the adjacency pointer the walk follows
    # Which peer is displaced first?  Shifting the same way the newcomer
    # leans means the anchor itself moves; otherwise its neighbour does.
    anchor_moves = (side == LEFT) == (direction == RIGHT)
    if anchor_moves:
        first: Optional[BatonPeer] = anchor
    else:
        neighbor_info = anchor.adjacent_on(along)
        if neighbor_info is None:
            # No neighbour that way: the newcomer slots in directly as the
            # anchor's child on that side, no shifting required.
            child_slot = (
                anchor.position.right_child()
                if direction == RIGHT
                else anchor.position.left_child()
            )
            return [], child_slot, anchor.tables_full()
        net.count_message(anchor.address, neighbor_info.address, MsgType.RESTRUCTURE)
        first = net.peer(neighbor_info.address)
    displaced: List[BatonPeer] = []
    current = first
    for _ in range(net.size + 2):
        displaced.append(current)
        next_info = current.adjacent_on(along)
        parking_host = _can_park_at(net, next_info, direction)
        if next_info is None:
            # Displaced the extreme peer: it parks as the child of whoever
            # takes its old slot, on the outward side.
            slot = (
                current.position.right_child()
                if direction == RIGHT
                else current.position.left_child()
            )
            return displaced, slot, False  # extreme fallback, unchecked
        net.count_message(current.address, next_info.address, MsgType.RESTRUCTURE)
        if parking_host is not None:
            slot = (
                parking_host.position.left_child()
                if direction == RIGHT
                else parking_host.position.right_child()
            )
            return displaced, slot, True
        current = net.peer(next_info.address)
    raise ProtocolError("insert-restructuring chain did not terminate")


def apply_insert_chain(
    net: "BatonNetwork",
    newcomer: BatonPeer,
    displaced: List[BatonPeer],
    parking: Position,
) -> None:
    """Execute the planned shift and rebuild links. ``newcomer`` must not be
    registered yet; displaced peers slide one slot toward ``parking``."""
    pre_links: set[Address] = set()
    for peer in displaced:
        pre_links.update(peer.link_addresses())

    old_positions = [peer.position for peer in displaced]
    if displaced:
        newcomer.move_to(old_positions[0])
        new_positions = old_positions[1:] + [parking]
        for peer, new_position in zip(displaced, new_positions):
            old = peer.position
            peer.move_to(new_position)
            net.record_move(peer, old)
    else:
        newcomer.move_to(parking)
    net.register_peer(newcomer)
    changed_slots = set(old_positions) | {parking}
    rebuild_after_moves(net, [newcomer] + displaced, pre_links, changed_slots)
    net.stats.restructure_shift_sizes.append(len(displaced))


# ---------------------------------------------------------------------------
# Forced removal (fill the vacated slot by shifting predecessors right)
# ---------------------------------------------------------------------------


def _safe_to_vacate(peer: BatonPeer) -> bool:
    """Whether removing this peer's slot keeps Theorem 1 satisfied."""
    if not peer.is_leaf:
        return False
    return not peer.left_table.nodes_with_children() and not (
        peer.right_table.nodes_with_children()
    )


def plan_removal_chain(
    net: "BatonNetwork", start_info: Optional[NodeInfo], direction: str
) -> Optional[List[BatonPeer]]:
    """Peers that shift to fill a vacated slot, ending at a safe leaf.

    ``direction`` is the side the chain walks toward (LEFT fills from
    predecessors, the paper's default; RIGHT is the mirror fallback).
    Returns None when no safe leaf exists in that direction.
    """
    chain: List[BatonPeer] = []
    info = start_info
    for _ in range(net.size + 2):
        if info is None:
            return None
        peer = net.peers.get(info.address)
        if peer is None:
            return None
        chain.append(peer)
        if _safe_to_vacate(peer):
            return chain
        next_info = peer.adjacent_on(direction)
        if next_info is not None:
            net.count_message(peer.address, next_info.address, MsgType.RESTRUCTURE)
        info = next_info
    raise ProtocolError("removal-restructuring chain did not terminate")


def apply_removal_chain(
    net: "BatonNetwork",
    vacated: Position,
    chain: List[BatonPeer],
    extra_pre_links: set[Address],
) -> None:
    """Shift ``chain`` so the first member fills ``vacated``; the last
    member's old (safe leaf) slot disappears."""
    pre_links: set[Address] = set(extra_pre_links)
    for peer in chain:
        pre_links.update(peer.link_addresses())
    old_positions = [peer.position for peer in chain]
    new_positions = [vacated] + old_positions[:-1]
    for peer, new_position in zip(chain, new_positions):
        old = peer.position
        peer.move_to(new_position)
        net.record_move(peer, old)
    changed_slots = set(old_positions) | {vacated}
    rebuild_after_moves(net, chain, pre_links, changed_slots)
    net.stats.restructure_shift_sizes.append(len(chain))


# ---------------------------------------------------------------------------
# High-level forced operations used by load balancing
# ---------------------------------------------------------------------------


def forced_add_child(
    net: "BatonNetwork",
    parent: BatonPeer,
    side: str,
    peer: BatonPeer,
) -> int:
    """Attach ``peer`` as ``parent``'s child even if that forces a shift.

    Used by §IV-D when a lightly loaded leaf rejoins under an overloaded
    node.  Returns the number of peers shifted (0 for a clean join).
    """
    from repro.core import join as join_protocol

    if parent.child_on(side) is None and parent.can_accept_child():
        join_protocol.add_child(net, parent, side, peer=peer)
        return 0
    # Either Theorem 1 would be violated or the slot is taken (the anchor
    # may have gained children while the recruit was departing): split the
    # content, then shift the in-order chain.  The chain is well-defined
    # for internal anchors too — occupants shuffle between slots while the
    # slots keep their subtrees.

    # Theorem 1 would be violated: split content, then shift.
    pivot = join_protocol.choose_split_pivot(net, parent)
    if side == LEFT:
        child_range, parent_range = parent.range.split_at(pivot)
        moved_keys = parent.store.split_below(pivot)
    else:
        parent_range, child_range = parent.range.split_at(pivot)
        moved_keys = parent.store.split_at_or_above(pivot)
    parent.range = parent_range
    peer.range = child_range
    peer.store.extend(moved_keys)

    # Plan both shift directions; prefer a safely-parked chain, then the
    # shorter one — the paper's shifts stay short because "suitable spots"
    # are found near each end.
    plans = [
        plan_insert_chain(net, parent, side, RIGHT),
        plan_insert_chain(net, parent, side, LEFT),
    ]
    plans.sort(key=lambda plan: (not plan[2], len(plan[0])))
    displaced, parking, _safe = plans[0]
    apply_insert_chain(net, peer, displaced, parking)
    net.count_message(
        parent.address, peer.address, MsgType.JOIN_TRANSFER, keys=len(moved_keys)
    )
    # The anchor's range shrank in the split; when it was not itself moved
    # by the chain its linkers still hold the old range.
    net.broadcast_update(parent)
    return len(displaced)


def depart_with_restructure(
    net: "BatonNetwork", leaf: BatonPeer, content_target: str
) -> int:
    """Remove ``leaf`` even though its departure is not balance-safe.

    Its range/content go to ``content_target`` (see
    :func:`repro.core.leave.depart_leaf`); the vacated slot is filled by an
    in-order shift.  Returns the number of peers shifted.
    """
    from repro.core import leave as leave_protocol

    if not leaf.is_leaf:
        raise ProtocolError("only leaves depart via restructuring")
    leave_protocol._hand_over_content(net, leaf, content_target)
    vacated = leaf.position
    predecessor = leaf.left_adjacent
    successor = leaf.right_adjacent
    pre_links = set(leaf.link_addresses())
    net.unregister_peer(leaf.address)

    chain = plan_removal_chain(net, predecessor, LEFT)
    alternative = plan_removal_chain(net, successor, RIGHT)
    if chain is None or (alternative is not None and len(alternative) < len(chain)):
        chain = alternative
    if chain is None:
        # Both directions exhausted: the tree is tiny; simply dropping the
        # leaf slot cannot unbalance anything observable.
        rebuild_after_moves(net, [], pre_links)
        net.stats.restructure_shift_sizes.append(0)
        return 0
    apply_removal_chain(net, vacated, chain, pre_links)
    return len(chain)
