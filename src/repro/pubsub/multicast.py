"""Range multicast over the tree, with its unicast and flood baselines.

One message must reach *every* peer owning part of a key range.  The tree
already maintains exactly the links that make this cheap (§III's
parent/child/adjacent/sideways set): the primitive here routes the message
to the owner of the range midpoint — the peer sitting nearest the range's
subtree LCA — and then **delegates disjoint sub-intervals** outward.  At
each hop the carrier splits the part of the interval it does not own at
the advertised range boundaries of its same-side links (sideways table
entries, child, adjacent) and hands each slice to the link whose range
anchors it, so in a quiescent network every owner receives exactly one
message: an O(log N)-hop route plus |owners| − 1 fan-out messages, at
O(log N) critical-path depth (the sideways entries at distance 2^i act as
the multicast skip list).  This is the tree-structured dissemination of
"Optimally Efficient Prefix Search and Multicast in Structured P2P
Networks" (PAPERS.md) transplanted onto BATON's link set.

Under churn the advertised boundaries can be stale, so a peer may be
reached twice; the per-dissemination id (:mod:`repro.pubsub.state`) makes
re-delivery harmless.  Dead delegates cost their counted message and drop
their slice (``complete=False``), the same best-effort semantics the
search path has while repair runs.

Two honest baselines calibrate the claim: :func:`unicast_steps` routes one
message per owner from the same entry point (owner *discovery* is an
oracle enumeration — see :func:`range_owners` — a cost-model substitution
that favors the baseline), and :func:`flood_steps` is first-receipt gossip
over every link, the no-structure price.  All three are step generators:
the sync facades drive them atomically, the event runtime prices each
yielded hop per link, and both execute the same code (DESIGN.md,
serialized equivalence).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING, Tuple

from repro.core.links import LEFT, RIGHT, NodeInfo
from repro.core.peer import BatonPeer
from repro.core.ranges import Range
from repro.core.search import (
    first_live_hop,
    hop_candidates,
    hop_limit,
    network_degraded,
)
from repro.net.address import Address
from repro.net.message import MsgType
from repro.pubsub.state import apply_delivery
from repro.sim.topology import Hop
from repro.util.errors import PeerNotFoundError, ProtocolError

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork
    from repro.net.bus import Trace


@dataclass
class MulticastResult:
    """What one dissemination did: who got it, and what it cost."""

    message_id: int
    range: Range
    #: Owners that applied the message, in delivery order.
    delivered: Tuple[Address, ...]
    #: Protocol messages delivered (route + fan-out; attempts to peers
    #: that died concurrently are still counted on the bus/trace).
    messages: int
    route_hops: int
    fanout_messages: int
    #: Critical-path length in hops below the anchor (fan-out rounds for
    #: the tree strategy, the longest single route for unicast, BFS radius
    #: for flood).
    depth: int
    #: False when a slice of the range was dropped at a dead delegate or
    #: the route gave up in a degraded network.
    complete: bool
    #: Arrivals the per-peer dedup window suppressed (stale links, multi-
    #: path flooding) — counted as traffic, never applied twice.
    duplicates_suppressed: int
    trace: Optional["Trace"] = None

    @property
    def owners_delivered(self) -> int:
        return len(self.delivered)


def route_steps(
    net: "BatonNetwork",
    start: Address,
    key: int,
    mtype: MsgType,
    *,
    size: float = 1.0,
    degraded: Optional[Callable[[], bool]] = None,
):
    """Route toward ``key``'s owner, yielding one Hop per forwarding step.

    The same candidate walk as :func:`repro.core.search.route_to_owner`,
    written as a generator so the event runtime can price each hop.
    Returns ``(reached address, hops)``; like the search path, a degraded
    network (``degraded()`` truthy) downgrades dead ends to best-effort
    stops instead of protocol errors.
    """
    if degraded is None:
        def degraded() -> bool:
            return network_degraded(net)
    limit = hop_limit(net)
    current = start
    hops = 0
    for _ in range(limit):
        peer = net.peer(current)
        if peer.range.contains(key):
            return current, hops
        primary, fallback = hop_candidates(peer, key)
        if not primary:
            return current, hops  # extreme peer; key beyond the domain
        next_hop = first_live_hop(net, current, primary + fallback, mtype)
        if next_hop is None:
            if degraded():
                return current, hops
            raise ProtocolError(
                f"all routes from {peer.position} toward {key} are dead"
            )
        yield Hop(current, next_hop, size=size)
        hops += 1
        current = next_hop
    if degraded():
        return current, hops
    raise ProtocolError(f"dissemination route toward {key} did not terminate")


def _side_candidates(peer: BatonPeer, side: str) -> List[NodeInfo]:
    """The ``side`` links a carrier can delegate to, deduplicated."""
    infos: dict[Address, NodeInfo] = {}
    for _, info in peer.table_on(side).occupied():
        infos.setdefault(info.address, info)
    child = peer.child_on(side)
    if child is not None:
        infos.setdefault(child.address, child)
    adjacent = peer.adjacent_on(side)
    if adjacent is not None:
        infos.setdefault(adjacent.address, adjacent)
    return list(infos.values())


def _partition(
    peer: BatonPeer, remainder: Range, side: str
) -> List[Tuple[Address, Range]]:
    """Split ``remainder`` among ``peer``'s ``side`` links.

    Cut points are the links' advertised range boundaries, so each slice
    starts inside (or at the near edge of) its delegate's own range: the
    delegate applies the message locally and recurses on what is left,
    which is what makes the fan-out one message per owner.  The slice
    touching the near edge goes to the link closest to it from outside
    (the adjacent node in a consistent network), covering any gap the
    same-level entries leave.
    """
    candidates = _side_candidates(peer, side)
    coverer: Optional[NodeInfo] = None
    inside: List[NodeInfo] = []
    if side == RIGHT:
        candidates.sort(key=lambda info: (info.range.low, int(info.address)))
        for info in candidates:
            if info.range.low <= remainder.low:
                coverer = info  # last wins: largest low at or below the edge
            elif info.range.low < remainder.high:
                inside.append(info)
        selected = ([coverer] if coverer is not None else []) + inside
        parts: List[Tuple[Address, Range]] = []
        for index, info in enumerate(selected):
            start = remainder.low if index == 0 else info.range.low
            end = (
                selected[index + 1].range.low
                if index + 1 < len(selected)
                else remainder.high
            )
            if start < end:
                parts.append((info.address, Range(start, end)))
        return parts
    candidates.sort(key=lambda info: (-info.range.high, int(info.address)))
    for info in candidates:
        if info.range.high >= remainder.high:
            coverer = info  # last wins: smallest high at or above the edge
        elif info.range.high > remainder.low:
            inside.append(info)
    selected = ([coverer] if coverer is not None else []) + inside
    parts = []
    for index, info in enumerate(selected):
        end = remainder.high if index == 0 else info.range.high
        start = (
            selected[index + 1].range.high
            if index + 1 < len(selected)
            else remainder.low
        )
        if start < end:
            parts.append((info.address, Range(start, end)))
    return parts


def _remainders(peer: BatonPeer, interval: Range) -> List[Tuple[Range, str]]:
    """The parts of ``interval`` strictly outside ``peer``'s own range."""
    out: List[Tuple[Range, str]] = []
    left_end = min(interval.high, peer.range.low)
    if interval.low < left_end:
        out.append((Range(interval.low, left_end), LEFT))
    right_start = max(interval.low, peer.range.high)
    if right_start < interval.high:
        out.append((Range(right_start, interval.high), RIGHT))
    return out


def multicast_steps(
    net: "BatonNetwork",
    start: Address,
    low: int,
    high: int,
    *,
    size: float = 1.0,
    degraded: Optional[Callable[[], bool]] = None,
):
    """Deliver one message to every peer owning part of ``[low, high)``.

    Route to the owner of the range midpoint, then breadth-first delegate
    disjoint sub-intervals over the same-side links (see the module
    docstring for why this is |owners| − 1 fan-out messages at O(log N)
    depth).  Every delegation is a counted ``MULTICAST`` message and a
    yielded hop; application is deduplicated per dissemination id.
    """
    if low >= high:
        raise ValueError(f"empty multicast range [{low}, {high})")
    state = net.pubsub
    message_id = state.new_message_id()
    target = Range(low, high)
    anchor_key = low + (high - low) // 2
    anchor, route_hops = yield from route_steps(
        net, start, anchor_key, MsgType.MULTICAST, size=size, degraded=degraded
    )
    delivered: List[Address] = []
    suppressed = 0
    fanout = 0
    depth_max = 0
    complete = True
    queue: deque = deque()
    queue.append((anchor, target, 0))
    while queue:
        address, interval, depth = queue.popleft()
        peer = net.peers.get(address)
        if peer is None:
            complete = False  # died after the delegation was sent
            continue
        if depth > depth_max:
            depth_max = depth
        if peer.range.overlaps(interval):
            if apply_delivery(state, peer, message_id):
                delivered.append(address)
            else:
                suppressed += 1
        for remainder, side in _remainders(peer, interval):
            parts = _partition(peer, remainder, side)
            if not parts:
                # No link on that side: at the extreme peers the slice is
                # beyond the covered domain (no owners exist there); any
                # other linkless corner means owners were unreachable.
                if peer.adjacent_on(side) is not None:
                    complete = False
                continue
            for delegate, part in parts:
                try:
                    net.count_message(address, delegate, MsgType.MULTICAST)
                except PeerNotFoundError:
                    complete = False  # paid for, slice dropped (§III-D style)
                    continue
                fanout += 1
                yield Hop(address, delegate, size=size)
                queue.append((delegate, part, depth + 1))
    return MulticastResult(
        message_id=message_id,
        range=target,
        delivered=tuple(delivered),
        messages=route_hops + fanout,
        route_hops=route_hops,
        fanout_messages=fanout,
        depth=depth_max,
        complete=complete,
        duplicates_suppressed=suppressed,
    )


def range_owners(net: "BatonNetwork", low: int, high: int) -> List[BatonPeer]:
    """Every live peer owning part of ``[low, high)``, in key order.

    Oracle enumeration through the global peer map — sanctioned by the
    honesty rules only as a *cost-model substitution*: the unicast baseline
    gets owner discovery for free, so the tree multicast's measured
    advantage is a lower bound, and tests use it as the ground truth the
    dissemination must match.
    """
    target = Range(low, high)
    owners = [peer for peer in net.peers.values() if peer.range.overlaps(target)]
    owners.sort(key=lambda peer: peer.range.low)
    return owners


def unicast_steps(
    net: "BatonNetwork",
    start: Address,
    low: int,
    high: int,
    *,
    size: float = 1.0,
    degraded: Optional[Callable[[], bool]] = None,
):
    """Per-owner unicast baseline: one full route per owner.

    Owner discovery is free (see :func:`range_owners`), so the whole cost
    is Σ route lengths ≈ |owners| · O(log N) messages — the price of
    ignoring the tree's fan-out structure.
    """
    if low >= high:
        raise ValueError(f"empty multicast range [{low}, {high})")
    state = net.pubsub
    message_id = state.new_message_id()
    target = Range(low, high)
    delivered: List[Address] = []
    suppressed = 0
    hops_total = 0
    depth_max = 0
    complete = True
    for owner in range_owners(net, low, high):
        key = max(low, owner.range.low)
        reached, hops = yield from route_steps(
            net, start, key, MsgType.MULTICAST, size=size, degraded=degraded
        )
        hops_total += hops
        if hops > depth_max:
            depth_max = hops
        peer = net.peers.get(reached)
        if peer is None or not peer.range.overlaps(target):
            complete = False
            continue
        if apply_delivery(state, peer, message_id):
            delivered.append(reached)
        else:
            suppressed += 1
    return MulticastResult(
        message_id=message_id,
        range=target,
        delivered=tuple(delivered),
        messages=hops_total,
        route_hops=hops_total,
        fanout_messages=0,
        depth=depth_max,
        complete=complete,
        duplicates_suppressed=suppressed,
    )


def flood_steps(
    net: "BatonNetwork",
    start: Address,
    low: int,
    high: int,
    *,
    size: float = 1.0,
):
    """Flood baseline: first-receipt gossip over every link.

    Each peer forwards the message to all of its links except the sender
    the first time it arrives; later arrivals are absorbed (and, at
    owners, suppressed by the dedup window — the multi-path duplicates are
    real traffic).  Total cost is one message per directed link touched,
    Θ(N · avg degree), independent of how small the target range is.
    """
    state = net.pubsub
    message_id = state.new_message_id()
    target = Range(low, high)
    delivered: List[Address] = []
    suppressed = 0
    messages = 0
    depth_max = 0
    forwarded: set[Address] = set()
    queue: deque = deque()
    queue.append((start, None, 0))
    while queue:
        address, sender, depth = queue.popleft()
        peer = net.peers.get(address)
        if peer is None:
            continue
        if peer.range.overlaps(target):
            if apply_delivery(state, peer, message_id):
                delivered.append(address)
            else:
                suppressed += 1
        if address in forwarded:
            continue  # duplicate arrival: absorbed, not re-forwarded
        forwarded.add(address)
        if depth > depth_max:
            depth_max = depth
        for neighbour in peer.link_addresses():
            if neighbour == sender:
                continue
            try:
                net.count_message(address, neighbour, MsgType.MULTICAST)
            except PeerNotFoundError:
                continue
            messages += 1
            yield Hop(address, neighbour, size=size)
            queue.append((neighbour, address, depth + 1))
    return MulticastResult(
        message_id=message_id,
        range=target,
        delivered=tuple(delivered),
        messages=messages,
        route_hops=0,
        fanout_messages=messages,
        depth=depth_max,
        complete=True,
        duplicates_suppressed=suppressed,
    )
