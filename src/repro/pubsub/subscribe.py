"""The subscription layer: range subscriptions and insert notifications.

A peer subscribes to a key range; the subscription is installed at every
peer *owning* part of that range (the natural home: the owner is the
first to know when a key lands in its slice).  Installation reuses the
range-walk the §IV-B range search uses — route to the owner of the
range's low end, then walk right adjacents — one counted ``SUBSCRIBE``
message per hop.  From then on, an insert into a subscribed slice pushes
one sized ``NOTIFY`` hop per matching subscription from the owner to the
subscriber, stamped with a fresh dissemination id so a duplicated hop is
applied once (:mod:`repro.pubsub.state`).

Subscription tables are *owner state tied to the range, not the peer*:
every restructure that moves keys must move the overlapping subscription
entries with them, or notifications silently stop after a leave or a load
balance.  :func:`transfer_subscriptions` is that hook — the join split,
the leave handover and the balance key-shift all call it alongside their
key movement, and the handover hops are sized to include the entries
carried (DESIGN.md, "Dissemination contract").  Crash *loses* the owner's
entries like it loses its keys: subscriptions are soft state, and
durability for them is out of scope (re-subscribe is the recovery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING, Tuple

from repro.core.peer import BatonPeer
from repro.core.ranges import Range
from repro.core.search import anchors_range, hop_limit
from repro.net.address import Address
from repro.net.message import MsgType
from repro.pubsub.multicast import route_steps
from repro.pubsub.state import apply_delivery
from repro.sim.topology import Hop
from repro.util.errors import PeerNotFoundError

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork
    from repro.net.bus import Trace


@dataclass(frozen=True)
class Subscription:
    """One standing range subscription, as stored at each range owner."""

    sub_id: int
    subscriber: Address
    range: Range


@dataclass
class SubscribeResult:
    """Where a subscription landed and what installing it cost."""

    sub_id: int
    subscriber: Address
    range: Range
    #: Owners holding the entry after the walk, in key order.
    owners: Tuple[Address, ...]
    messages: int
    #: False when the walk was cut short by a dead adjacent or a degraded
    #: route — some owners may not hold the entry until re-subscribed.
    complete: bool
    trace: Optional["Trace"] = None


def install_subscription(peer: BatonPeer, sub: Subscription) -> bool:
    """Record ``sub`` in ``peer``'s table; False if already present.

    The table is lazily allocated so peers outside any subscribed range
    carry ``None`` and cost nothing.
    """
    table = peer.subscriptions
    if table is None:
        table = peer.subscriptions = {}
    if sub.sub_id in table:
        return False
    table[sub.sub_id] = sub
    return True


def subscribe_steps(
    net: "BatonNetwork",
    subscriber: Address,
    low: int,
    high: int,
    *,
    degraded=None,
):
    """Install a subscription for ``[low, high)`` at every range owner.

    Routes from the subscriber to the owner of ``low``, then walks right
    adjacents over the range (the §IV-B expansion), installing the entry
    at each overlapping owner.
    """
    if low >= high:
        raise ValueError(f"empty subscription range [{low}, {high})")
    state = net.pubsub
    sub = Subscription(state.new_subscription_id(), subscriber, Range(low, high))
    first, route_hops = yield from route_steps(
        net, subscriber, low, MsgType.SUBSCRIBE, degraded=degraded
    )
    owners: List[Address] = []
    installs = 0
    complete = anchors_range(net.peer(first), low)
    walk_hops = 0
    current = first
    limit = hop_limit(net) + net.size
    for _ in range(limit):
        peer = net.peer(current)
        if peer.range.low >= high:
            break
        if peer.range.overlaps(sub.range):
            if install_subscription(peer, sub):
                installs += 1
            owners.append(current)
        if peer.range.high >= high or peer.right_adjacent is None:
            break
        next_hop = peer.right_adjacent.address
        try:
            net.count_message(current, next_hop, MsgType.SUBSCRIBE)
        except PeerNotFoundError:
            complete = False  # chain broken; repair restores it
            break
        yield Hop(current, next_hop)
        walk_hops += 1
        current = next_hop
    else:
        complete = False
    state.subscriptions_installed += installs
    return SubscribeResult(
        sub_id=sub.sub_id,
        subscriber=subscriber,
        range=sub.range,
        owners=tuple(owners),
        messages=route_hops + walk_hops,
        complete=complete,
    )


def notify_steps(net: "BatonNetwork", owner: BatonPeer, key: int):
    """Push notifications for an insert of ``key`` at ``owner``.

    One sized ``NOTIFY`` hop per matching subscription, each stamped with
    its own dissemination id and applied at the subscriber exactly once.
    A subscriber that died is paid for (the send is counted before the
    bus raises) and its entry pruned — soft state, like the subscription
    tables themselves.  Returns the number of notifications delivered.
    """
    table = owner.subscriptions
    if not table:
        return 0
    state = net.pubsub
    sent = 0
    for sub in list(table.values()):
        if not sub.range.contains(key):
            continue
        message_id = state.new_message_id()
        try:
            net.count_message(
                owner.address, sub.subscriber, MsgType.NOTIFY, key=key
            )
        except PeerNotFoundError:
            del table[sub.sub_id]
            continue
        yield Hop(owner.address, sub.subscriber, size=1.0)
        subscriber = net.peers.get(sub.subscriber)
        if subscriber is not None:
            apply_delivery(state, subscriber, message_id)
        state.notifications += 1
        sent += 1
    return sent


def transfer_subscriptions(
    net: "BatonNetwork", source: BatonPeer, target: BatonPeer
) -> int:
    """Re-home subscription entries after keys moved from source to target.

    Called by the join split, the leave handover and the balance shift
    *after* the ranges have been updated: every source entry overlapping
    the target's new range is copied over (an entry spanning both ranges
    legitimately lives at both owners), and entries that no longer overlap
    the source's own range are dropped from it.  Returns the number of
    entries newly installed at the target — the payload the callers add to
    their sized handover hops.
    """
    table = source.subscriptions
    if not table:
        return 0
    moved = 0
    for sub in list(table.values()):
        if sub.range.overlaps(target.range):
            if install_subscription(target, sub):
                moved += 1
        if not sub.range.overlaps(source.range):
            del table[sub.sub_id]
    net.pubsub.subscription_moves += moved
    return moved
