"""Dissemination bookkeeping: message ids and exactly-once counters.

Every dissemination (one range multicast, one insert notification) is
stamped with a network-wide **dissemination id** drawn here.  Receivers
record the ids they have applied in a bounded per-peer window, so a
message that reaches a peer twice — a stale sideways link during a
restructure, a `FaultPlan`-duplicated hop, a flood arriving over two
paths — is *counted* as traffic but *applied* exactly once.  That is the
"exactly-once application over at-least-once delivery" half of DESIGN.md's
"Dissemination contract"; the counters kept on :class:`PubSubState` are
what the experiments and the workload report read to prove it (zero
``duplicates_suppressed`` arrivals ever applied twice under a lossy plan).

This module is deliberately import-free of the core packages: the state
object hangs off :class:`~repro.core.network.BatonNetwork` and the dedup
window hangs off each peer, but nothing here depends on either.
"""

from __future__ import annotations

import itertools
from typing import Dict

#: Bounded per-peer dedup window: how many dissemination ids a peer
#: remembers, oldest evicted first.  Stands in for the timed garbage
#: collection a deployment would run; ids are monotone, so a window this
#: deep only forgets ids long since settled.
SEEN_WINDOW = 4096


class PubSubState:
    """Network-wide dissemination counters and id allocators.

    One instance per network (``net.pubsub``).  Allocators are plain
    monotone counters — ids only need to be unique within one network, and
    determinism matters more than unguessability here.
    """

    __slots__ = (
        "_message_ids",
        "_subscription_ids",
        "applications",
        "duplicates_suppressed",
        "notifications",
        "subscriptions_installed",
        "subscription_moves",
    )

    def __init__(self) -> None:
        self._message_ids = itertools.count(1)
        self._subscription_ids = itertools.count(1)
        #: First-time applications of a dissemination at a peer.
        self.applications = 0
        #: Arrivals suppressed by the per-peer dedup window: each was
        #: counted as traffic but *not* re-applied.  Duplicate applications
        #: are zero by construction — this counter is the proof the window
        #: fired instead of a second application happening.
        self.duplicates_suppressed = 0
        #: Insert notifications pushed to subscribers.
        self.notifications = 0
        #: Subscription entries installed at range owners.
        self.subscriptions_installed = 0
        #: Subscription entries re-homed by join/leave/balance handovers.
        self.subscription_moves = 0

    def new_message_id(self) -> int:
        """A fresh dissemination id (one per multicast / notification)."""
        return next(self._message_ids)

    def new_subscription_id(self) -> int:
        return next(self._subscription_ids)

    def as_dict(self) -> Dict[str, int]:
        return {
            "applications": self.applications,
            "duplicates_suppressed": self.duplicates_suppressed,
            "notifications": self.notifications,
            "subscriptions_installed": self.subscriptions_installed,
            "subscription_moves": self.subscription_moves,
        }


def apply_delivery(state: PubSubState, peer, message_id: int) -> bool:
    """Apply dissemination ``message_id`` at ``peer`` exactly once.

    Returns True on first application, False (and counts a suppressed
    duplicate) when the peer has already applied this id.  The window is
    lazily allocated — peers that never receive a dissemination carry
    ``None`` and cost nothing, which is what keeps pub/sub-free runs
    event-for-event identical to the historical fast path.
    """
    seen = peer.seen_messages
    if seen is None:
        seen = peer.seen_messages = {}
    if message_id in seen:
        state.duplicates_suppressed += 1
        return False
    seen[message_id] = None
    if len(seen) > SEEN_WINDOW:
        del seen[next(iter(seen))]
    state.applications += 1
    return True
