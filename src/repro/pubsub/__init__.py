"""Pub/sub over the tree: range multicast, subscriptions, notifications.

The dissemination subsystem (DESIGN.md, "Dissemination contract").  Three
pieces, all written as step generators so the sync facades and the event
runtime execute the same code:

* :mod:`repro.pubsub.multicast` — the range-multicast primitive (route to
  the range's LCA region, delegate disjoint sub-intervals over the tree
  links; one message per owner plus an O(log N) route) and its per-owner
  unicast and flood baselines;
* :mod:`repro.pubsub.subscribe` — range subscriptions stored at range
  owners, carried across join/leave/balance restructures, and the insert
  notification push;
* :mod:`repro.pubsub.state` — per-dissemination ids and the bounded
  per-peer dedup window that turns at-least-once delivery into
  exactly-once application.

Only BATON implements the ``multicast``/``subscribe`` capabilities: the
primitive leans on order-preserving ranges and the adjacent/sideways link
set, which the hashed Chord ring and the multiway baseline do not offer.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.net.address import Address
from repro.pubsub.multicast import (
    MulticastResult,
    flood_steps,
    multicast_steps,
    range_owners,
    unicast_steps,
)
from repro.pubsub.state import PubSubState, SEEN_WINDOW, apply_delivery
from repro.pubsub.subscribe import (
    SubscribeResult,
    Subscription,
    install_subscription,
    notify_steps,
    subscribe_steps,
    transfer_subscriptions,
)
from repro.util.stepper import drive

if TYPE_CHECKING:
    from repro.core.network import BatonNetwork


def multicast(
    net: "BatonNetwork", low: int, high: int, via: Optional[Address] = None
) -> MulticastResult:
    """Synchronous facade: deliver to every owner of ``[low, high)``."""
    start = via if via is not None else net.random_peer_address()
    with net.open_trace("multicast") as trace:
        result = drive(multicast_steps(net, start, low, high))
    result.trace = trace
    return result


def subscribe(
    net: "BatonNetwork", subscriber: Address, low: int, high: int
) -> SubscribeResult:
    """Synchronous facade: install a subscription at every range owner."""
    with net.open_trace("subscribe") as trace:
        result = drive(subscribe_steps(net, subscriber, low, high))
    result.trace = trace
    return result


__all__ = [
    "MulticastResult",
    "PubSubState",
    "SEEN_WINDOW",
    "SubscribeResult",
    "Subscription",
    "apply_delivery",
    "flood_steps",
    "install_subscription",
    "multicast",
    "multicast_steps",
    "notify_steps",
    "range_owners",
    "subscribe",
    "subscribe_steps",
    "transfer_subscriptions",
    "unicast_steps",
]
