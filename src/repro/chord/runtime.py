"""Event-driven Chord runtime: finger hops as scheduled simulator events.

:class:`AsyncChordNetwork` drives a :class:`~repro.chord.network.ChordNetwork`
through the shared :class:`~repro.sim.runtime.AsyncOverlayRuntime` machinery.
Every lookup resumes the network's own step generators one finger hop at a
time, so Chord joins, leaves, lookups and ring scans interleave with each
other on the same clock the BATON runtime uses — the substrate for the
paper's three-way concurrent comparison.

Concurrency semantics (see :mod:`repro.chord.network` for the protocol-side
guarantees):

* Ring splices (join/leave successor rewiring) are atomic segments, so the
  successor ring is consistent at every event boundary; finger maintenance
  is best-effort under churn, as in the real protocol.
* An operation whose carrier node departs mid-flight fails with
  :class:`~repro.util.errors.PeerNotFoundError` — the client's view of a
  lost request.  A join whose find phase dies is aborted and unwound.
* Ring scans truncate (``complete=False``) when a successor vanishes
  mid-walk instead of failing the whole query, mirroring BATON's broken
  adjacent-chain behaviour.
"""

from __future__ import annotations

from repro.chord.hashing import hash_key
from repro.chord.network import ChordNetwork
from repro.core.results import JoinResult, LeaveResult
from repro.net.address import Address
from repro.net.message import MsgType
from repro.sim.runtime import AsyncOverlayRuntime, OpFuture, OpSteps
from repro.sim.topology import Hop
from repro.util.errors import ReproError


class AsyncChordNetwork(AsyncOverlayRuntime):
    """Concurrent-operation facade over a :class:`ChordNetwork`."""

    overlay_name = "chord"
    network_cls = ChordNetwork
    capabilities = frozenset()

    # -- hop generators -------------------------------------------------------
    # Queries and data ops come from the base class; the owner walk is a
    # hashed find_successor.

    def _owner_steps(self, start: Address, key: int, mtype: MsgType):
        return self.net.successor_steps(
            start, hash_key(key, self.net.m_bits), mtype
        )

    def _join_steps(self, future: OpFuture, start: Address) -> OpSteps:
        net = self.net
        yield Hop(None, start)  # the join request reaches its entry node
        node = net.spawn_node()
        try:
            successor = yield from self._lift(
                net.successor_steps(start, node.node_id, MsgType.JOIN_FIND)
            )
            yield from self._lift(net.join_update_steps(node, start, successor))
        except ReproError:
            # The find phase (or the pre-splice successor read) died under
            # churn; unwind the half-born node so the ring stays clean.
            net.abort_join(node)
            raise
        return JoinResult(
            address=node.address,
            parent=successor,
            find_trace=future.trace,
            update_trace=net.new_trace("chord.join.update"),
        )

    def _leave_steps(self, future: OpFuture, address: Address) -> OpSteps:
        net = self.net
        yield Hop(None, address)  # the departure intent is announced
        node = net.node(address)  # raises if the node already vanished
        if net.size == 1:
            del net.nodes[address]
            net.bus.unregister(address)
            return LeaveResult(
                departed=address,
                replacement=None,
                find_trace=future.trace,
                update_trace=net.new_trace("chord.leave.update"),
            )
        successor = node.successor  # known locally: no search needed
        yield from self._lift(net.leave_update_steps(node))
        return LeaveResult(
            departed=address,
            replacement=successor,
            find_trace=future.trace,
            update_trace=net.new_trace("chord.leave.update"),
        )
