"""State held by one Chord node."""

from __future__ import annotations

from typing import List, Optional

from repro.core.storage import LocalStore
from repro.net.address import Address


class ChordNode:
    """A peer on the Chord ring.

    ``finger[i]`` is the first node whose identifier succeeds
    ``(node_id + 2^i) mod 2^m`` — ``finger[0]`` doubles as the successor.
    ``store`` maps hashed keys back to the original data keys so the
    experiments can verify lookups end to end.
    """

    def __init__(self, address: Address, node_id: int, m_bits: int):
        self.address = address
        self.node_id = node_id
        self.m_bits = m_bits
        self.predecessor: Optional[Address] = None
        self.finger: List[Optional[Address]] = [None] * m_bits
        self.store = LocalStore()

    @property
    def successor(self) -> Optional[Address]:
        return self.finger[0]

    @successor.setter
    def successor(self, address: Optional[Address]) -> None:
        self.finger[0] = address

    def finger_start(self, index: int) -> int:
        """The identifier ``(node_id + 2^index) mod 2^m``."""
        return (self.node_id + (1 << index)) % (1 << self.m_bits)

    def __repr__(self) -> str:
        return f"ChordNode(addr={self.address}, id={self.node_id})"
