"""Identifier-space arithmetic for the Chord ring."""

from __future__ import annotations

DEFAULT_M_BITS = 24
"""Identifier width; 2^24 ids comfortably hosts the paper's 10^4 peers."""


def hash_key(key: int, m_bits: int = DEFAULT_M_BITS) -> int:
    """Map a data key onto the ring.

    Fibonacci (Knuth multiplicative) hashing: deterministic, fast, and —
    the property that matters here — order-destroying, which is exactly why
    Chord cannot serve range queries (§II of the BATON paper).
    """
    return (key * 2654435761) % (1 << m_bits)


def in_interval(value: int, low: int, high: int, m_bits: int = DEFAULT_M_BITS) -> bool:
    """Whether ``value`` lies in the half-open ring interval (low, high].

    Ring intervals wrap: (5, 2] on an 8-id ring is {6, 7, 0, 1, 2}.  An
    interval with ``low == high`` covers the whole ring, matching Chord's
    degenerate single-node case.
    """
    size = 1 << m_bits
    value, low, high = value % size, low % size, high % size
    if low == high:
        return True
    if low < high:
        return low < value <= high
    return value > low or value <= high


def in_open_interval(
    value: int, low: int, high: int, m_bits: int = DEFAULT_M_BITS
) -> bool:
    """Whether ``value`` lies strictly inside the ring interval (low, high)."""
    size = 1 << m_bits
    value, low, high = value % size, low % size, high % size
    if low == high:
        return value != low
    if low < high:
        return low < value < high
    return value > low or value < high


def id_distance(start: int, end: int, m_bits: int = DEFAULT_M_BITS) -> int:
    """Clockwise distance from ``start`` to ``end`` on the ring."""
    size = 1 << m_bits
    return (end - start) % size
