"""Chord baseline (Stoica et al., SIGCOMM 2001).

The paper's evaluation compares BATON against Chord on join/leave cost,
routing-table update cost and exact-match queries (Figures 8(a)–(d)).  This
is a faithful message-counting reimplementation of the classic protocol:
an m-bit identifier ring, successor/predecessor pointers, finger tables,
iterative ``find_successor`` lookups, and the original join procedure with
``init_finger_table`` + ``update_others`` — the Θ(log² N) table-update cost
the paper contrasts with BATON's O(log N).

Keys are placed by hashing, which destroys order: exact lookups are
O(log N), but a range query can only be answered by walking successor
pointers around the ring — the cliff Figure 8(e) alludes to by omitting
Chord entirely.
"""

from repro.chord.hashing import hash_key, id_distance, in_interval
from repro.chord.network import ChordConfig, ChordNetwork
from repro.chord.node import ChordNode
from repro.chord.runtime import AsyncChordNetwork

__all__ = [
    "ChordNetwork",
    "ChordConfig",
    "ChordNode",
    "AsyncChordNetwork",
    "hash_key",
    "in_interval",
    "id_distance",
]
