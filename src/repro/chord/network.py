"""The Chord ring: joins, leaves, lookups and data operations.

Message accounting mirrors the BATON side: every inter-node hop crosses the
shared :class:`~repro.net.bus.MessageBus` with a semantic category, and the
public operations return the unified result types from
:mod:`repro.core.results`, so the Figure 8 experiments read both systems
with the same code.

The routing internals are written as *step generators* (see
:mod:`repro.util.stepper`): they yield one
:class:`~repro.sim.topology.Hop` per inter-node hop, declaring which pair
of nodes the message travels between so the event-driven runtime can price
it per link.  The
synchronous facade methods drive them to completion atomically; the
event-driven runtime (:class:`repro.chord.runtime.AsyncChordNetwork`)
resumes them one simulator event at a time, so concurrent operations
interleave at finger-hop granularity while sending byte-for-byte the same
message sequence as the synchronous path.

Churn tolerance: segments that splice the ring (a join's or leave's
successor/predecessor rewiring) run atomically between yields, so the
successor ring is consistent at every event boundary.  Finger maintenance
is best-effort — a sub-lookup that hits a vanished node is skipped and the
successor pointers keep routing correct — mirroring how the real protocol
leans on stabilization rather than atomicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.chord.hashing import DEFAULT_M_BITS, hash_key, in_interval, in_open_interval
from repro.chord.node import ChordNode
from repro.core.results import (
    DataOpResult,
    JoinResult,
    LeaveResult,
    RangeSearchResult,
    SearchResult,
)
from repro.net.address import Address, AddressAllocator, AddressPoolDict
from repro.net.bus import MessageBus, Trace
from repro.net.message import MsgType
from repro.sim.topology import Hop
from repro.util.errors import NetworkEmptyError, PeerNotFoundError, ProtocolError
from repro.util.rng import SeededRng
from repro.util.stepper import MessageSteps, drive


@dataclass
class ChordConfig:
    """Ring-wide settings."""

    m_bits: int = DEFAULT_M_BITS


#: Backwards-compatible alias: Chord range scans now return the unified
#: :class:`~repro.core.results.RangeSearchResult` (owners + keys + trace +
#: ``complete`` truncation flag) instead of a private dataclass.
ChordRangeResult = RangeSearchResult


class ChordNetwork:
    """A simulated Chord ring with per-operation message traces."""

    def __init__(self, config: Optional[ChordConfig] = None, seed: int = 0):
        self.config = config or ChordConfig()
        self.rng = SeededRng(seed)
        self.bus = MessageBus()
        self.alloc = AddressAllocator()
        self.nodes: dict[Address, ChordNode] = AddressPoolDict()
        self._used_ids: set[int] = set()

    # -- bookkeeping ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def m_bits(self) -> int:
        return self.config.m_bits

    def node(self, address: Address) -> ChordNode:
        """The live node at ``address`` (raises if departed/unknown)."""
        try:
            return self.nodes[address]
        except KeyError:
            raise PeerNotFoundError(address) from None

    def addresses(self) -> List[Address]:
        return list(self.nodes)

    def random_peer_address(self) -> Address:
        """A uniformly random live node (query/join entry points)."""
        if not self.nodes:
            raise NetworkEmptyError("ring has no nodes")
        return self.nodes.random_address(self.rng)

    # Historical spelling, kept for callers written against the old API.
    random_node_address = random_peer_address

    def new_trace(self, label: str) -> Trace:
        """An empty trace (for operations that turn out to be no-ops)."""
        return Trace(label=label)

    def _new_id(self) -> int:
        space = 1 << self.m_bits
        if len(self._used_ids) >= space:
            raise ProtocolError("identifier space exhausted")
        while True:
            node_id = self.rng.randint(0, space - 1)
            if node_id not in self._used_ids:
                self._used_ids.add(node_id)
                return node_id

    @classmethod
    def build(
        cls, n_nodes: int, seed: int = 0, config: Optional[ChordConfig] = None
    ) -> "ChordNetwork":
        """Bootstrap a ring of ``n_nodes``."""
        if n_nodes < 1:
            raise ValueError("need at least one node")
        net = cls(config=config, seed=seed)
        net.bootstrap()
        for _ in range(n_nodes - 1):
            net.join()
        return net

    # -- construction ----------------------------------------------------------

    def bootstrap(self) -> Address:
        """Create the first node; it is its own successor and predecessor."""
        if self.nodes:
            raise ValueError("ring is already bootstrapped")
        node = ChordNode(self.alloc.allocate(), self._new_id(), self.m_bits)
        node.predecessor = node.address
        for i in range(self.m_bits):
            node.finger[i] = node.address
        self.nodes[node.address] = node
        self.bus.register(node.address)
        return node.address

    def spawn_node(self) -> ChordNode:
        """Allocate a node about to join.

        The node does NOT enter ``self.nodes`` yet — that happens atomically
        with the ring splice in :meth:`join_update_steps`.  Until then no
        concurrent operation can select the half-born node (successor and
        fingers still ``None``) as a query entry point or leave victim,
        which would fail it spuriously and bias the measurements.
        """
        return ChordNode(self.alloc.allocate(), self._new_id(), self.m_bits)

    def abort_join(self, node: ChordNode) -> None:
        """Withdraw a spawned node whose join died before it was spliced in."""
        if self.nodes.get(node.address) is node:
            del self.nodes[node.address]
        self.bus.unregister(node.address)
        self._used_ids.discard(node.node_id)

    def join(self, via: Optional[Address] = None) -> JoinResult:
        """Classic Chord join: lookup, init_finger_table, update_others."""
        entry = via if via is not None else self.random_peer_address()
        node = self.spawn_node()
        with self.bus.trace("chord.join.find") as find_trace:
            successor = drive(
                self.successor_steps(entry, node.node_id, MsgType.JOIN_FIND)
            )
        with self.bus.trace("chord.join.update") as update_trace:
            drive(self.join_update_steps(node, entry, successor))
        return JoinResult(
            address=node.address,
            parent=successor,
            find_trace=find_trace,
            update_trace=update_trace,
        )

    def leave(self, address: Address) -> LeaveResult:
        """Graceful departure: hand keys to the successor, repair fingers."""
        node = self.node(address)
        if self.size == 1:
            with self.bus.trace("chord.leave.update") as update_trace:
                del self.nodes[address]
                self.bus.unregister(address)
            return LeaveResult(
                departed=address,
                replacement=None,
                find_trace=Trace(label="chord.leave.find"),
                update_trace=update_trace,
            )
        with self.bus.trace("chord.leave.find") as find_trace:
            successor = node.successor  # known locally: no search needed
        with self.bus.trace("chord.leave.update") as update_trace:
            drive(self.leave_update_steps(node))
        return LeaveResult(
            departed=address,
            replacement=successor,
            find_trace=find_trace,
            update_trace=update_trace,
        )

    # -- routing (step generators) ---------------------------------------------

    def _closest_preceding_finger(self, node: ChordNode, target_id: int) -> Address:
        for i in reversed(range(self.m_bits)):
            finger = node.finger[i]
            if finger is None or finger not in self.nodes:
                continue
            finger_id = self.nodes[finger].node_id
            if in_open_interval(finger_id, node.node_id, target_id, self.m_bits):
                return finger
        return node.address

    def predecessor_steps(
        self, start: Address, target_id: int, mtype: MsgType
    ) -> MessageSteps:
        """Hop finger by finger to the node preceding ``target_id``."""
        current = start
        limit = 4 * max(self.size.bit_length(), 2) + self.size + 16
        for _ in range(limit):
            node = self.node(current)
            successor = node.successor
            successor_id = self.node(successor).node_id
            if in_interval(target_id, node.node_id, successor_id, self.m_bits):
                return current
            next_hop = self._closest_preceding_finger(node, target_id)
            if next_hop == current:
                next_hop = successor
            self.bus.send_typed(current, next_hop, mtype)
            yield Hop(current, next_hop)
            current = next_hop
        raise ProtocolError(f"chord lookup for {target_id} did not terminate")

    def successor_steps(
        self, start: Address, target_id: int, mtype: MsgType
    ) -> MessageSteps:
        """``find_successor``: predecessor walk plus the final successor hop."""
        predecessor = yield from self.predecessor_steps(start, target_id, mtype)
        successor = self.node(predecessor).successor
        if successor != predecessor:
            self.bus.send_typed(predecessor, successor, mtype)
            yield Hop(predecessor, successor)
        return successor

    # -- join helpers -------------------------------------------------------------

    def join_update_steps(
        self, node: ChordNode, entry: Address, successor: Address
    ) -> MessageSteps:
        """The join's update phase: splice, init fingers, update others.

        The ring splice (successor/predecessor rewiring) is one atomic
        segment — the newcomer becomes a ring member, visible to entry-point
        and victim selection, only here; everything after it is best-effort
        finger maintenance that tolerates nodes vanishing under churn.
        """
        succ = self.node(successor)  # raises before any wiring: join aborts
        self.nodes[node.address] = node
        self.bus.register(node.address)
        node.successor = successor
        node.predecessor = succ.predecessor
        self.bus.send_typed(node.address, successor, MsgType.TABLE_UPDATE)
        succ.predecessor = node.address
        if node.predecessor is not None:
            self.bus.send_typed(node.address, node.predecessor, MsgType.TABLE_UPDATE)
            self.node(node.predecessor).successor = node.address
        yield Hop(node.address, successor)
        yield from self._init_fingers_steps(node, entry)
        yield from self.update_others_steps(node)
        try:
            self._transfer_keys_on_join(node)
        except PeerNotFoundError:
            pass  # successor vanished this instant; keys stay where they are

    def _init_fingers_steps(self, node: ChordNode, entry: Address) -> MessageSteps:
        """Fill ``finger[1:]``, reusing the previous finger when possible."""
        for i in range(1, self.m_bits):
            start = node.finger_start(i)
            previous = node.finger[i - 1]
            prev_node = self.nodes.get(previous) if previous is not None else None
            if (
                prev_node is not None
                and previous != node.address
                and in_interval(start, node.node_id, prev_node.node_id, self.m_bits)
            ):
                # The interval [start_i, previous finger] is empty of nodes:
                # reuse without a lookup (the classic optimisation).
                node.finger[i] = previous
            else:
                try:
                    node.finger[i] = yield from self.successor_steps(
                        entry, start, MsgType.TABLE_UPDATE
                    )
                except PeerNotFoundError:
                    node.finger[i] = None  # churn broke the lookup; successors route

    def update_others_steps(self, node: ChordNode) -> MessageSteps:
        """Tell existing nodes to adopt the newcomer into their fingers."""
        space = 1 << self.m_bits
        for i in range(self.m_bits):
            target = (node.node_id - (1 << i)) % space
            try:
                predecessor = yield from self.predecessor_steps(
                    node.address, target, MsgType.TABLE_UPDATE
                )
            except PeerNotFoundError:
                continue  # lookup died under churn; stabilization territory
            yield from self.update_finger_table_steps(predecessor, node, i)

    def update_finger_table_steps(
        self, address: Address, node: ChordNode, index: int
    ) -> MessageSteps:
        """Cascade a finger adoption backwards along predecessors."""
        limit = self.size + 4
        current = address
        for _ in range(limit):
            holder = self.nodes.get(current)
            if holder is None or holder.address == node.address:
                return
            finger = holder.finger[index]
            finger_id = self.nodes[finger].node_id if finger in self.nodes else None
            if finger_id is None or in_open_interval(
                node.node_id, holder.node_id, finger_id, self.m_bits
            ):
                self.bus.send_typed(node.address, current, MsgType.TABLE_UPDATE)
                holder.finger[index] = node.address
                if holder.predecessor is None or holder.predecessor == current:
                    return
                yield Hop(current, holder.predecessor)  # cascade backwards
                current = holder.predecessor
            else:
                return

    def _transfer_keys_on_join(self, node: ChordNode) -> None:
        """Pull the keys the newcomer is now responsible for."""
        succ = self.node(node.successor)
        if succ.address == node.address:
            return
        self.bus.send_typed(node.address, succ.address, MsgType.JOIN_TRANSFER)
        moved = [
            key
            for key in list(succ.store)
            if in_interval(
                hash_key(key, self.m_bits),
                self.nodes[node.predecessor].node_id
                if node.predecessor is not None and node.predecessor in self.nodes
                else node.node_id,
                node.node_id,
                self.m_bits,
            )
        ]
        for key in moved:
            succ.store.delete(key)
        node.store.extend(moved)

    # -- leave helpers ------------------------------------------------------------

    def leave_update_steps(self, node: ChordNode) -> MessageSteps:
        """Hand keys over, repoint the ring (atomic), then repair fingers."""
        successor = node.successor
        succ = self.node(successor)
        moved = len(node.store)
        self.bus.send_typed(
            node.address, successor, MsgType.LEAVE_TRANSFER, keys=moved
        )
        succ.store.extend(node.store.clear())
        succ.predecessor = node.predecessor
        if node.predecessor is not None and node.predecessor in self.nodes:
            self.bus.send_typed(node.address, node.predecessor, MsgType.LEAVE_TRANSFER)
            self.nodes[node.predecessor].successor = successor
        # The handover hop carries the departing node's whole store, so
        # bandwidth-limited topologies charge it by payload.
        yield Hop(node.address, successor, size=float(max(moved, 1)))
        yield from self.repoint_fingers_steps(node)
        if self.nodes.get(node.address) is node:
            del self.nodes[node.address]
        self.bus.unregister(node.address)

    def repoint_fingers_steps(self, node: ChordNode) -> MessageSteps:
        """Repair fingers that pointed at the departing node (Θ(log² N))."""
        space = 1 << self.m_bits
        successor = node.successor
        for i in range(self.m_bits):
            target = (node.node_id - (1 << i)) % space
            try:
                predecessor = yield from self.predecessor_steps(
                    node.address, target, MsgType.TABLE_UPDATE
                )
            except PeerNotFoundError:
                continue  # repair lookup died under churn; fingers stay stale
            current = predecessor
            for _ in range(self.size + 4):
                holder = self.nodes.get(current)
                if holder is None or holder.finger[i] != node.address:
                    break
                self.bus.send_typed(node.address, current, MsgType.TABLE_UPDATE)
                holder.finger[i] = successor
                if holder.predecessor is None or holder.predecessor == current:
                    break
                yield Hop(current, holder.predecessor)
                current = holder.predecessor

    # -- data operations -----------------------------------------------------------

    def insert(self, key: int, via: Optional[Address] = None) -> DataOpResult:
        """Hash the key and store it at its successor node."""
        entry = via if via is not None else self.random_peer_address()
        with self.bus.trace("chord.insert") as trace:
            owner = drive(
                self.successor_steps(entry, hash_key(key, self.m_bits), MsgType.INSERT)
            )
            self.node(owner).store.insert(key)
        return DataOpResult(applied=True, owner=owner, trace=trace)

    def delete(self, key: int, via: Optional[Address] = None) -> DataOpResult:
        entry = via if via is not None else self.random_peer_address()
        with self.bus.trace("chord.delete") as trace:
            owner = drive(
                self.successor_steps(entry, hash_key(key, self.m_bits), MsgType.DELETE)
            )
            applied = self.node(owner).store.delete(key)
        return DataOpResult(applied=applied, owner=owner, trace=trace)

    def search_exact(self, key: int, via: Optional[Address] = None) -> SearchResult:
        entry = via if via is not None else self.random_peer_address()
        with self.bus.trace("chord.search") as trace:
            owner = drive(
                self.successor_steps(entry, hash_key(key, self.m_bits), MsgType.SEARCH)
            )
            found = key in self.node(owner).store
        return SearchResult(found=found, owner=owner, trace=trace)

    def search_range(
        self, low: int, high: int, via: Optional[Address] = None
    ) -> RangeSearchResult:
        """Range scan on a hash-partitioned ring: visit *every* node.

        Hashing scatters [low, high) uniformly over the ring, so the only
        complete answer walks all successors — the O(N) cliff that motivates
        order-preserving overlays like BATON.
        """
        if low >= high:
            raise ValueError(f"empty query range [{low}, {high})")
        entry = via if via is not None else self.random_peer_address()
        with self.bus.trace("chord.range") as trace:
            owners, keys, complete = drive(self.range_steps(entry, low, high))
        return RangeSearchResult(
            owners=owners, keys=keys, trace=trace, complete=complete
        )

    def range_steps(self, entry: Address, low: int, high: int) -> MessageSteps:
        """Walk the successor ring collecting [low, high); one yield per hop.

        Returns ``(owners, keys, complete)`` — ``complete`` is True only when
        the walk closed the full ring; a vanished successor truncates the
        answer, exactly like a broken adjacent chain does in BATON.
        """
        owners: List[Address] = []
        keys: List[int] = []
        complete = False
        current = entry
        for _ in range(max(self.size, 1)):
            node = self.nodes.get(current)
            if node is None:
                break  # walk carrier vanished: truncated answer
            owners.append(current)
            keys.extend(k for k in node.store if low <= k < high)
            successor = node.successor
            if successor == entry:
                complete = True
                break
            if successor is None:
                break
            try:
                self.bus.send_typed(current, successor, MsgType.RANGE_SEARCH)
            except PeerNotFoundError:
                break  # dead successor: partial answer
            yield Hop(current, successor)
            current = successor
        return owners, sorted(keys), complete

    def bulk_load(self, keys: List[int]) -> int:
        """Place keys at their owners without routed messages (untimed load)."""
        by_id = sorted(
            (node.node_id, address) for address, node in self.nodes.items()
        )
        ids = [node_id for node_id, _ in by_id]
        import bisect

        placed = 0
        for key in keys:
            key_id = hash_key(key, self.m_bits)
            index = bisect.bisect_left(ids, key_id)
            if index == len(ids):
                index = 0
            self.nodes[by_id[index][1]].store.insert(key)
            placed += 1
        return placed
