"""The Chord ring: joins, leaves, lookups and data operations.

Message accounting mirrors the BATON side: every inter-node hop crosses the
shared :class:`~repro.net.bus.MessageBus` with a semantic category, and the
public operations return traces, so the Figure 8 experiments read both
systems with the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chord.hashing import DEFAULT_M_BITS, hash_key, in_interval, in_open_interval
from repro.chord.node import ChordNode
from repro.core.results import DataOpResult, JoinResult, LeaveResult, SearchResult
from repro.net.address import Address, AddressAllocator
from repro.net.bus import MessageBus, Trace
from repro.net.message import MsgType
from repro.util.errors import NetworkEmptyError, ProtocolError
from repro.util.rng import SeededRng


@dataclass
class ChordConfig:
    """Ring-wide settings."""

    m_bits: int = DEFAULT_M_BITS


@dataclass
class ChordRangeResult:
    """Outcome of the (degenerate) Chord range scan."""

    keys: List[int]
    nodes_visited: int
    trace: Trace


class ChordNetwork:
    """A simulated Chord ring with per-operation message traces."""

    def __init__(self, config: Optional[ChordConfig] = None, seed: int = 0):
        self.config = config or ChordConfig()
        self.rng = SeededRng(seed)
        self.bus = MessageBus()
        self.alloc = AddressAllocator()
        self.nodes: Dict[Address, ChordNode] = {}
        self._used_ids: set[int] = set()

    # -- bookkeeping ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def m_bits(self) -> int:
        return self.config.m_bits

    def node(self, address: Address) -> ChordNode:
        return self.nodes[address]

    def random_node_address(self) -> Address:
        if not self.nodes:
            raise NetworkEmptyError("ring has no nodes")
        return self.rng.choice(sorted(self.nodes))

    def _new_id(self) -> int:
        space = 1 << self.m_bits
        if len(self._used_ids) >= space:
            raise ProtocolError("identifier space exhausted")
        while True:
            node_id = self.rng.randint(0, space - 1)
            if node_id not in self._used_ids:
                self._used_ids.add(node_id)
                return node_id

    @classmethod
    def build(
        cls, n_nodes: int, seed: int = 0, config: Optional[ChordConfig] = None
    ) -> "ChordNetwork":
        """Bootstrap a ring of ``n_nodes``."""
        if n_nodes < 1:
            raise ValueError("need at least one node")
        net = cls(config=config, seed=seed)
        net.bootstrap()
        for _ in range(n_nodes - 1):
            net.join()
        return net

    # -- construction ----------------------------------------------------------

    def bootstrap(self) -> Address:
        """Create the first node; it is its own successor and predecessor."""
        if self.nodes:
            raise ValueError("ring is already bootstrapped")
        node = ChordNode(self.alloc.allocate(), self._new_id(), self.m_bits)
        node.predecessor = node.address
        for i in range(self.m_bits):
            node.finger[i] = node.address
        self.nodes[node.address] = node
        self.bus.register(node.address)
        return node.address

    def join(self, via: Optional[Address] = None) -> JoinResult:
        """Classic Chord join: lookup, init_finger_table, update_others."""
        entry = via if via is not None else self.random_node_address()
        node = ChordNode(self.alloc.allocate(), self._new_id(), self.m_bits)
        self.nodes[node.address] = node
        self.bus.register(node.address)

        with self.bus.trace("chord.join.find") as find_trace:
            successor = self._find_successor(entry, node.node_id, MsgType.JOIN_FIND)
        with self.bus.trace("chord.join.update") as update_trace:
            self._init_finger_table(node, entry, successor)
            self._update_others(node)
            self._transfer_keys_on_join(node)
        return JoinResult(
            address=node.address,
            parent=successor,
            find_trace=find_trace,
            update_trace=update_trace,
        )

    def leave(self, address: Address) -> LeaveResult:
        """Graceful departure: hand keys to the successor, repair fingers."""
        node = self.nodes[address]
        if self.size == 1:
            with self.bus.trace("chord.leave.update") as update_trace:
                del self.nodes[address]
                self.bus.unregister(address)
            return LeaveResult(
                departed=address,
                replacement=None,
                find_trace=Trace(label="chord.leave.find"),
                update_trace=update_trace,
            )
        with self.bus.trace("chord.leave.find") as find_trace:
            successor = node.successor  # known locally: no search needed
        with self.bus.trace("chord.leave.update") as update_trace:
            succ = self.nodes[successor]
            self.bus.send_typed(
                address, successor, MsgType.LEAVE_TRANSFER, keys=len(node.store)
            )
            succ.store.extend(node.store.clear())
            succ.predecessor = node.predecessor
            if node.predecessor is not None:
                self.bus.send_typed(address, node.predecessor, MsgType.LEAVE_TRANSFER)
                self.nodes[node.predecessor].successor = successor
            self._repoint_fingers_on_leave(node)
            del self.nodes[address]
            self.bus.unregister(address)
        return LeaveResult(
            departed=address,
            replacement=successor,
            find_trace=find_trace,
            update_trace=update_trace,
        )

    # -- routing ---------------------------------------------------------------

    def _closest_preceding_finger(self, node: ChordNode, target_id: int) -> Address:
        for i in reversed(range(self.m_bits)):
            finger = node.finger[i]
            if finger is None or finger not in self.nodes:
                continue
            finger_id = self.nodes[finger].node_id
            if in_open_interval(finger_id, node.node_id, target_id, self.m_bits):
                return finger
        return node.address

    def _find_predecessor(
        self, start: Address, target_id: int, mtype: MsgType
    ) -> Address:
        current = start
        limit = 4 * max(self.size.bit_length(), 2) + self.size + 16
        for _ in range(limit):
            node = self.nodes[current]
            successor = node.successor
            successor_id = self.nodes[successor].node_id
            if in_interval(target_id, node.node_id, successor_id, self.m_bits):
                return current
            next_hop = self._closest_preceding_finger(node, target_id)
            if next_hop == current:
                next_hop = successor
            self.bus.send_typed(current, next_hop, mtype)
            current = next_hop
        raise ProtocolError(f"chord lookup for {target_id} did not terminate")

    def _find_successor(self, start: Address, target_id: int, mtype: MsgType) -> Address:
        predecessor = self._find_predecessor(start, target_id, mtype)
        successor = self.nodes[predecessor].successor
        if successor != predecessor:
            self.bus.send_typed(predecessor, successor, mtype)
        return successor

    # -- join helpers -------------------------------------------------------------

    def _init_finger_table(
        self, node: ChordNode, entry: Address, successor: Address
    ) -> None:
        node.successor = successor
        succ = self.nodes[successor]
        node.predecessor = succ.predecessor
        self.bus.send_typed(node.address, successor, MsgType.TABLE_UPDATE)
        succ.predecessor = node.address
        if node.predecessor is not None:
            self.bus.send_typed(node.address, node.predecessor, MsgType.TABLE_UPDATE)
            self.nodes[node.predecessor].successor = node.address
        for i in range(1, self.m_bits):
            start = node.finger_start(i)
            previous = node.finger[i - 1]
            previous_id = self.nodes[previous].node_id
            if in_interval(start, node.node_id, previous_id, self.m_bits) and not (
                previous == node.address
            ):
                # The interval [start_i, previous finger] is empty of nodes:
                # reuse without a lookup (the classic optimisation).
                node.finger[i] = previous
            else:
                node.finger[i] = self._find_successor(
                    entry, start, MsgType.TABLE_UPDATE
                )

    def _update_others(self, node: ChordNode) -> None:
        """Tell existing nodes to adopt the newcomer into their fingers."""
        space = 1 << self.m_bits
        for i in range(self.m_bits):
            target = (node.node_id - (1 << i)) % space
            predecessor = self._find_predecessor(
                node.address, target, MsgType.TABLE_UPDATE
            )
            self._update_finger_table(predecessor, node, i)

    def _update_finger_table(self, address: Address, node: ChordNode, index: int) -> None:
        limit = self.size + 4
        current = address
        for _ in range(limit):
            holder = self.nodes[current]
            if holder.address == node.address:
                return
            finger = holder.finger[index]
            finger_id = self.nodes[finger].node_id if finger in self.nodes else None
            if finger_id is None or in_open_interval(
                node.node_id, holder.node_id, finger_id, self.m_bits
            ):
                self.bus.send_typed(node.address, current, MsgType.TABLE_UPDATE)
                holder.finger[index] = node.address
                if holder.predecessor is None or holder.predecessor == current:
                    return
                current = holder.predecessor  # cascade to the predecessor
            else:
                return

    def _transfer_keys_on_join(self, node: ChordNode) -> None:
        """Pull the keys the newcomer is now responsible for."""
        succ = self.nodes[node.successor]
        if succ.address == node.address:
            return
        self.bus.send_typed(node.address, succ.address, MsgType.JOIN_TRANSFER)
        moved = [
            key
            for key in list(succ.store)
            if in_interval(
                hash_key(key, self.m_bits),
                self.nodes[node.predecessor].node_id
                if node.predecessor is not None
                else node.node_id,
                node.node_id,
                self.m_bits,
            )
        ]
        for key in moved:
            succ.store.delete(key)
        node.store.extend(moved)

    def _repoint_fingers_on_leave(self, node: ChordNode) -> None:
        """Repair fingers that pointed at the departing node (Θ(log² N))."""
        space = 1 << self.m_bits
        successor = node.successor
        for i in range(self.m_bits):
            target = (node.node_id - (1 << i)) % space
            predecessor = self._find_predecessor(
                node.address, target, MsgType.TABLE_UPDATE
            )
            current = predecessor
            for _ in range(self.size + 4):
                holder = self.nodes[current]
                if holder.finger[i] == node.address:
                    self.bus.send_typed(node.address, current, MsgType.TABLE_UPDATE)
                    holder.finger[i] = successor
                    if holder.predecessor is None or holder.predecessor == current:
                        break
                    current = holder.predecessor
                else:
                    break

    # -- data operations -----------------------------------------------------------

    def insert(self, key: int, via: Optional[Address] = None) -> DataOpResult:
        """Hash the key and store it at its successor node."""
        entry = via if via is not None else self.random_node_address()
        with self.bus.trace("chord.insert") as trace:
            owner = self._find_successor(
                entry, hash_key(key, self.m_bits), MsgType.INSERT
            )
            self.nodes[owner].store.insert(key)
        return DataOpResult(applied=True, owner=owner, trace=trace)

    def delete(self, key: int, via: Optional[Address] = None) -> DataOpResult:
        entry = via if via is not None else self.random_node_address()
        with self.bus.trace("chord.delete") as trace:
            owner = self._find_successor(
                entry, hash_key(key, self.m_bits), MsgType.DELETE
            )
            applied = self.nodes[owner].store.delete(key)
        return DataOpResult(applied=applied, owner=owner, trace=trace)

    def search_exact(self, key: int, via: Optional[Address] = None) -> SearchResult:
        entry = via if via is not None else self.random_node_address()
        with self.bus.trace("chord.search") as trace:
            owner = self._find_successor(
                entry, hash_key(key, self.m_bits), MsgType.SEARCH
            )
            found = key in self.nodes[owner].store
        return SearchResult(found=found, owner=owner, trace=trace)

    def search_range(
        self, low: int, high: int, via: Optional[Address] = None
    ) -> ChordRangeResult:
        """Range scan on a hash-partitioned ring: visit *every* node.

        Hashing scatters [low, high) uniformly over the ring, so the only
        complete answer walks all successors — the O(N) cliff that motivates
        order-preserving overlays like BATON.
        """
        entry = via if via is not None else self.random_node_address()
        with self.bus.trace("chord.range") as trace:
            keys: List[int] = []
            current = entry
            visited = 0
            for _ in range(self.size):
                node = self.nodes[current]
                keys.extend(k for k in node.store if low <= k < high)
                visited += 1
                successor = node.successor
                if successor == entry or successor is None:
                    break
                self.bus.send_typed(current, successor, MsgType.RANGE_SEARCH)
                current = successor
        return ChordRangeResult(keys=sorted(keys), nodes_visited=visited, trace=trace)

    def bulk_load(self, keys: List[int]) -> int:
        """Place keys at their owners without routed messages (untimed load)."""
        by_id = sorted(
            (node.node_id, address) for address, node in self.nodes.items()
        )
        ids = [node_id for node_id, _ in by_id]
        import bisect

        placed = 0
        for key in keys:
            key_id = hash_key(key, self.m_bits)
            index = bisect.bisect_left(ids, key_id)
            if index == len(ids):
                index = 0
            self.nodes[by_id[index][1]].store.insert(key)
            placed += 1
        return placed
