"""Key and query generators (uniform and Zipfian, per §V)."""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Sequence, Tuple

from repro.core.ranges import Range
from repro.util.rng import SeededRng


class UniformKeys:
    """Uniform keys over the domain — the paper's default data."""

    def __init__(self, domain: Range | None = None, seed: int = 0):
        self.domain = domain or Range.full_domain()
        self._rng = SeededRng(seed)

    def draw(self) -> int:
        return self._rng.randint(self.domain.low, self.domain.high - 1)

    def take(self, count: int) -> List[int]:
        return [self.draw() for _ in range(count)]


class ZipfianKeys:
    """Zipfian keys at parameter θ (the paper uses θ = 1.0).

    Rank ``r`` is drawn with probability proportional to ``1/r^θ`` over
    ``n_ranks`` ranks (inverse-CDF over the precomputed harmonic table),
    then mapped onto the domain so low ranks cluster at the low end —
    a contiguous hot range, which is what stresses an order-preserving
    partition and triggers §IV-D load balancing.
    """

    def __init__(
        self,
        theta: float = 1.0,
        n_ranks: int = 10_000,
        domain: Range | None = None,
        seed: int = 0,
    ):
        if theta <= 0:
            raise ValueError("theta must be positive")
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.theta = theta
        self.n_ranks = n_ranks
        self.domain = domain or Range.full_domain()
        self._rng = SeededRng(seed)
        self._cdf = self._build_cdf()
        self._stride = max(1, self.domain.width // n_ranks)

    def _build_cdf(self) -> List[float]:
        weights = [1.0 / (rank**self.theta) for rank in range(1, self.n_ranks + 1)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0
        return cdf

    def draw_rank(self) -> int:
        """One Zipf rank in [1, n_ranks].

        One uniform draw plus one binary search over the precomputed CDF —
        no per-draw list rebuilds, so a draw is O(log n_ranks).
        """
        return bisect_left(self._cdf, self._rng.random()) + 1

    def draw(self) -> int:
        """One key: the rank's bucket plus uniform jitter inside it."""
        rank = self.draw_rank()
        base = self.domain.low + (rank - 1) * self._stride
        jitter = self._rng.randint(0, self._stride - 1)
        return min(base + jitter, self.domain.high - 1)

    def take(self, count: int) -> List[int]:
        return [self.draw() for _ in range(count)]


def uniform_keys(count: int, seed: int = 0, domain: Range | None = None) -> List[int]:
    """``count`` uniform keys (convenience wrapper)."""
    return UniformKeys(domain=domain, seed=seed).take(count)


def zipfian_keys(
    count: int,
    theta: float = 1.0,
    seed: int = 0,
    domain: Range | None = None,
    n_ranks: int = 10_000,
) -> List[int]:
    """``count`` Zipfian keys (convenience wrapper)."""
    return ZipfianKeys(theta=theta, n_ranks=n_ranks, domain=domain, seed=seed).take(
        count
    )


def exact_queries(
    loaded_keys: Sequence[int], count: int, seed: int = 0, hit_ratio: float = 1.0
) -> List[int]:
    """Exact-query keys: mostly present keys, optionally some misses."""
    rng = SeededRng(seed)
    domain = Range.full_domain()
    queries: List[int] = []
    for _ in range(count):
        if loaded_keys and rng.random() < hit_ratio:
            queries.append(rng.choice(loaded_keys))
        else:
            queries.append(rng.randint(domain.low, domain.high - 1))
    return queries


def range_queries(
    count: int,
    selectivity: float = 0.001,
    seed: int = 0,
    domain: Range | None = None,
) -> List[Tuple[int, int]]:
    """Range-query intervals covering ``selectivity`` of the domain each."""
    if not 0 < selectivity <= 1:
        raise ValueError("selectivity must be in (0, 1]")
    rng = SeededRng(seed)
    domain = domain or Range.full_domain()
    span = max(1, int(domain.width * selectivity))
    queries: List[Tuple[int, int]] = []
    for _ in range(count):
        low = rng.randint(domain.low, max(domain.low, domain.high - span - 1))
        queries.append((low, low + span))
    return queries
