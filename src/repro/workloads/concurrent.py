"""Concurrent churn-and-query workloads for the event-driven runtime.

The paper's §V-E sweeps "number of concurrent joins/leaves"; D3-Tree and
ART evaluate their overlays under sustained concurrent load.  This driver
reproduces that regime on any
:class:`~repro.sim.runtime.AsyncOverlayRuntime` — BATON, Chord or the
multiway tree, selected through the :mod:`repro.overlays` registry —
independent Poisson arrival processes submit membership changes, queries
and inserts onto the shared simulator, so at any instant many operations
are in flight and queries race half-applied structural changes.

Overlay capabilities are respected rather than stubbed: churn events that
would be abrupt crashes fall back to graceful leaves on overlays without
the ``fail`` capability, and the post-run repair/reconcile steps are
no-ops where the overlay has nothing to repair or reconcile.

Everything is seeded — the arrival streams use labelled sub-rngs — so a
run replays byte-for-byte (the regression tests compare two runs' event
logs and reports).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (chaos imports us)
    from repro.workloads.chaos import ChaosScenario

from repro.core.ranges import Range
from repro.net.message import MsgType
from repro.sim.runtime import AsyncOverlayRuntime, OpFuture
from repro.util.rng import SeededRng
from repro.util.stats import StreamingQuantiles


@dataclass(frozen=True)
class ConcurrentConfig:
    """Arrival processes for one concurrent run.

    Rates are events per simulated time unit (the latency model's unit, so
    ``query_rate=4`` with mean latency 1 means four new queries arrive per
    mean network hop).  A rate of 0 disables that process.
    """

    duration: float = 50.0
    churn_rate: float = 0.5
    query_rate: float = 4.0
    insert_rate: float = 0.0
    #: Fraction of churn events that are joins (the rest depart).
    join_fraction: float = 0.5
    #: Fraction of departures that are abrupt crashes instead of graceful
    #: leaves.  Crashed peers are repaired after the run drains.  Overlays
    #: without the ``fail`` capability depart gracefully instead.
    fail_fraction: float = 0.0
    #: Fraction of queries that are range queries (the rest exact-match).
    range_fraction: float = 0.0
    #: Width of each range query's interval.
    range_span: int = 2_000_000
    #: Range-multicast publishes per time unit (``multicast`` capability;
    #: overlays without it raise CapabilityError up front rather than
    #: silently running a publish-free mix).
    publish_rate: float = 0.0
    #: Subscription installs per time unit (``subscribe`` capability).
    subscribe_rate: float = 0.0
    #: Width of each publish / subscription interval.
    pubsub_span: int = 50_000_000
    #: Departures are suppressed below this population.
    min_peers: int = 8
    #: Run an anti-entropy ``reconcile()`` sweep every this many simulated
    #: time units *during* the window (0 disables; overlays without the
    #: ``reconcile`` capability never sweep).  Without it, staleness only
    #: drains at the end of the run.  On runtimes with replication turned
    #: on, every sweep also submits a replica-refresh round (one sized
    #: message per peer), so the sweep interval is the durability
    #: staleness bound the durability experiment measures.
    maintenance_interval: float = 0.0
    #: Detection delay for in-window repair: each crash is followed by a
    #: ``submit_repair`` this many time units later (0 keeps the
    #: historical behaviour — crashes are repaired only after the run
    #: drains).  Only on overlays with the ``repair`` capability.
    repair_delay: float = 0.0
    #: Pin query entry points to this many fixed gateway peers
    #: instead of a uniformly random peer per operation (0 keeps the
    #: historical behaviour).  Models clients that keep a session with a
    #: few access points — the regime where a per-peer route cache can
    #: warm up; with uniform entry at N=10k each peer originates too few
    #: queries to learn anything.
    client_gateways: int = 0

    def __post_init__(self) -> None:
        for name in (
            "churn_rate",
            "query_rate",
            "insert_rate",
            "publish_rate",
            "subscribe_rate",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")
        if self.pubsub_span <= 0:
            raise ValueError("pubsub_span must be positive")
        for name in ("join_fraction", "fail_fraction", "range_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.maintenance_interval < 0:
            raise ValueError("maintenance_interval cannot be negative")
        if self.repair_delay < 0:
            raise ValueError("repair_delay cannot be negative")
        if self.client_gateways < 0:
            raise ValueError("client_gateways cannot be negative")


@dataclass
class ConcurrentReport:
    """What one concurrent run did and how the queries fared."""

    duration: float
    submitted: Dict[str, int] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    #: Exact queries that resolved and found their key.
    exact_hits: int = 0
    exact_total: int = 0
    #: Range queries that resolved with a complete answer.
    range_complete: int = 0
    range_total: int = 0
    query_latency_p50: float = 0.0
    query_latency_p90: float = 0.0
    query_latency_p99: float = 0.0
    query_latency_mean: float = 0.0
    #: Per-op wire-time accounting (sum of each op's sampled link delays,
    #: from the topology's per-link ``sample(src, dst)`` draws).
    transit_time_total: float = 0.0
    query_transit_p50: float = 0.0
    query_transit_p99: float = 0.0
    query_transit_mean: float = 0.0
    #: Latency stretch: a query's accumulated transit divided by the
    #: expected cost of a *direct* entry->owner link
    #: (:meth:`~repro.sim.topology.Topology.direct_delay`).  Stretch 3
    #: means the overlay route spent 3x what a direct connection would
    #: have; topology-blind routing shows up here first (ROADMAP).
    latency_stretch_p50: float = 0.0
    latency_stretch_p99: float = 0.0
    messages_total: int = 0
    messages_per_query: float = 0.0
    max_in_flight: int = 0
    joins_applied: int = 0
    leaves_applied: int = 0
    fails_applied: int = 0
    final_size: int = 0
    skipped_departures: int = 0
    #: In-window anti-entropy sweeps run (``maintenance_interval`` knob).
    reconcile_sweeps: int = 0
    #: Maintenance traffic: messages spent by every ``reconcile()`` call
    #: (in-window sweeps plus the end-of-run pass) and by replication
    #: upkeep (write-throughs, refresh rounds, repair-time pulls).
    reconcile_messages: int = 0
    replica_messages: int = 0
    #: Replica-refresh rounds submitted by the maintenance sweep.
    replica_refresh_sweeps: int = 0
    #: In-window repairs (``repair_delay`` knob) and what they recovered.
    repairs_applied: int = 0
    keys_recovered: int = 0
    #: Crash-to-repaired time for in-window repairs (includes the
    #: detection delay and the priced replica-pull hops).
    recovery_latency_p50: float = 0.0
    recovery_latency_max: float = 0.0
    #: Keys of inserts that were applied, so durability experiments can
    #: compute the expected key population without re-deriving arrivals.
    insert_keys_applied: List[int] = field(default_factory=list)
    #: -- hot-range route cache metrics (non-zero only when the runtime's
    #: network has the locality cache enabled; see :mod:`repro.core.cache`) --
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    cache_hit_rate: float = 0.0
    #: -- pub/sub metrics (non-zero only with publish/subscribe traffic;
    #: see :mod:`repro.pubsub`) --
    multicasts_delivered: int = 0
    multicast_depth_max: int = 0
    subscriptions_installed: int = 0
    subscription_moves: int = 0
    notifications: int = 0
    #: Arrivals the per-peer dedup window suppressed (counted as traffic,
    #: applied zero more times).  Duplicate *applications* are zero by
    #: construction; FaultPlan wire copies live in ``duplicates``.
    pubsub_duplicates_suppressed: int = 0
    #: -- chaos metrics (non-zero only when the runtime's transport is a
    #: :class:`~repro.sim.faults.FaultPlan` and/or a scenario is active;
    #: see :mod:`repro.workloads.chaos`) --
    drops: int = 0
    duplicates: int = 0
    delay_spikes: int = 0
    partition_refusals: int = 0
    retries: int = 0
    timeouts: int = 0
    ops_gave_up: int = 0
    #: Wire traffic over protocol messages: (messages + retransmissions +
    #: duplicate deliveries) / messages.  1.0 on a clean channel.
    message_amplification: float = 1.0
    #: Operations still unresolved after the drain.  Always 0 — budget
    #: exhaustion fails an OpFuture, it never hangs — and asserted on by
    #: the chaos experiment.
    unresolved_ops: int = 0
    #: Queries submitted inside the scenario's fault window, and how many
    #: were fully answered (availability-during = window_ok/window_queries).
    window_queries: int = 0
    window_ok: int = 0
    availability_during: Optional[float] = None
    #: Time from the scenario's heal point to the first sustained run of
    #: successful probes (-1.0: never recovered within the run; None: the
    #: scenario has no recovery phase).
    recover_time: Optional[float] = None
    #: Liveness-monitor activity (scenarios that install one).
    heartbeats: int = 0
    failed_heartbeats: int = 0
    suspicions: int = 0
    monitor_repairs: int = 0

    @property
    def query_total(self) -> int:
        return self.exact_total + self.range_total

    @property
    def query_success_rate(self) -> float:
        """Fraction of queries answered fully (found / complete)."""
        if self.query_total == 0:
            return 0.0
        return (self.exact_hits + self.range_complete) / self.query_total

    def summary_lines(self) -> List[str]:
        lines = [
            f"simulated duration: {self.duration:.1f} (drained)",
            "submitted: "
            + ", ".join(f"{kind}={n}" for kind, n in sorted(self.submitted.items())),
            f"completed {self.completed}, failed {self.failed}, "
            f"max in flight {self.max_in_flight}",
            f"membership: +{self.joins_applied} joins, "
            f"-{self.leaves_applied} leaves, {self.fails_applied} crashes "
            f"-> {self.final_size} peers",
            f"query success rate: {self.query_success_rate:.3f} "
            f"({self.exact_hits}/{self.exact_total} exact hits"
            + (
                f", {self.range_complete}/{self.range_total} complete ranges)"
                if self.range_total
                else ")"
            ),
            f"query latency p50/p90/p99: {self.query_latency_p50:.2f}/"
            f"{self.query_latency_p90:.2f}/{self.query_latency_p99:.2f} "
            f"(mean {self.query_latency_mean:.2f})",
            f"transit time: {self.transit_time_total:.1f} total on the wire, "
            f"query p50/p99 {self.query_transit_p50:.2f}/"
            f"{self.query_transit_p99:.2f}",
            f"latency stretch (vs direct link) p50/p99: "
            f"{self.latency_stretch_p50:.2f}/{self.latency_stretch_p99:.2f}",
            f"messages: {self.messages_total} total, "
            f"{self.messages_per_query:.2f} per query",
        ]
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"route cache: {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"(hit rate {self.cache_hit_rate:.3f}), "
                f"{self.cache_invalidations} invalidation(s)"
            )
        if self.reconcile_sweeps or self.reconcile_messages:
            lines.append(
                f"maintenance: {self.reconcile_sweeps} in-window reconcile "
                f"sweep(s), {self.reconcile_messages} reconcile msgs, "
                f"{self.replica_refresh_sweeps} replica refresh round(s), "
                f"{self.replica_messages} replica msgs"
            )
        if (
            self.retries
            or self.timeouts
            or self.ops_gave_up
            or self.drops
            or self.duplicates
            or self.partition_refusals
        ):
            lines.append(
                f"chaos: {self.drops} drops, {self.duplicates} dups, "
                f"{self.delay_spikes} spikes, "
                f"{self.partition_refusals} refusals; {self.retries} retries, "
                f"{self.timeouts} timeouts, {self.ops_gave_up} op(s) gave up; "
                f"amplification {self.message_amplification:.3f}"
            )
        if (
            self.multicasts_delivered
            or self.subscriptions_installed
            or self.notifications
        ):
            lines.append(
                f"pub/sub: {self.multicasts_delivered} multicast deliveries "
                f"(depth <= {self.multicast_depth_max}), "
                f"{self.subscriptions_installed} subscription install(s) "
                f"({self.subscription_moves} moved in restructures), "
                f"{self.notifications} notification(s), "
                f"{self.pubsub_duplicates_suppressed} duplicate arrival(s) "
                "suppressed (0 applied twice)"
            )
        if self.availability_during is not None:
            line = (
                f"fault window: availability {self.availability_during:.3f} "
                f"({self.window_ok}/{self.window_queries} queries)"
            )
            if self.recover_time is not None:
                line += ", recovered " + (
                    f"{self.recover_time:.2f} after heal"
                    if self.recover_time >= 0
                    else "never"
                )
            lines.append(line)
        if self.heartbeats:
            lines.append(
                f"liveness: {self.heartbeats} heartbeats "
                f"({self.failed_heartbeats} failed), "
                f"{self.suspicions} suspicion(s), "
                f"{self.monitor_repairs} monitor repair(s)"
            )
        if self.repairs_applied or self.keys_recovered:
            line = (
                f"durability: {self.repairs_applied} in-window repair(s), "
                f"{self.keys_recovered} keys recovered"
            )
            if self.repairs_applied:
                line += (
                    f", recovery p50/max {self.recovery_latency_p50:.2f}/"
                    f"{self.recovery_latency_max:.2f}"
                )
            lines.append(line)
        if self.skipped_departures:
            lines.append(
                f"note: {self.skipped_departures} departures skipped "
                f"(population floor)"
            )
        return lines


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: ``ceil(q*n)``-th order statistic."""
    if not values:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return ordered[rank - 1]


@dataclass
class ScenarioContext:
    """What a chaos scenario sees and drives during one concurrent run.

    Handed to :meth:`ChaosScenario.install` before the simulator starts
    and to :meth:`ChaosScenario.finalize` after the drain.  ``note`` is
    the driver's submission hook: operations a scenario submits through it
    (crashes, probes, flash-crowd traffic) are folded into the report
    exactly like the driver's own arrivals.
    """

    anet: AsyncOverlayRuntime
    config: ConcurrentConfig
    report: ConcurrentReport
    keys: Sequence[int]
    rng: SeededRng
    start_time: float
    horizon: float
    note: Callable[[str, Optional[OpFuture]], None]


def run_concurrent_workload(
    anet: AsyncOverlayRuntime,
    keys: Sequence[int],
    config: Optional[ConcurrentConfig] = None,
    seed: int = 0,
    repair_at_end: bool = True,
    reconcile_at_end: bool = True,
    scenario: Optional["ChaosScenario"] = None,
) -> ConcurrentReport:
    """Drive interleaved churn/query/insert arrivals and report the outcome.

    ``keys`` are the loaded keys exact queries aim at (hit-ratio 1 in a
    quiet network, as the paper's query workloads do); inserts and range
    queries draw from the runtime's key domain.

    ``scenario`` (a :class:`~repro.workloads.chaos.ChaosScenario`)
    overlays a correlated-disaster script on the same run: it installs
    extra events before the drain, defines the fault window the
    availability metric buckets queries by, and computes recovery from its
    post-heal probes in ``finalize``.
    """
    config = config or ConcurrentConfig()
    for rate, capability in (
        (config.publish_rate, "multicast"),
        (config.subscribe_rate, "subscribe"),
    ):
        if rate > 0 and not anet.supports(capability):
            from repro.util.errors import CapabilityError

            raise CapabilityError(
                f"the {anet.overlay_name} overlay does not support "
                f"{capability}; drop the pub/sub rates or pick an overlay "
                "that advertises the capability"
            )
    rng = SeededRng(seed)
    domain: Range = anet.domain
    report = ConcurrentReport(duration=config.duration)
    #: Pub/sub counter baseline (the state is cumulative per network).
    pubsub_state = getattr(anet.net, "pubsub", None)
    pubsub_before = pubsub_state.as_dict() if pubsub_state is not None else None
    recovery_latencies: List[float] = []
    start_messages = anet.bus.stats.total
    start_replica_messages = anet.bus.stats.by_type[MsgType.REPLICATE]
    #: Route-cache counter baseline (cumulative per network, like pubsub).
    cache_stats = getattr(anet.net, "cache_stats", None)
    cache_before = cache_stats.snapshot() if cache_stats is not None else None
    start_time = anet.sim.now
    horizon = start_time + config.duration  # the clock may not start at zero
    repair_in_window = config.repair_delay > 0 and anet.supports("repair")

    # Streaming accumulation: every metric is folded in by the operation's
    # completion callback, so no list of futures (or samples) grows with
    # the run — the memory contract that makes N=10k x long windows
    # routine (DESIGN.md, "Performance contract").  Percentiles come from
    # bounded log-binned accumulators; counts, sums, min/max stay exact.
    latency_q = StreamingQuantiles()
    transit_q = StreamingQuantiles()
    stretch_q = StreamingQuantiles()
    totals = {"transit": 0.0, "query_msgs": 0}
    topology = anet.topology
    #: The scenario's fault window in absolute simulator time (set below,
    #: before any event runs; ``settle`` closures read it at call time).
    window: Optional[Tuple[float, float]] = None

    def settle(future: OpFuture) -> None:
        """Fold one completed operation into the report (any kind)."""
        totals["transit"] += future.transit
        kind = future.kind
        succeeded = future.succeeded
        if succeeded:
            report.completed += 1
        else:
            report.failed += 1
        if kind == "search.exact":
            report.exact_total += 1
            totals["query_msgs"] += future.trace.total
            answered = succeeded and future.result.found
            if answered:
                report.exact_hits += 1
            if window is not None and window[0] <= future.submitted_at < window[1]:
                report.window_queries += 1
                report.window_ok += answered
        elif kind == "search.range":
            report.range_total += 1
            totals["query_msgs"] += future.trace.total
            answered = succeeded and future.result.complete
            if answered:
                report.range_complete += 1
            if window is not None and window[0] <= future.submitted_at < window[1]:
                report.window_queries += 1
                report.window_ok += answered
        elif kind == "multicast":
            if succeeded and future.result is not None:
                report.multicasts_delivered += len(future.result.delivered)
                if future.result.depth > report.multicast_depth_max:
                    report.multicast_depth_max = future.result.depth
            return
        elif kind == "subscribe":
            return  # installs are read off the pubsub counters at the end
        elif succeeded:
            if kind == "join":
                report.joins_applied += 1
            elif kind == "leave":
                report.leaves_applied += 1
            elif kind == "fail" and future.result is not None:
                report.fails_applied += 1
            return
        else:
            return
        if not succeeded or future.latency is None:
            return
        latency_q.add(future.latency)
        transit_q.add(future.transit)
        owner = None
        if kind == "search.exact":
            owner = future.result.owner
        elif future.result.owners:
            owner = future.result.owners[0]
        if owner is not None and future.entry is not None:
            direct = topology.direct_delay(future.entry, owner)
            overlay_transit = future.transit - future.ingress
            if direct > 0 and overlay_transit > 0:
                # Routing stretch is an overlay metric: the client's
                # ingress leg is not part of the entry->owner path the
                # denominator prices, so it must not inflate the numerator
                # (with it, stretch_p50 degenerated into a copy of p50).
                # Degenerate zero-cost resolutions — the entry peer *is*
                # the owner, so no overlay hop was ever priced — carry no
                # routing information and would otherwise poison the
                # quantiles with 0s (a cache-hit run at a warm gateway
                # resolves there often).
                stretch_q.add(overlay_transit / direct)

    def note(kind: str, future: Optional[OpFuture]) -> None:
        if future is None:
            return
        report.submitted[kind] = report.submitted.get(kind, 0) + 1
        future.add_done_callback(settle)

    def schedule_repair(fail_future: OpFuture) -> None:
        """After a crash lands, detect and repair it ``repair_delay`` later."""
        if not fail_future.succeeded or fail_future.result is None:
            return
        crashed = fail_future.result
        crashed_at = anet.sim.now

        def attempt(tries_left: int) -> None:
            if crashed not in anet.pending_repairs():
                return  # another repair already absorbed it
            repair_future = anet.submit_repair(crashed)
            note("repair", repair_future)

            def settle_repair(done: OpFuture) -> None:
                if done.succeeded and done.result is not None:
                    report.repairs_applied += 1
                    report.keys_recovered += done.result.keys_recovered
                    recovery_latencies.append(done.completed_at - crashed_at)
                elif tries_left > 0:
                    # Blocked (for example on another unrepaired ghost):
                    # back off one detection delay and retry; anything
                    # still broken is swept up by the end-of-run repair.
                    anet.sim.schedule(
                        config.repair_delay,
                        lambda: attempt(tries_left - 1),
                        label="repair-retry",
                    )

            repair_future.add_done_callback(settle_repair)

        anet.sim.schedule(
            config.repair_delay, lambda: attempt(3), label="repair-detect"
        )

    def submit_churn(stream: SeededRng) -> None:
        if stream.random() < config.join_fraction:
            note("join", anet.submit_join())
            return
        candidates = anet.leave_candidates()
        if len(candidates) <= config.min_peers:
            report.skipped_departures += 1
            return
        victim = stream.choice(candidates)
        if (
            config.fail_fraction
            and anet.supports("fail")
            and stream.random() < config.fail_fraction
        ):
            fail_future = anet.submit_fail(victim)
            note("fail", fail_future)
            if repair_in_window:
                fail_future.add_done_callback(schedule_repair)
        else:
            note("leave", anet.submit_leave(victim))

    #: Live-membership map (peers for BATON, nodes elsewhere) — read-only
    #: here, for O(1) gateway liveness checks.
    live_peers = getattr(anet.net, "peers", None)
    if live_peers is None:
        live_peers = getattr(anet.net, "nodes", {})

    gateways: List[int] = []
    if config.client_gateways > 0:
        # Fixed session entry points, drawn once from the starting
        # population via a labelled child rng (the parent stream is
        # untouched, so gateway-off runs are unchanged draw-for-draw).
        pool = list(live_peers)
        gateway_rng = rng.child("gateways")
        count = min(config.client_gateways, len(pool))
        gateways = [pool.pop(gateway_rng.randint(0, len(pool) - 1)) for _ in range(count)]

    def query_entry(stream: SeededRng):
        """The entry peer for one query: a live gateway, else the default.

        A gateway that departed mid-run falls back to the historical
        uniform draw for that query (clients re-enter anywhere).
        """
        if not gateways:
            return None
        via = stream.choice(gateways)
        return via if via in live_peers else None

    def submit_query(stream: SeededRng) -> None:
        if config.range_fraction and stream.random() < config.range_fraction:
            span = min(config.range_span, domain.width - 1)
            low = stream.randint(domain.low, domain.high - span - 1)
            note(
                "search.range",
                anet.submit_search_range(low, low + span, via=query_entry(stream)),
            )
        else:
            key = (
                stream.choice(keys)
                if keys
                else stream.randint(domain.low, domain.high - 1)
            )
            note("search.exact", anet.submit_search_exact(key, via=query_entry(stream)))

    def submit_insert(stream: SeededRng) -> None:
        key = stream.randint(domain.low, domain.high - 1)
        future = anet.submit_insert(key)
        note("insert", future)

        def record(done: OpFuture) -> None:
            if done.succeeded and done.result.applied:
                report.insert_keys_applied.append(key)

        future.add_done_callback(record)
        # (The kept keys are the durability experiments' ground truth; the
        # list is bounded by applied inserts, not by samples.)

    def submit_publish(stream: SeededRng) -> None:
        span = min(config.pubsub_span, domain.width - 1)
        low = stream.randint(domain.low, domain.high - span - 1)
        note("multicast", anet.submit_multicast(low, low + span))

    def submit_subscription(stream: SeededRng) -> None:
        span = min(config.pubsub_span, domain.width - 1)
        low = stream.randint(domain.low, domain.high - span - 1)
        note("subscribe", anet.submit_subscribe(low, low + span))

    def arrivals(label: str, rate: float, submit_one) -> None:
        """Schedule a Poisson stream of submissions until the horizon."""
        if rate <= 0:
            return
        stream = rng.child("arrivals", label)

        def fire() -> None:
            submit_one(stream)
            gap = stream.expovariate(rate)
            if anet.sim.now + gap <= horizon:
                anet.sim.schedule(gap, fire, label=f"arrival.{label}")

        first = stream.expovariate(rate)
        if anet.sim.now + first <= horizon:
            anet.sim.schedule(first, fire, label=f"arrival.{label}")

    arrivals("churn", config.churn_rate, submit_churn)
    arrivals("query", config.query_rate, submit_query)
    arrivals("insert", config.insert_rate, submit_insert)
    arrivals("publish", config.publish_rate, submit_publish)
    arrivals("subscribe", config.subscribe_rate, submit_subscription)

    if config.maintenance_interval > 0 and anet.supports("reconcile"):
        # Periodic in-window anti-entropy: staleness is bounded by the
        # sweep interval instead of accumulating until the drain.  On
        # replicated runtimes each sweep also re-anchors every peer's
        # mirror (a round of sized, priced refresh messages).
        def sweep() -> None:
            report.reconcile_messages += anet.reconcile()
            report.reconcile_sweeps += 1
            if anet.replication_enabled:
                # The batched sweep: one future for the whole per-peer
                # fan-out instead of one per peer (same transfers, same
                # per-link sized pricing).
                anet.submit_replica_refresh_sweep()
                report.replica_refresh_sweeps += 1
            if anet.sim.now + config.maintenance_interval <= horizon:
                anet.sim.schedule(
                    config.maintenance_interval, sweep, label="maintenance"
                )

        if start_time + config.maintenance_interval <= horizon:
            anet.sim.schedule(config.maintenance_interval, sweep, label="maintenance")

    context: Optional[ScenarioContext] = None
    if scenario is not None:
        context = ScenarioContext(
            anet=anet,
            config=config,
            report=report,
            keys=keys,
            rng=rng.child("scenario", scenario.name),
            start_time=start_time,
            horizon=horizon,
            note=note,
        )
        scenario.install(context)
        relative = scenario.window
        if relative is not None:
            window = (start_time + relative[0], start_time + relative[1])

    anet.drain()
    if repair_at_end:
        for result in anet.repair_all():
            report.keys_recovered += result.keys_recovered
    if reconcile_at_end:
        report.reconcile_messages += anet.reconcile()

    report.duration = anet.sim.now - start_time
    report.max_in_flight = anet.max_in_flight
    report.final_size = anet.size
    report.messages_total = anet.bus.stats.total - start_messages
    report.transit_time_total = totals["transit"]
    report.replica_messages = (
        anet.bus.stats.by_type[MsgType.REPLICATE] - start_replica_messages
    )
    if cache_stats is not None and cache_before is not None:
        hits_before, misses_before, invalidations_before = cache_before
        report.cache_hits = cache_stats.hits - hits_before
        report.cache_misses = cache_stats.misses - misses_before
        report.cache_invalidations = (
            cache_stats.invalidations - invalidations_before
        )
        lookups = report.cache_hits + report.cache_misses
        if lookups:
            report.cache_hit_rate = report.cache_hits / lookups
    if recovery_latencies:
        report.recovery_latency_p50 = percentile(recovery_latencies, 0.50)
        report.recovery_latency_max = max(recovery_latencies)
    if latency_q.count:
        report.query_latency_p50 = latency_q.quantile(0.50)
        report.query_latency_p90 = latency_q.quantile(0.90)
        report.query_latency_p99 = latency_q.quantile(0.99)
        report.query_latency_mean = latency_q.mean
    if transit_q.count:
        report.query_transit_p50 = transit_q.quantile(0.50)
        report.query_transit_p99 = transit_q.quantile(0.99)
        report.query_transit_mean = transit_q.mean
    if stretch_q.count:
        report.latency_stretch_p50 = stretch_q.quantile(0.50)
        report.latency_stretch_p99 = stretch_q.quantile(0.99)
    if report.query_total:
        report.messages_per_query = totals["query_msgs"] / report.query_total
    report.unresolved_ops = anet.in_flight
    fault_stats = anet.fault_stats
    report.drops = fault_stats.drops
    report.duplicates = fault_stats.duplicates
    report.delay_spikes = fault_stats.delay_spikes
    report.partition_refusals = fault_stats.refusals
    report.retries = fault_stats.retries
    report.timeouts = fault_stats.timeouts
    report.ops_gave_up = fault_stats.gave_up
    if report.messages_total:
        # Retransmissions and duplicate deliveries are wire copies of
        # already-counted protocol messages (FaultStats, not the bus), so
        # amplification is the wire-over-protocol traffic ratio.
        report.message_amplification = (
            report.messages_total + fault_stats.retries + fault_stats.duplicates
        ) / report.messages_total
    if pubsub_state is not None and pubsub_before is not None:
        after = pubsub_state.as_dict()
        report.notifications = after["notifications"] - pubsub_before["notifications"]
        report.pubsub_duplicates_suppressed = (
            after["duplicates_suppressed"] - pubsub_before["duplicates_suppressed"]
        )
        report.subscriptions_installed = (
            after["subscriptions_installed"] - pubsub_before["subscriptions_installed"]
        )
        report.subscription_moves = (
            after["subscription_moves"] - pubsub_before["subscription_moves"]
        )
    if report.window_queries:
        report.availability_during = report.window_ok / report.window_queries
    if scenario is not None:
        scenario.finalize(context)
    return report
