"""Churn schedules: interleaved join/leave event sequences (§V-E)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.rng import SeededRng


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change."""

    kind: str  # "join" or "leave"
    at: float  # simulated time


def churn_schedule(
    n_events: int,
    join_fraction: float = 0.5,
    rate: float = 1.0,
    seed: int = 0,
) -> List[ChurnEvent]:
    """A Poisson stream of join/leave events.

    ``rate`` is events per simulated time unit; interarrival times are
    exponential, so batching naturally emerges at high rates — the knob the
    network-dynamics experiment sweeps.
    """
    if not 0 <= join_fraction <= 1:
        raise ValueError("join_fraction must be in [0, 1]")
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = SeededRng(seed)
    events: List[ChurnEvent] = []
    clock = 0.0
    for _ in range(n_events):
        clock += rng.expovariate(rate)
        kind = "join" if rng.random() < join_fraction else "leave"
        events.append(ChurnEvent(kind=kind, at=clock))
    return events
