"""Chaos scenarios: correlated disaster scripted over the concurrent driver.

The concurrent workload models *independent* adversity — Poisson churn,
one peer at a time.  Real outages are correlated: a region goes dark, a
backbone cut partitions the overlay, a viral key draws a flash crowd.
The D3-Tree line of work (PAPERS.md) argues overlays should be measured
under sustained adversity; ROADMAP item 5 names these four scenarios:

* :class:`RegionOutage` — every peer in one region crashes at once; the
  liveness monitor (no oracle) must notice and drive repair.
* :class:`PartitionHeal` — a :class:`~repro.sim.faults.PartitionWindow`
  refuses cross-cut hops for a while; on heal, a reconcile storm
  restores routing state.
* :class:`FlashCrowd` — a join burst plus a many-fold query spike aimed
  at one hot key range.
* :class:`LossyLinks` — ambient message loss/duplication/delay-spikes at
  the default rates for the whole run (the at-least-once runtime's
  bread-and-butter regime).

A scenario is a small script over one
:func:`~repro.workloads.concurrent.run_concurrent_workload` run: it may
wrap the run's topology in a :class:`~repro.sim.faults.FaultPlan`
(``fault_plan``), schedule extra events before the drain (``install``),
and compute recovery after it (``finalize``).  Each reports four metrics
into the shared :class:`~repro.workloads.concurrent.ConcurrentReport`:

* **availability-during** — fraction of queries submitted inside the
  fault window that were fully answered;
* **time-to-recover-after** — from the scenario's heal/strike point to
  the first sustained streak of successful probe queries;
* **message amplification** — wire traffic (retransmissions + duplicate
  deliveries) over protocol messages;
* **retry/timeout counts** — the at-least-once runtime's reactions.

Scenario windows are expressed relative to the run start and assume the
run begins at simulator time 0 (true for every build surface); the fault
plan's windows are absolute for the same reason.  Everything is seeded:
the same (scenario, overlay, seed) replays event-for-event.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.faults import (
    DEFAULT_LOSS_RATE,
    FaultPlan,
    PartitionWindow,
    RetryPolicy,
)
from repro.sim.liveness import LivenessMonitor
from repro.sim.runtime import OpFuture
from repro.sim.topology import Topology
from repro.util.rng import derive_seed
from repro.workloads.concurrent import ScenarioContext

SCENARIO_NAMES = (
    "region_outage",
    "partition_heal",
    "flash_crowd",
    "lossy_links",
)


class ChaosScenario:
    """Base scenario: fault window, probe machinery, monitor plumbing.

    Subclasses set :attr:`name`, :attr:`requires` (overlay capabilities
    the scenario needs — the experiment skips overlays that lack them),
    assign :attr:`window` in ``__init__``, and override ``fault_plan`` /
    ``install`` / ``finalize`` as needed.
    """

    name: str = "?"
    #: Overlay capabilities the scenario needs (checked against the
    #: registry entry's ``capabilities`` before running).
    requires: frozenset = frozenset()
    #: Post-heal probe cadence and the consecutive-success streak that
    #: counts as recovered.
    probe_interval: float = 1.0
    probe_run: int = 3

    def __init__(self) -> None:
        #: (start, end) of the fault window, relative to the run start;
        #: queries submitted inside it feed availability-during.
        self.window: Optional[Tuple[float, float]] = None
        self._probes: List[Tuple[float, bool]] = []
        self._monitor: Optional[LivenessMonitor] = None

    def fault_plan(self, inner: Topology, seed: int) -> Optional[FaultPlan]:
        """The transport wrapper this scenario needs (None: run unwrapped)."""
        return None

    def install(self, ctx: ScenarioContext) -> None:
        """Schedule the scenario's events (called before the drain)."""

    def finalize(self, ctx: ScenarioContext) -> None:
        """Fold scenario metrics into the report (called after the drain)."""
        self._fold_monitor(ctx)

    # -- shared machinery -----------------------------------------------------

    def _install_monitor(
        self,
        ctx: ScenarioContext,
        interval: float = 2.0,
        suspicion_threshold: int = 2,
    ) -> None:
        """Start a liveness monitor whose repairs count like the driver's."""

        def on_repair(future: OpFuture) -> None:
            ctx.note("repair", future)

            def settle_repair(done: OpFuture) -> None:
                if done.succeeded and done.result is not None:
                    ctx.report.repairs_applied += 1
                    ctx.report.keys_recovered += done.result.keys_recovered

            future.add_done_callback(settle_repair)

        monitor = LivenessMonitor(
            ctx.anet,
            interval=interval,
            suspicion_threshold=suspicion_threshold,
            horizon=ctx.horizon,
            on_repair=on_repair,
        )
        monitor.start()
        self._monitor = monitor

    def _fold_monitor(self, ctx: ScenarioContext) -> None:
        monitor = self._monitor
        if monitor is None:
            return
        report = ctx.report
        report.heartbeats += monitor.heartbeats
        report.failed_heartbeats += monitor.failed_heartbeats
        report.suspicions += monitor.suspicions
        report.monitor_repairs += monitor.repairs_submitted

    def _schedule_probes(self, ctx: ScenarioContext, start_rel: float) -> None:
        """Periodic exact-match probe queries from ``start_rel`` to the
        horizon; their (time, answered) records feed the recovery metric."""
        keys = list(ctx.keys)
        if not keys:
            return
        rng = ctx.rng.child("probes")
        anet = ctx.anet
        records = self._probes
        at = ctx.start_time + start_rel
        while at <= ctx.horizon:

            def fire(when: float = at) -> None:
                future = anet.submit_search_exact(rng.choice(keys))
                ctx.note("probe", future)
                future.add_done_callback(
                    lambda done: records.append(
                        (when, done.succeeded and done.result.found)
                    )
                )

            anet.sim.schedule_at(at, fire, label="chaos.probe")
            at += self.probe_interval

    def _finalize_recovery(self, ctx: ScenarioContext, heal_rel: float) -> None:
        """Recovery = heal point to the first ``probe_run``-long streak of
        answered probes (-1.0 when no such streak happened in the run)."""
        heal_at = ctx.start_time + heal_rel
        recovered = -1.0
        streak = 0
        streak_start = 0.0
        for when, answered in sorted(self._probes):
            if answered:
                if streak == 0:
                    streak_start = when
                streak += 1
                if streak >= self.probe_run:
                    recovered = max(0.0, streak_start - heal_at)
                    break
            else:
                streak = 0
        ctx.report.recover_time = recovered


class RegionOutage(ChaosScenario):
    """Every peer in one region crashes simultaneously.

    No oracle: the run's only in-window repair path is the liveness
    monitor noticing dead adjacents (heartbeat + suspicion) and feeding
    the ghosts to ``submit_repair`` — the correlated-failure regime the
    icsw-style health-check pattern exists for.  On topologies without a
    region map a seeded quarter of the population is struck instead, so
    the scenario still exercises every overlay surface.
    """

    name = "region_outage"
    requires = frozenset({"fail", "repair"})

    def __init__(
        self,
        *,
        strike_at: float = 10.0,
        window_len: float = 15.0,
        region: int = 0,
        monitor_interval: float = 2.0,
        suspicion_threshold: int = 2,
    ):
        super().__init__()
        self.window = (strike_at, strike_at + window_len)
        self.region = region
        self.monitor_interval = monitor_interval
        self.suspicion_threshold = suspicion_threshold
        #: Peers the strike actually took down (set when it fires).
        self.struck = 0

    def install(self, ctx: ScenarioContext) -> None:
        self._install_monitor(
            ctx, self.monitor_interval, self.suspicion_threshold
        )
        strike_abs = ctx.start_time + self.window[0]

        def strike() -> None:
            victims = self._victims(ctx)
            self.struck = len(victims)
            for address in victims:
                ctx.note("fail", ctx.anet.submit_fail(address))

        ctx.anet.sim.schedule_at(strike_abs, strike, label="chaos.region-outage")
        self._schedule_probes(ctx, self.window[0] + self.probe_interval)

    def finalize(self, ctx: ScenarioContext) -> None:
        self._fold_monitor(ctx)
        self._finalize_recovery(ctx, self.window[0])

    def _victims(self, ctx: ScenarioContext) -> List:
        addresses = list(ctx.anet.net.addresses())
        region_of = getattr(ctx.anet.topology, "region_of", None)
        if region_of is not None:
            try:
                return [a for a in addresses if region_of(a) == self.region]
            except AttributeError:
                pass  # a FaultPlan over a region-less inner topology
        rng = ctx.rng.child("victims")
        count = max(1, len(addresses) // 4)
        return rng.sample(addresses, count)


class PartitionHeal(ChaosScenario):
    """A network cut for a window, then a reconcile storm on heal.

    During the window the fault plan refuses every cross-cut hop; ops
    spanning the cut retry with backoff and either outlive the partition
    or exhaust their budget (a failed, not hung, future).  At heal, one
    immediate ``reconcile()`` sweep (where the overlay supports it)
    restores routing state at once — the storm whose cost the report's
    reconcile counters expose.
    """

    name = "partition_heal"
    requires = frozenset()

    def __init__(
        self,
        *,
        start: float = 8.0,
        end: float = 20.0,
        regions: frozenset = frozenset({0}),
        fraction: float = 0.5,
    ):
        super().__init__()
        self.window = (start, end)
        self.regions = regions
        self.fraction = fraction

    def fault_plan(self, inner: Topology, seed: int) -> FaultPlan:
        regions = self.regions if hasattr(inner, "region_of") else None
        return FaultPlan(
            inner,
            seed=derive_seed(seed, "chaos", self.name),
            partitions=(
                PartitionWindow(
                    self.window[0],
                    self.window[1],
                    regions=regions,
                    fraction=self.fraction,
                ),
            ),
        )

    def install(self, ctx: ScenarioContext) -> None:
        anet = ctx.anet
        heal_abs = ctx.start_time + self.window[1]

        def heal_storm() -> None:
            if anet.supports("reconcile"):
                ctx.report.reconcile_messages += anet.reconcile()
                ctx.report.reconcile_sweeps += 1

        anet.sim.schedule_at(heal_abs, heal_storm, label="chaos.heal")
        self._schedule_probes(ctx, self.window[1])

    def finalize(self, ctx: ScenarioContext) -> None:
        self._fold_monitor(ctx)
        self._finalize_recovery(ctx, self.window[1])


class FlashCrowd(ChaosScenario):
    """A join burst plus a many-fold query spike on one hot key range.

    The hot range is a contiguous slice of the *loaded* keys (so exact
    queries can hit), and the spike mixes exact lookups with range scans
    over it — the viral-content regime.  No fault plan: the adversity is
    load, and the metric of interest is whether availability inside the
    window survives the churn+skew combination with invariants intact.
    """

    name = "flash_crowd"
    requires = frozenset()

    def __init__(
        self,
        *,
        start: float = 8.0,
        spike_len: float = 6.0,
        joins: int = 1000,
        query_multiplier: float = 100.0,
        hot_fraction: float = 1.0 / 64.0,
        range_share: float = 0.2,
    ):
        super().__init__()
        if spike_len <= 0:
            raise ValueError("spike_len must be positive")
        self.window = (start, start + spike_len)
        self.joins = joins
        self.query_multiplier = query_multiplier
        self.hot_fraction = hot_fraction
        self.range_share = range_share
        #: The struck key interval (set at install).
        self.hot_range: Tuple[int, int] = (0, 0)

    def install(self, ctx: ScenarioContext) -> None:
        anet = ctx.anet
        rng = ctx.rng
        keys = sorted(ctx.keys)
        if keys:
            count = max(2, int(len(keys) * self.hot_fraction))
            count = min(count, len(keys))
            first = rng.child("hot").randint(0, max(0, len(keys) - count))
            hot_keys = keys[first : first + count]
        else:
            domain = anet.domain
            hot_keys = [domain.low]
        self.hot_range = (hot_keys[0], hot_keys[-1] + 1)
        start_abs = ctx.start_time + self.window[0]
        end_abs = ctx.start_time + self.window[1]
        spike_len = self.window[1] - self.window[0]

        def burst(label: str, rate: float, submit_one) -> None:
            """A Poisson stream confined to the spike window."""
            if rate <= 0:
                return
            stream = rng.child("burst", label)

            def fire() -> None:
                submit_one(stream)
                gap = stream.expovariate(rate)
                if anet.sim.now + gap <= end_abs:
                    anet.sim.schedule(gap, fire, label=label)

            first_gap = stream.expovariate(rate)
            if start_abs + first_gap <= end_abs:
                anet.sim.schedule_at(start_abs + first_gap, fire, label=label)

        def submit_join(stream) -> None:
            ctx.note("join", anet.submit_join())

        def submit_hot(stream) -> None:
            low, high = self.hot_range
            if self.range_share and stream.random() < self.range_share:
                ctx.note("search.range", anet.submit_search_range(low, high))
            else:
                ctx.note("search.exact", anet.submit_search_exact(stream.choice(hot_keys)))

        burst("chaos.join-burst", self.joins / spike_len, submit_join)
        burst(
            "chaos.query-spike",
            ctx.config.query_rate * self.query_multiplier,
            submit_hot,
        )
        self._schedule_probes(ctx, self.window[1])

    def finalize(self, ctx: ScenarioContext) -> None:
        self._fold_monitor(ctx)
        self._finalize_recovery(ctx, self.window[1])


class LossyLinks(ChaosScenario):
    """Ambient loss, duplication and delay spikes for the whole run.

    The at-least-once acceptance regime: at the default loss rate, query
    availability must stay above 90% with retries enabled and every
    future must resolve.  There is no heal point — recovery is 0 by
    definition; the interesting columns are availability, amplification
    and the retry/timeout counters.
    """

    name = "lossy_links"
    requires = frozenset()

    def __init__(
        self,
        *,
        duration: float = 50.0,
        drop_rate: float = DEFAULT_LOSS_RATE,
        duplicate_rate: float = 0.02,
        delay_spike_rate: float = 0.02,
        delay_spike_factor: float = 8.0,
        retry: RetryPolicy = RetryPolicy(),
    ):
        super().__init__()
        self.window = (0.0, duration)
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_spike_rate = delay_spike_rate
        self.delay_spike_factor = delay_spike_factor
        self.retry = retry

    def fault_plan(self, inner: Topology, seed: int) -> FaultPlan:
        return FaultPlan(
            inner,
            seed=derive_seed(seed, "chaos", self.name),
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            delay_spike_rate=self.delay_spike_rate,
            delay_spike_factor=self.delay_spike_factor,
            retry=self.retry,
        )

    def finalize(self, ctx: ScenarioContext) -> None:
        self._fold_monitor(ctx)
        ctx.report.recover_time = 0.0


def build_scenario(
    name: str,
    *,
    duration: float,
    n_peers: int = 0,
    **overrides,
) -> ChaosScenario:
    """A scenario scaled to one run's window.

    Timings are fractions of ``duration`` so the same scenario shape runs
    at smoke scale and at the paper's scale; ``n_peers`` sizes the flash
    crowd's join burst (capped at the headline 1000 joins).  ``overrides``
    pass through to the scenario's constructor.
    """
    if name == "region_outage":
        params = {
            "strike_at": duration * 0.2,
            "window_len": duration * 0.35,
        }
        params.update(overrides)
        return RegionOutage(**params)
    if name == "partition_heal":
        params = {"start": duration * 0.15, "end": duration * 0.45}
        params.update(overrides)
        return PartitionHeal(**params)
    if name == "flash_crowd":
        params = {
            "start": duration * 0.15,
            "spike_len": duration * 0.3,
            "joins": min(1000, max(10, n_peers)),
        }
        params.update(overrides)
        return FlashCrowd(**params)
    if name == "lossy_links":
        params = {"duration": duration}
        params.update(overrides)
        return LossyLinks(**params)
    raise ValueError(
        f"unknown chaos scenario {name!r} (choose from {SCENARIO_NAMES})"
    )


__all__ = [
    "SCENARIO_NAMES",
    "ChaosScenario",
    "FlashCrowd",
    "LossyLinks",
    "PartitionHeal",
    "RegionOutage",
    "build_scenario",
]
