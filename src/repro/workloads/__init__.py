"""Workload generators for the §V experiments.

The paper loads 1000·N values drawn from [1, 10^9), runs 1000 exact and
1000 range queries per configuration, and tests skew with a Zipfian
distribution at parameter 1.0.  These generators reproduce those inputs —
seeded, so every experiment replays byte-for-byte.
"""

from repro.workloads.generators import (
    UniformKeys,
    ZipfianKeys,
    exact_queries,
    range_queries,
    uniform_keys,
    zipfian_keys,
)
from repro.workloads.churn import ChurnEvent, churn_schedule
from repro.workloads.concurrent import (
    ConcurrentConfig,
    ConcurrentReport,
    ScenarioContext,
    percentile,
    run_concurrent_workload,
)
from repro.workloads.chaos import (
    SCENARIO_NAMES,
    ChaosScenario,
    FlashCrowd,
    LossyLinks,
    PartitionHeal,
    RegionOutage,
    build_scenario,
)

__all__ = [
    "UniformKeys",
    "ZipfianKeys",
    "uniform_keys",
    "zipfian_keys",
    "exact_queries",
    "range_queries",
    "ChurnEvent",
    "churn_schedule",
    "ConcurrentConfig",
    "ConcurrentReport",
    "ScenarioContext",
    "percentile",
    "run_concurrent_workload",
    "SCENARIO_NAMES",
    "ChaosScenario",
    "FlashCrowd",
    "LossyLinks",
    "PartitionHeal",
    "RegionOutage",
    "build_scenario",
]
