"""Scalar latency models: degenerate single-region topologies.

Figure 8(i) needs a notion of "how long does a routing-table update take to
reach everyone" versus "how often do queries arrive meanwhile".  Absolute
units are arbitrary (the paper reports message counts, not seconds); what
matters is the ratio between update-propagation delay and churn intensity.

Since the transport seam became topology-aware (:mod:`repro.sim.topology`),
these models are :class:`~repro.sim.topology.Topology` subclasses whose
delay simply ignores which link a message crosses — every pair of peers is
one region away.  The transport entry point is ``sample(src, dst)``
everywhere; subclasses implement the link-blind :meth:`LatencyModel.draw`.
"""

from __future__ import annotations

import abc

from repro.sim.topology import Topology
from repro.util.rng import SeededRng


class LatencyModel(Topology):
    """A link-blind delay distribution — a degenerate single-region topology.

    Subclasses implement :meth:`draw`; ``sample(src, dst)`` (the only
    transport entry point) returns one draw regardless of the link.
    """

    @abc.abstractmethod
    def draw(self) -> float:
        """Return one delay, in arbitrary simulated time units (>= 0)."""

    def expected_delay(self) -> float:
        """The distribution's mean — :meth:`direct_delay` for every link."""
        raise NotImplementedError

    def sample(self, src, dst, *, size: float = 0.0) -> float:
        # Link-blind fast path: scalar models have no bandwidth term, so a
        # sample is exactly one draw (skips the generic normalization that
        # every hop of a large run would otherwise pay).
        return self.draw()

    def link_delay(self, src, dst) -> float:
        return self.draw()

    def direct_delay(self, src, dst) -> float:
        # Deterministic by contract (metrics must not consume the stream).
        return self.expected_delay()


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0):
        if delay < 0:
            raise ValueError("latency cannot be negative")
        self.delay = delay

    def draw(self) -> float:
        return self.delay

    def expected_delay(self) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from [low, high)."""

    def __init__(self, low: float, high: float, rng: SeededRng):
        if low < 0 or high < low:
            raise ValueError(f"invalid latency bounds [{low}, {high})")
        self.low = low
        self.high = high
        self._rng = rng

    def draw(self) -> float:
        return self._rng.uniform(self.low, self.high)

    def expected_delay(self) -> float:
        return (self.low + self.high) / 2.0


class ExponentialLatency(LatencyModel):
    """Memoryless delays with the given mean."""

    def __init__(self, mean: float, rng: SeededRng):
        if mean <= 0:
            raise ValueError("mean latency must be positive")
        self.mean = mean
        self._rng = rng

    def draw(self) -> float:
        return self._rng.expovariate(1.0 / self.mean)

    def expected_delay(self) -> float:
        return self.mean
