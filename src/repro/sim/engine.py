"""Event queue and clock for discrete-event simulation."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence) so simultaneous events run in scheduling
    order, which keeps runs deterministic.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class Simulator:
    """A minimal but complete discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: ..., label="join")
        sim.run()          # or sim.run_until(10.0)
        sim.now            # current simulated time
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._queued_seqs: set[int] = set()
        self._cancelled: set[int] = set()
        self.executed_count = 0
        self.cancelled_count = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of events not yet executed (cancelled events excluded)."""
        return len(self._queue) - len(self._cancelled)

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay, seq=next(self._seq), action=action, label=label
        )
        heapq.heappush(self._queue, event)
        self._queued_seqs.add(event.seq)
        return event

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = Event(time=time, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._queue, event)
        self._queued_seqs.add(event.seq)
        return event

    #: Below this queue size, compaction isn't worth the rebuild.
    _COMPACT_MIN_QUEUE = 16

    def cancel(self, event: Event) -> bool:
        """Withdraw a scheduled event; its action will never run.

        Returns False when the event already executed or was already
        cancelled.  Cancelled entries are dropped lazily as the queue pops
        past them, so cancellation is O(1) — except when the dead entries
        come to dominate: once they exceed half the heap it is compacted
        (amortized O(1) per cancel), so long churn runs don't hold dead
        events, and their closed-over state, forever.
        """
        if event.seq not in self._queued_seqs or event.seq in self._cancelled:
            return False
        self._cancelled.add(event.seq)
        self.cancelled_count += 1
        if (
            len(self._queue) >= self._COMPACT_MIN_QUEUE
            and 2 * len(self._cancelled) > len(self._queue)
        ):
            self._compact()
        return True

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Events order totally by (time, seq), so a heapified subset pops in
        exactly the order lazy skipping would have produced — no observable
        behaviour change, just reclaimed memory.
        """
        self._queue = [e for e in self._queue if e.seq not in self._cancelled]
        heapq.heapify(self._queue)
        self._queued_seqs.difference_update(self._cancelled)
        self._cancelled.clear()

    def _next_live_event(self) -> Optional[Event]:
        """Drop cancelled heap heads; return the next real event unpopped."""
        while self._queue and self._queue[0].seq in self._cancelled:
            dropped = heapq.heappop(self._queue)
            self._cancelled.discard(dropped.seq)
            self._queued_seqs.discard(dropped.seq)
        return self._queue[0] if self._queue else None

    def step(self) -> Optional[Event]:
        """Execute the next event; return it, or None if the queue is empty."""
        if self._next_live_event() is None:
            return None
        event = heapq.heappop(self._queue)
        self._queued_seqs.discard(event.seq)
        self._now = event.time
        self.executed_count += 1
        event.action()
        return event

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``); return #executed."""
        executed = 0
        while self._next_live_event() is not None:
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed

    def run_until(self, time: float) -> int:
        """Run every event with timestamp <= ``time``; return #executed.

        The clock is left at ``time`` (or later if the last executed event
        was later, which cannot happen given the guard).
        """
        executed = 0
        while True:
            head = self._next_live_event()
            if head is None or head.time > time:
                break
            self.step()
            executed += 1
        self._now = max(self._now, time)
        return executed
