"""Event queue and clock for discrete-event simulation.

The engine is the innermost loop of every concurrent experiment: at
N=10k peers a single churn-and-query run executes millions of events, so
the heap entry and the cancellation path are written for throughput (see
DESIGN.md, "Performance contract"):

* **Slotted handles, not dataclasses.**  :class:`Event` is a plain
  ``__slots__`` class ordered by ``(time, seq)`` — the exact total order
  the previous frozen-dataclass implementation used, so event execution
  order is bit-for-bit unchanged (pinned by the equivalence property
  test in ``tests/test_sim.py``).
* **O(1) handle-based cancellation.**  Cancelling tombstones the handle
  in place (``action = None``) instead of recording its sequence number
  in a side set; schedule/pop never touch a membership structure.  Dead
  entries are skipped lazily at the head of the heap and compacted away
  when they come to dominate, so long churn runs don't hold cancelled
  events — or their closed-over state — forever.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class Event:
    """A scheduled callback, and the handle used to cancel it.

    Ordering is (time, sequence) so simultaneous events run in scheduling
    order, which keeps runs deterministic.  A cancelled (or executed)
    event has ``action`` tombstoned to ``None``.
    """

    __slots__ = ("time", "seq", "action", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Optional[Callable[[], None]],
        label: str = "",
    ):
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.action is None else "live"
        return f"<Event t={self.time} seq={self.seq} {state} {self.label!r}>"


class Simulator:
    """A minimal but complete discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: ..., label="join")
        sim.run()          # or sim.run_until(10.0)
        sim.now            # current simulated time
    """

    def __init__(self) -> None:
        #: Heap of (time, seq, handle) tuples: the (time, seq) prefix gives
        #: total order with C-level tuple comparisons — no Python ``__lt__``
        #: per sift step, which is measurable at millions of events.
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._now = 0.0
        #: Cancelled entries still sitting in the heap (tombstones).
        self._dead = 0
        self.executed_count = 0
        self.cancelled_count = 0
        #: High-water mark of the heap length, for memory profiling.
        self.peak_queue_len = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of events not yet executed (cancelled events excluded)."""
        return len(self._queue) - self._dead

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        time = self._now + delay
        event = Event(time, seq, action, label)
        heapq.heappush(self._queue, (time, seq, event))
        if len(self._queue) > self.peak_queue_len:
            self.peak_queue_len = len(self._queue)
        return event

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, action, label)
        heapq.heappush(self._queue, (time, seq, event))
        if len(self._queue) > self.peak_queue_len:
            self.peak_queue_len = len(self._queue)
        return event

    #: Below this queue size, compaction isn't worth the rebuild.
    _COMPACT_MIN_QUEUE = 16

    def cancel(self, event: Event) -> bool:
        """Withdraw a scheduled event; its action will never run.

        Returns False when the event already executed or was already
        cancelled.  Cancellation tombstones the handle in place — O(1),
        no membership lookups — and dead entries are dropped lazily as
        the queue pops past them, except when they come to dominate: once
        they exceed half the heap it is compacted (amortized O(1) per
        cancel), so long churn runs don't hold dead events, and their
        closed-over state, forever.
        """
        if event.action is None:
            return False
        event.action = None
        self._dead += 1
        self.cancelled_count += 1
        if (
            len(self._queue) >= self._COMPACT_MIN_QUEUE
            and 2 * self._dead > len(self._queue)
        ):
            self._compact()
        return True

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Events order totally by (time, seq), so a heapified subset pops in
        exactly the order lazy skipping would have produced — no observable
        behaviour change, just reclaimed memory.
        """
        self._queue = [entry for entry in self._queue if entry[2].action is not None]
        heapq.heapify(self._queue)
        self._dead = 0

    def _next_live_event(self) -> Optional[Event]:
        """Drop cancelled heap heads; return the next real event unpopped."""
        queue = self._queue
        while queue and queue[0][2].action is None:
            heapq.heappop(queue)
            self._dead -= 1
        return queue[0][2] if queue else None

    def step(self) -> Optional[Event]:
        """Execute the next event; return it, or None if the queue is empty."""
        if self._next_live_event() is None:
            return None
        event = heapq.heappop(self._queue)[2]
        self._now = event.time
        self.executed_count += 1
        action = event.action
        event.action = None  # executed: release the closure, refuse cancel
        action()
        return event

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``); return #executed."""
        executed = 0
        while self._next_live_event() is not None:
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed

    def run_until(self, time: float) -> int:
        """Run every event with timestamp <= ``time``; return #executed.

        Afterwards the clock reads exactly ``time``: executing the last
        in-window event sets it to that event's (earlier or equal)
        timestamp, and the final assignment advances it the rest of the
        way so follow-up ``schedule`` calls measure delays from the
        requested stopping point.
        """
        executed = 0
        while True:
            head = self._next_live_event()
            if head is None or head.time > time:
                break
            self.step()
            executed += 1
        if self._now < time:
            self._now = time
        return executed
