"""Discrete-event simulation: engine, latency models and the async runtime.

Most of the paper's measurements are pure message counts, which the
synchronous protocols in :mod:`repro.core` produce directly.  The exception
is §V-E (Figure 8(i), *Effect of Network Dynamics*): there, joins and leaves
happen **concurrently** and routing-table updates take time to propagate, so
queries issued inside the update window can be misrouted and pay extra
messages.  The :class:`Simulator` here provides the timeline for that
experiment — events with latencies drawn from a :class:`LatencyModel`,
executed in timestamp order.

:class:`AsyncBatonNetwork` builds the full concurrent regime on top: every
BATON operation decomposed into per-hop scheduled events, any number in
flight at once, completion delivered through :class:`OpFuture` — see
:mod:`repro.sim.runtime`.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.runtime import AsyncBatonNetwork, AsyncOverlayRuntime, OpFuture

__all__ = [
    "Event",
    "Simulator",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "AsyncBatonNetwork",
    "AsyncOverlayRuntime",
    "OpFuture",
]
