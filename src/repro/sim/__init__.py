"""A small discrete-event simulation engine.

Most of the paper's measurements are pure message counts, which the
synchronous protocols in :mod:`repro.core` produce directly.  The exception
is §V-E (Figure 8(i), *Effect of Network Dynamics*): there, joins and leaves
happen **concurrently** and routing-table updates take time to propagate, so
queries issued inside the update window can be misrouted and pay extra
messages.  The :class:`Simulator` here provides the timeline for that
experiment — events with latencies drawn from a :class:`LatencyModel`,
executed in timestamp order.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)

__all__ = [
    "Event",
    "Simulator",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
]
