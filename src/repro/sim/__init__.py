"""Discrete-event simulation: engine, latency models and the async runtime.

Most of the paper's measurements are pure message counts, which the
synchronous protocols in :mod:`repro.core` produce directly.  The exception
is §V-E (Figure 8(i), *Effect of Network Dynamics*): there, joins and leaves
happen **concurrently** and routing-table updates take time to propagate, so
queries issued inside the update window can be misrouted and pay extra
messages.  The :class:`Simulator` here provides the timeline for that
experiment — events with latencies drawn per link from a
:class:`Topology` (scalar :class:`LatencyModel` distributions are the
degenerate single-region case), executed in timestamp order.

:class:`AsyncBatonNetwork` builds the full concurrent regime on top: every
BATON operation decomposed into per-hop scheduled events, any number in
flight at once, completion delivered through :class:`OpFuture` — see
:mod:`repro.sim.runtime`.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.runtime import AsyncBatonNetwork, AsyncOverlayRuntime, OpFuture
from repro.sim.topology import (
    ClusteredTopology,
    CoordinateTopology,
    Hop,
    Topology,
    available_topologies,
    make_topology,
)

__all__ = [
    "Event",
    "Simulator",
    "Topology",
    "Hop",
    "ClusteredTopology",
    "CoordinateTopology",
    "available_topologies",
    "make_topology",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "AsyncBatonNetwork",
    "AsyncOverlayRuntime",
    "OpFuture",
]
