"""Per-peer liveness: heartbeat + suspicion feeding the repair path.

The workload driver's in-window repair (``ConcurrentConfig.repair_delay``)
is an oracle: it knows a crash happened because it submitted it.  Under
*correlated* failure — a whole region going dark at once — that shortcut
hides exactly the hard part, so the chaos scenarios detect crashes the way
a deployment does (the relay/health-check pattern the ROADMAP names):

* every monitor round, each live peer sends one ``MsgType.HEARTBEAT`` to
  each of its failure-detection neighbours
  (:meth:`~repro.sim.runtime.AsyncOverlayRuntime.liveness_targets` — for
  BATON the in-order adjacents, which between them cover every peer);
* a probe into a dead peer is counted on the bus *before* the send raises
  (detection traffic is real traffic — the honesty rule), and bumps the
  target's suspicion count;
* suspicion crossing the threshold escalates: if the overlay supports
  repair and the target is an outstanding ghost, the monitor submits the
  repair — the same :meth:`submit_repair` path the oracle used, now driven
  by observed silence instead of omniscience.

The monitor rides the shared simulator, so detection latency (round
interval x threshold) is visible in every recovery metric it feeds.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.net.address import Address
from repro.net.message import MsgType
from repro.sim.runtime import AsyncOverlayRuntime, OpFuture
from repro.util.errors import PeerNotFoundError


class LivenessMonitor:
    """Heartbeat rounds + suspicion counters over one runtime.

    ``on_repair`` (optional) receives each repair future the monitor
    submits, so workload drivers can fold the repairs into their reports
    exactly like oracle-scheduled ones.
    """

    def __init__(
        self,
        anet: AsyncOverlayRuntime,
        *,
        interval: float = 2.0,
        suspicion_threshold: int = 2,
        horizon: Optional[float] = None,
        on_repair: Optional[Callable[[OpFuture], None]] = None,
    ):
        if interval <= 0:
            raise ValueError("monitor interval must be positive")
        if suspicion_threshold < 1:
            raise ValueError("suspicion threshold must be at least 1")
        self.anet = anet
        self.interval = interval
        self.suspicion_threshold = suspicion_threshold
        self.horizon = horizon
        self.on_repair = on_repair
        #: Probes sent (including ones that found their target dead).
        self.heartbeats = 0
        #: Probes that found their target dead.
        self.failed_heartbeats = 0
        #: Suspicions that crossed the threshold (one per detected crash).
        self.suspicions = 0
        #: Repairs the monitor submitted off a confirmed suspicion.
        self.repairs_submitted = 0
        self._suspect_counts: Dict[Address, int] = {}
        self._started = False

    def start(self) -> None:
        """Schedule the first round ``interval`` from now (idempotent)."""
        if self._started:
            return
        self._started = True
        self.anet.sim.schedule(self.interval, self._round, label="liveness")

    def _round(self) -> None:
        anet = self.anet
        net = anet.net
        for address in list(net.addresses()):
            # liveness_targets is [] for a peer that crashed or departed
            # since the snapshot, and for overlays without an adjacency.
            for target in anet.liveness_targets(address):
                if target == address:
                    continue
                self.heartbeats += 1
                try:
                    net.count_message(address, target, MsgType.HEARTBEAT)
                except PeerNotFoundError:
                    self.failed_heartbeats += 1
                    count = self._suspect_counts.get(target, 0) + 1
                    self._suspect_counts[target] = count
                    if count == self.suspicion_threshold:
                        self.suspicions += 1
                        self._escalate(target)
                else:
                    self._suspect_counts.pop(target, None)
        if self.horizon is None or anet.sim.now + self.interval <= self.horizon:
            anet.sim.schedule(self.interval, self._round, label="liveness")

    def _escalate(self, target: Address) -> None:
        """A confirmed suspicion: hand the ghost to the repair path."""
        anet = self.anet
        if not anet.supports("repair") or target not in anet.pending_repairs():
            return
        future = anet.submit_repair(target)
        self.repairs_submitted += 1
        # Reset so a blocked repair (deadlocked on a neighbouring ghost,
        # say) is re-detected and re-tried by a later round.
        self._suspect_counts.pop(target, None)
        if self.on_repair is not None:
            self.on_repair(future)


__all__ = ["LivenessMonitor"]
