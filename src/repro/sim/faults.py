"""Fault-injecting transport: an unreliable channel over any topology.

The runtime's default delivery contract is exactly-once: every yielded
:class:`~repro.sim.topology.Hop` arrives, after one sampled delay.  The
BATON paper never promises that network — §IV-C assumes peers vanish and
routing entries go stale — and no deployed overlay gets it.  This module
is the gap-closer: :class:`FaultPlan` wraps any
:class:`~repro.sim.topology.Topology` and turns the channel into a lossy
one that can

* **drop** a hop (the message is never delivered; the sender times out),
* **duplicate** it (delivered once, plus a spurious second arrival —
  harmless when the protocol step is idempotent, and the delivery
  contract in DESIGN.md documents which steps are),
* **delay-spike** it (delivered after ``delay_spike_factor`` x the
  sampled link time — a congested or rerouted path),
* **refuse** it during a :class:`PartitionWindow` (src and dst on opposite
  sides of a cut) or an :class:`OutageWindow` (either endpoint inside a
  down region/address set).

Everything is deterministic from the plan's seed: the stochastic verdicts
consume one labelled sub-rng draw per judged hop, and partition sides are
derived per address (by the inner topology's region map when the window
names regions, by a seeded hash split otherwise).  A plan with all rates
zero and no windows judges nothing and draws nothing, which is what keeps
fault-free runs event-for-event identical to the unwrapped fast path
(pinned in ``tests/test_chaos.py`` and guarded in ``bench_scale``).

The plan is pure transport: it never touches overlay state.  Reacting to
the losses — timeout, exponential backoff, retry budget — is the
runtime's job (:class:`RetryPolicy` configures it; see
``AsyncOverlayRuntime._transmit``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.address import Address
from repro.sim.topology import Topology
from repro.util.rng import SeededRng, derive_seed

#: Message-loss rate the chaos scenarios (and the acceptance criterion:
#: >90% query availability with retries enabled) use by default.
DEFAULT_LOSS_RATE = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """At-least-once parameters for the chaos-aware runtime.

    A hop that does not arrive is retransmitted after ``timeout``, then
    ``timeout * backoff``, then ``timeout * backoff**2`` ... until it lands
    or ``budget`` retransmissions are spent, at which point the operation
    fails with :class:`~repro.util.errors.DeliveryError` (thrown into its
    step generator so partial state can be cleaned up).
    """

    timeout: float = 6.0
    backoff: float = 2.0
    budget: int = 4

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1 (delays must not shrink)")
        if self.budget < 0:
            raise ValueError("budget cannot be negative")

    def wait(self, attempt: int) -> float:
        """Backoff delay before retransmission number ``attempt`` (1-based)."""
        return self.timeout * self.backoff ** (attempt - 1)


@dataclass(frozen=True)
class PartitionWindow:
    """A network cut from ``start`` to ``end`` (simulated time).

    While active, hops whose endpoints sit on opposite sides are refused
    outright (no retransmission crosses a partition; the retry clock still
    runs, so ops spanning the cut either outlive it or exhaust their
    budget).  ``regions`` names one side by the inner topology's region
    map; with ``regions=None`` every address is assigned a side by a
    seeded hash, ``fraction`` of them on side A.
    """

    start: float
    end: float
    regions: Optional[frozenset] = None
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("partition window ends before it starts")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class OutageWindow:
    """A correlated blackout: every hop touching the down set is refused.

    The down set is a whole ``region`` (by the inner topology's region
    map) or an explicit ``addresses`` frozenset.  Unlike a crash, the
    peers still exist — an outage models unreachability (power, fiber
    cut), so traffic resumes when the window closes.
    """

    start: float
    end: float
    region: Optional[int] = None
    addresses: frozenset = frozenset()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("outage window ends before it starts")
        if self.region is None and not self.addresses:
            raise ValueError("an outage needs a region or an address set")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass
class FaultStats:
    """What the chaos layer did to the traffic it judged.

    ``drops``/``duplicates``/``delay_spikes``/``refusals`` are per
    *transmission attempt* (the plan's verdicts); ``retries``/``timeouts``/
    ``gave_up`` are the runtime's reactions (a timeout per undelivered
    attempt, a retry per retransmission, a gave_up per op that exhausted
    its budget).  Retransmissions and duplicate deliveries are wire-level
    copies of already-counted protocol messages, so they are tracked here
    and *not* re-counted on the MessageBus — the amplification metric
    ``(messages + retries + duplicates) / messages`` makes the extra wire
    traffic visible without distorting per-protocol message counts.
    """

    drops: int = 0
    duplicates: int = 0
    delay_spikes: int = 0
    refusals: int = 0
    timeouts: int = 0
    retries: int = 0
    gave_up: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "drops": self.drops,
            "duplicates": self.duplicates,
            "delay_spikes": self.delay_spikes,
            "refusals": self.refusals,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "gave_up": self.gave_up,
        }


#: Verdict for one transmission attempt: (delivered, delay, duplicate).
Verdict = Tuple[bool, float, bool]


class FaultPlan(Topology):
    """A :class:`Topology` whose channel can lose, copy and refuse hops.

    Composes with any inner topology (``ClusteredTopology`` included: the
    plan delegates ``region_of``, so region-based windows and the
    scenarios' region queries keep working).  The plan is what the runtime
    detects to switch from the exactly-once fast path to the at-least-once
    chaos path; an *inert* plan (zero rates, no windows) delivers
    everything first try with identical delays and zero extra rng draws.
    """

    def __init__(
        self,
        inner: Topology,
        seed: int = 0,
        *,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_spike_rate: float = 0.0,
        delay_spike_factor: float = 8.0,
        partitions: Tuple[PartitionWindow, ...] = (),
        outages: Tuple[OutageWindow, ...] = (),
        retry: RetryPolicy = RetryPolicy(),
    ):
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_spike_rate", delay_spike_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if drop_rate + duplicate_rate + delay_spike_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if delay_spike_factor < 1.0:
            raise ValueError("delay_spike_factor must be >= 1")
        self.inner = inner
        self.seed = seed
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_spike_rate = delay_spike_rate
        self.delay_spike_factor = delay_spike_factor
        self.partitions = tuple(partitions)
        self.outages = tuple(outages)
        self.retry = retry
        self.stats = FaultStats()
        self._stochastic = drop_rate + duplicate_rate + delay_spike_rate > 0
        #: Nothing to inject, ever: judge() short-circuits to the inner
        #: sample so an inert wrapper prices hops at fast-path cost.
        self._hazardous = bool(self._stochastic or partitions or outages)
        self._draw = SeededRng(derive_seed(seed, "fault-plan")).random
        #: Partition-side cache: (window index, address) -> on side A.
        self._sides: Dict[Tuple[int, Address], bool] = {}

    # -- transport delegation (the reliable channel) --------------------------
    #
    # ``sample`` stays the *reliable* entry point: callers that use it
    # directly (table-update delivery, replica refresh sweeps — the
    # TCP-like ordered channel of the delivery contract) see the inner
    # topology's pricing untouched.  Only the runtime's per-hop transmit
    # path asks for a ``judge`` verdict.

    def sample(self, src, dst, *, size: float = 0.0) -> float:
        return self.inner.sample(src, dst, size=size)

    def link_delay(self, src, dst) -> float:
        return self.inner.link_delay(src, dst)

    def link_bandwidth(self, src, dst):
        return self.inner.link_bandwidth(src, dst)

    def direct_delay(self, src, dst) -> float:
        return self.inner.direct_delay(src, dst)

    def region_of(self, address):
        """Delegates to the inner topology (raises where it has no regions)."""
        return self.inner.region_of(address)

    # -- the unreliable channel ----------------------------------------------

    def judge(
        self, src, dst, now: float, *, size: float = 0.0
    ) -> Verdict:
        """One transmission attempt's fate: (delivered, delay, duplicate).

        Client-ingress hops (``src=None`` — the request entering at its
        co-located entry peer) and local beats (``src == dst``) never
        cross a wire, so they are never dropped, copied or refused; real
        inter-peer hops consume exactly one seeded draw when any
        stochastic rate is set, none otherwise.
        """
        if not self._hazardous:
            return (True, self.inner.sample(src, dst, size=size), False)
        on_wire = src is not None and dst is not None and src != dst
        if on_wire and self._refused(src, dst, now):
            self.stats.refusals += 1
            return (False, 0.0, False)
        duplicate = False
        spiked = False
        if on_wire and self._stochastic:
            draw = self._draw()
            if draw < self.drop_rate:
                self.stats.drops += 1
                return (False, 0.0, False)
            draw -= self.drop_rate
            if draw < self.duplicate_rate:
                duplicate = True
                self.stats.duplicates += 1
            elif draw - self.duplicate_rate < self.delay_spike_rate:
                spiked = True
                self.stats.delay_spikes += 1
        delay = self.inner.sample(src, dst, size=size)
        if spiked:
            delay *= self.delay_spike_factor
        return (True, delay, duplicate)

    def _refused(self, src: Address, dst: Address, now: float) -> bool:
        for index, window in enumerate(self.partitions):
            if window.active(now) and (
                self._side(index, window, src) != self._side(index, window, dst)
            ):
                return True
        for window in self.outages:
            if window.active(now) and (
                self._down(window, src) or self._down(window, dst)
            ):
                return True
        return False

    def _side(self, index: int, window: PartitionWindow, address: Address) -> bool:
        key = (index, address)
        side = self._sides.get(key)
        if side is None:
            if window.regions is not None:
                side = self.inner.region_of(address) in window.regions
            else:
                side = (
                    SeededRng(
                        derive_seed(self.seed, "side", index, int(address))
                    ).random()
                    < window.fraction
                )
            self._sides[key] = side
        return side

    def _down(self, window: OutageWindow, address: Address) -> bool:
        if address in window.addresses:
            return True
        if window.region is not None:
            return self.inner.region_of(address) == window.region
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan drop={self.drop_rate} dup={self.duplicate_rate} "
            f"spike={self.delay_spike_rate} partitions={len(self.partitions)} "
            f"outages={len(self.outages)} over {type(self.inner).__name__}>"
        )


__all__ = [
    "DEFAULT_LOSS_RATE",
    "FaultPlan",
    "FaultStats",
    "OutageWindow",
    "PartitionWindow",
    "RetryPolicy",
]
