"""Event-driven runtime: overlay operations as scheduled message exchanges.

The synchronous protocols execute each operation atomically — correct for
counting messages, but unable to express the scenarios the paper's §V-E
gestures at and a deployment lives in: many operations *in flight at once*,
churn racing queries, routing state going stale between a hop being chosen
and the next message being sent.

:class:`AsyncOverlayRuntime` closes that gap for any overlay implementing
the :mod:`repro.overlays` protocol.  It wraps a synchronous network and
re-expresses every public operation — join, leave, exact search, range
search, insert, delete (plus fail, where supported) — as a *hop generator*:
a Python generator that performs one protocol step (one message exchange,
using exactly the same helpers and message accounting as the synchronous
code) and then yields a :class:`~repro.sim.topology.Hop` declaring which
pair of peers the next message travels between.  The runtime prices each
hop per link through the run's :class:`~repro.sim.topology.Topology`
(``sample(src, dst, size=...)``) and schedules the resumption on the shared
:class:`~repro.sim.engine.Simulator`, so any number of operations
interleave at hop granularity while each individual step stays atomic.
Completion is exposed through :class:`OpFuture` (result, error, latency,
accumulated transit time, done-callbacks).

Three concrete runtimes exist, one per registered overlay:

* :class:`AsyncBatonNetwork` (here) — BATON, including deferred
  routing-table update delivery and the ``reconcile()`` anti-entropy sweep;
* :class:`repro.chord.runtime.AsyncChordNetwork` — finger-hop routing;
* :class:`repro.multiway.runtime.AsyncMultiwayNetwork` — link-by-link tree
  routing.

Fidelity notes:

* With operations run one at a time (submit, then drain), every runtime
  sends byte-for-byte the same message sequence as its synchronous network
  and reaches the same final structure under *any* topology — delays only
  stretch the clock between serialized steps — the equivalence the test
  suites pin down (for constant and clustered topologies alike).
* Under interleaving, an operation's carrier peer can vanish between hops
  (its host left or crashed).  The operation then *fails*: its future
  reports the error instead of a result, which is how a real client
  experiences a lost request.  Queries that merely get boxed in by stale
  links give up and report the last peer reached, mirroring the synchronous
  degraded-routing behaviour.
* An async BATON insert's trace also accumulates any load-balancing traffic
  the insert triggers (the synchronous API reports that separately in
  ``balance_trace``).
"""

from __future__ import annotations

import itertools
from typing import Callable, ClassVar, Generator, List, Optional, Set

from repro.core import balance as balance_protocol
from repro.core import cache as route_cache_protocol
from repro.core import data as data_protocol
from repro.core import failure as failure_protocol
from repro.core import join as join_protocol
from repro.core import leave as leave_protocol
from repro.core import search as search_protocol
from repro.core.links import LEFT, RIGHT
from repro.core.network import BatonConfig, BatonNetwork
from repro.core.ranges import Range
from repro.core.results import (
    DataOpResult,
    JoinResult,
    LeaveResult,
    RangeSearchResult,
    RepairResult,
    SearchResult,
)
from repro.net.address import Address
from repro.net.bus import MessageBus, Trace
from repro.net.message import MsgType
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan, FaultStats
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.topology import Hop, Topology
from repro.util.errors import (
    CapabilityError,
    DeliveryError,
    PeerNotFoundError,
    ProtocolError,
    ReproError,
)
from repro.util.stepper import MessageSteps

#: A hop generator yields one Hop per protocol step (which link the next
#: message crosses) and returns the operation's result.
OpSteps = Generator[Hop, None, object]

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"


class OpFuture:
    """Completion handle for one in-flight operation."""

    __slots__ = (
        "op_id",
        "kind",
        "trace",
        "submitted_at",
        "completed_at",
        "status",
        "result",
        "error",
        "hops",
        "retries",
        "transit",
        "ingress",
        "entry",
        "_callbacks",
    )

    def __init__(self, op_id: int, kind: str, trace: Trace, submitted_at: float):
        self.op_id = op_id
        self.kind = kind
        self.trace = trace
        self.submitted_at = submitted_at
        self.completed_at: Optional[float] = None
        self.status = PENDING
        self.result: object = None
        self.error: Optional[ReproError] = None
        self.hops = 0
        #: Retransmissions this operation's hops needed (always 0 on the
        #: exactly-once fast path; only the chaos runtime retries).
        self.retries = 0
        #: Total sampled link time this operation spent on the wire (the sum
        #: of its hops' per-link delays; equals `latency` while the runtime
        #: has no queueing, and diverges the day it does).
        self.transit = 0.0
        #: The share of ``transit`` spent on client legs (hops with no
        #: source peer — the client handing the request to its entry
        #: point).  Overlay routing metrics must exclude it: the
        #: latency-stretch denominator is the direct entry->owner link,
        #: which no client leg is part of.
        self.ingress = 0.0
        #: The peer the operation entered the overlay at (queries and data
        #: ops; None for membership changes).  The latency-stretch metric
        #: compares accumulated transit against the direct entry->owner link.
        self.entry: Optional[Address] = None
        self._callbacks: List[Callable[["OpFuture"], None]] = []

    @property
    def done(self) -> bool:
        return self.status != PENDING

    @property
    def succeeded(self) -> bool:
        return self.status == SUCCEEDED

    @property
    def latency(self) -> Optional[float]:
        """Simulated submit-to-completion time (None while in flight)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def add_done_callback(self, callback: Callable[["OpFuture"], None]) -> None:
        """Run ``callback(self)`` at completion (immediately if already done)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _complete(self, status: str, now: float) -> None:
        self.status = status
        self.completed_at = now
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OpFuture #{self.op_id} {self.kind} {self.status}>"


class AsyncOverlayRuntime:
    """Concurrent-operation facade over a synchronous overlay network.

    Every ``submit_*`` method starts an operation and returns an
    :class:`OpFuture` immediately; nothing executes until the simulator
    runs.  ``run()`` / ``run_until()`` / ``drain()`` advance the clock.

    All scheduling randomness comes from the topology's seeded rngs and
    the wrapped network's own rng, so a given (network seed, topology,
    submission sequence) replays the exact same event order — the
    ``event_log`` records it for comparison.

    Subclasses set :attr:`overlay_name`, :attr:`network_cls` and
    :attr:`capabilities`, and implement the per-operation hop generators
    (``_search_exact_steps`` and friends).  Optional capabilities —
    ``"fail"``, ``"repair"``, ``"reconcile"`` — gate :meth:`submit_fail`,
    :meth:`repair_all` and :meth:`reconcile`.
    """

    #: Registry name of the overlay this runtime drives.
    overlay_name: ClassVar[str] = "?"
    #: The synchronous network class :meth:`build` instantiates.
    network_cls: ClassVar[Optional[type]] = None
    #: Optional operations this overlay supports.
    capabilities: ClassVar[frozenset] = frozenset()

    def __init__(
        self,
        net,
        *,
        sim: Optional[Simulator] = None,
        latency: Optional[LatencyModel] = None,
        topology: Optional[Topology] = None,
        record_events: bool = True,
        retain_ops: bool = True,
    ):
        if latency is not None and topology is not None:
            raise ValueError("pass either topology or latency (its alias), not both")
        self.net = net
        self.sim = sim if sim is not None else Simulator()
        transport = topology if topology is not None else latency
        self.topology: Topology = (
            transport if transport is not None else ConstantLatency(1.0)
        )
        #: Installed chaos layer, if the transport is a FaultPlan.  With
        #: None (every pre-chaos call site), operations take the
        #: exactly-once fast path below, bit-for-bit as before; with a
        #: plan, they go through the at-least-once transmit path
        #: (judge/timeout/retry — see :meth:`_transmit`).
        self.faults: Optional[FaultPlan] = (
            self.topology if isinstance(self.topology, FaultPlan) else None
        )
        self.ops: List[OpFuture] = []
        #: Whether to append (time, op, kind, phase, msgs) tuples to
        #: :attr:`event_log` for every submit/hop/completion.  Invaluable
        #: for replay-equality tests, pure overhead for big workload runs —
        #: the workload surfaces (experiments, benchmarks, CLI) construct
        #: runtimes with ``record_events=False`` (DESIGN.md, "Performance
        #: contract").
        self.record_events = record_events
        #: Whether completed futures stay reachable through :attr:`ops`.
        #: Streaming drivers turn this off so a long run's futures (and
        #: their traces) can be garbage-collected as they complete.
        self.retain_ops = retain_ops
        self.event_log: List[tuple] = []
        self.max_in_flight = 0
        self._in_flight = 0
        self._op_ids = itertools.count(1)
        self._pending_leaves: Set[Address] = set()

    @classmethod
    def build(
        cls,
        n_peers: int,
        seed: int = 0,
        *,
        config=None,
        latency=None,
        topology=None,
        bulk=False,
        keys=None,
        **kwargs,
    ):
        """Grow a synchronous network, then wrap it for concurrent traffic.

        ``bulk=True`` (overlays with a direct construction path, i.e.
        BATON) computes the final tree instead of simulating joins;
        ``keys`` optionally loads a dataset during that construction.
        """
        if cls.network_cls is None:
            raise TypeError(f"{cls.__name__} has no network_cls to build")
        build_kwargs = {"bulk": True, "keys": keys} if bulk else {}
        net = cls.network_cls.build(
            n_peers, seed=seed, config=config, **build_kwargs
        )
        return cls(net, latency=latency, topology=topology, **kwargs)

    @property
    def latency(self) -> Topology:
        """Historical alias for :attr:`topology` (scalar models are
        degenerate topologies, so old call sites keep reading)."""
        return self.topology

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def in_flight(self) -> int:
        """Operations submitted but not yet completed."""
        return self._in_flight

    @property
    def bus(self) -> MessageBus:
        return self.net.bus

    @property
    def size(self) -> int:
        return self.net.size

    @property
    def domain(self) -> Range:
        """The key interval workload generators should draw from."""
        return Range.full_domain()

    def supports(self, capability: str) -> bool:
        """Whether this overlay implements an optional capability."""
        return capability in self.capabilities

    @property
    def replication_enabled(self) -> bool:
        """Whether the wrapped network is actually mirroring data (the
        ``replication`` capability says it *can*; this says the run's
        config turned it on)."""
        return False

    def pending_repairs(self) -> List[Address]:
        """Crashed peers awaiting repair (empty where unsupported)."""
        return []

    def run(self, max_events: Optional[int] = None) -> int:
        """Advance the simulator; returns the number of events executed."""
        return self.sim.run(max_events)

    def run_until(self, time: float) -> int:
        return self.sim.run_until(time)

    def drain(self) -> int:
        """Run until every scheduled event (hence every operation) finishes."""
        return self.sim.run()

    def reconcile(self) -> int:
        """Anti-entropy sweep; returns the number of maintenance messages
        spent (overlays without a sweep return 0)."""
        return 0

    def repair_all(self) -> List[RepairResult]:
        """Repair outstanding abrupt failures, where the overlay supports it."""
        return []

    # -- submission API -------------------------------------------------------

    def submit_search_exact(
        self, key: int, via: Optional[Address] = None
    ) -> OpFuture:
        start = via if via is not None else self.net.random_peer_address()
        future = self._new_future("search.exact")
        future.entry = start
        self._launch(future, self._search_exact_steps(future, start, key))
        return future

    def submit_search_range(
        self, low: int, high: int, via: Optional[Address] = None
    ) -> OpFuture:
        if low >= high:
            raise ValueError(f"empty query range [{low}, {high})")
        start = via if via is not None else self.net.random_peer_address()
        future = self._new_future("search.range")
        future.entry = start
        self._launch(future, self._search_range_steps(future, start, low, high))
        return future

    def submit_insert(self, key: int, via: Optional[Address] = None) -> OpFuture:
        start = via if via is not None else self.net.random_peer_address()
        future = self._new_future("insert")
        future.entry = start
        self._launch(future, self._data_op_steps(future, start, key, MsgType.INSERT))
        return future

    def submit_delete(self, key: int, via: Optional[Address] = None) -> OpFuture:
        start = via if via is not None else self.net.random_peer_address()
        future = self._new_future("delete")
        future.entry = start
        self._launch(future, self._data_op_steps(future, start, key, MsgType.DELETE))
        return future

    def submit_join(self, via: Optional[Address] = None) -> OpFuture:
        start = via if via is not None else self.net.random_peer_address()
        future = self._new_future("join")
        self._launch(future, self._join_steps(future, start))
        return future

    def submit_leave(self, address: Address) -> OpFuture:
        if address in self._pending_leaves:
            raise ValueError(f"a leave of address {address} is already in flight")
        self._pending_leaves.add(address)
        future = self._new_future("leave")
        future.add_done_callback(
            lambda _fut: self._pending_leaves.discard(address)
        )
        self._launch(future, self._leave_steps(future, address))
        return future

    def submit_multicast(
        self, low: int, high: int, via: Optional[Address] = None
    ) -> OpFuture:
        """Deliver one message to every owner of ``[low, high)`` exactly once.

        Requires the ``multicast`` capability (DESIGN.md, "Dissemination
        contract"): hash-partitioned overlays scatter a key interval across
        unrelated peers and refuse rather than simulate a fan-out they
        cannot route.
        """
        if not self.supports("multicast"):
            raise CapabilityError(
                f"the {self.overlay_name} overlay does not support range multicast"
            )
        if low >= high:
            raise ValueError(f"empty multicast range [{low}, {high})")
        start = via if via is not None else self.net.random_peer_address()
        future = self._new_future("multicast")
        future.entry = start
        self._launch(future, self._multicast_steps(future, start, low, high))
        return future

    def submit_subscribe(
        self,
        low: int,
        high: int,
        subscriber: Optional[Address] = None,
    ) -> OpFuture:
        """Install a subscription for ``[low, high)`` at every range owner.

        Requires the ``subscribe`` capability; ``subscriber`` defaults to a
        random live peer (the interested party the owners will notify).
        """
        if not self.supports("subscribe"):
            raise CapabilityError(
                f"the {self.overlay_name} overlay does not support "
                "range subscriptions"
            )
        if low >= high:
            raise ValueError(f"empty subscription range [{low}, {high})")
        start = subscriber if subscriber is not None else self.net.random_peer_address()
        future = self._new_future("subscribe")
        future.entry = start
        self._launch(future, self._subscribe_steps(future, start, low, high))
        return future

    def submit_fail(self, address: Address) -> OpFuture:
        """Schedule an abrupt crash of ``address`` one latency from now."""
        if not self.supports("fail"):
            raise CapabilityError(
                f"the {self.overlay_name} overlay does not support abrupt failure"
            )
        future = self._new_future("fail")
        self._launch(future, self._fail_steps(future, address))
        return future

    def submit_repair(self, address: Address) -> OpFuture:
        """Submit the repair of a crashed peer as a priced operation.

        The structural surgery runs atomically in the operation's first
        protocol segment; with replication enabled, the replica pull that
        restores the dead peer's keys follows as sized hops, so the
        future's latency is the crash's *data recovery* time.
        """
        if not self.supports("repair"):
            raise CapabilityError(
                f"the {self.overlay_name} overlay does not support repair"
            )
        future = self._new_future("repair")
        self._launch(future, self._repair_steps(future, address))
        return future

    def submit_replica_refresh(self) -> List[OpFuture]:
        """Submit one replica-refresh operation per live peer.

        All refreshes are in flight at once (each is an independent
        one-hop bulk transfer from a peer to its current adjacent), so a
        sweep costs one round of sized messages, not a serial walk.
        """
        if not self.supports("replication"):
            raise CapabilityError(
                f"the {self.overlay_name} overlay does not support replication"
            )
        futures: List[OpFuture] = []
        for address in self.net.addresses():
            future = self._new_future("replica.refresh")
            self._launch(future, self._replica_refresh_steps(future, address))
            futures.append(future)
        return futures

    def submit_replica_refresh_sweep(self) -> OpFuture:
        """Submit one refresh round as a *single* batched operation.

        Semantically the same fan-out as :meth:`submit_replica_refresh` —
        every live peer's sized transfer to its current adjacent is in
        flight at once, each priced on its own link — but the whole round
        shares one :class:`OpFuture`, one trace and one event-log entry
        instead of allocating one of each per peer, which is the
        difference between "a maintenance sweep" and "10k bookkeeping
        objects per sweep" at full scale.  The future completes when the
        last transfer lands; its result is the number of refresh messages
        spent.
        """
        if not self.supports("replication"):
            raise CapabilityError(
                f"the {self.overlay_name} overlay does not support replication"
            )
        future = self._new_future("replica.refresh.sweep")
        self._in_flight += 1
        if self._in_flight > self.max_in_flight:
            self.max_in_flight = self._in_flight
        if self.record_events:
            self._log(future, "submit")
        bus = self.net.bus
        state = {"pending": 0, "messages": 0}

        def finish() -> None:
            future.result = state["messages"]
            self._in_flight -= 1
            if self.record_events:
                self._log(future, "done")
            future._complete(SUCCEEDED, self.sim.now)

        def advance(steps) -> None:
            bus.push_trace(future.trace)
            try:
                try:
                    hop = next(steps)
                except StopIteration as stop:
                    state["messages"] += stop.value or 0
                    state["pending"] -= 1
                    if state["pending"] == 0:
                        finish()
                    return
                except ReproError:
                    # Refresh is best-effort maintenance: one peer's
                    # failure (its holder vanished mid-transfer, say)
                    # drops that refresh — the next sweep heals it — and
                    # must not abort the round, mirroring how the
                    # per-peer API fails just that peer's future.
                    state["pending"] -= 1
                    if state["pending"] == 0:
                        finish()
                    return
            finally:
                bus.pop_trace()
            delay = self.topology.sample(hop.src, hop.dst, size=hop.size)
            future.hops += 1
            future.transit += delay
            if hop.src is None:
                future.ingress += delay
            self.sim.schedule(
                delay, lambda: advance(steps), label="replica.refresh.sweep"
            )

        # The +1 sentinel keeps an all-synchronous round (or one whose
        # early transfers land while later ones are still being submitted —
        # impossible today, but cheap to guard) from finishing twice.
        state["pending"] = 1
        for address in self.net.addresses():
            state["pending"] += 1
            advance(self._replica_refresh_steps(future, address))
        state["pending"] -= 1
        if state["pending"] == 0:
            finish()
        return future

    def leave_candidates(self) -> List[Address]:
        """Live addresses with no leave currently in flight."""
        return [
            address
            for address in self.net.addresses()
            if address not in self._pending_leaves
        ]

    # -- hop generators subclasses implement ----------------------------------
    #
    # Overlays whose network exposes the step-generator convention —
    # ``node(address).store`` plus an owner-routing generator surfaced via
    # ``_owner_steps`` and a ``range_steps(entry, low, high)`` generator
    # returning ``(owners, keys, complete)`` — inherit the query and data
    # operations below and implement only ``_owner_steps``, ``_join_steps``
    # and ``_leave_steps``.  BATON overrides the full set (its data path
    # carries balancing/replication side effects).

    def _owner_steps(
        self, start: Address, key: int, mtype: MsgType
    ) -> MessageSteps:
        """Message-step generator routing from ``start`` to ``key``'s owner."""
        raise NotImplementedError

    def _search_exact_steps(
        self, future: OpFuture, start: Address, key: int
    ) -> OpSteps:
        yield Hop(None, start)  # the request reaches its entry peer
        owner = yield from self._lift(self._owner_steps(start, key, MsgType.SEARCH))
        found = key in self.net.node(owner).store
        return SearchResult(found=found, owner=owner, trace=future.trace)

    def _search_range_steps(
        self, future: OpFuture, start: Address, low: int, high: int
    ) -> OpSteps:
        yield Hop(None, start)
        owners, keys, complete = yield from self._lift(
            self.net.range_steps(start, low, high)
        )
        return RangeSearchResult(
            owners=owners, keys=keys, trace=future.trace, complete=complete
        )

    def _data_op_steps(
        self, future: OpFuture, start: Address, key: int, mtype: MsgType
    ) -> OpSteps:
        yield Hop(None, start)
        owner = yield from self._lift(self._owner_steps(start, key, mtype))
        store = self.net.node(owner).store
        if mtype is MsgType.INSERT:
            store.insert(key)
            applied = True
        else:
            applied = store.delete(key)
        return DataOpResult(applied=applied, owner=owner, trace=future.trace)

    def _join_steps(self, future: OpFuture, start: Address) -> OpSteps:
        raise NotImplementedError

    def _leave_steps(self, future: OpFuture, address: Address) -> OpSteps:
        raise NotImplementedError

    def _multicast_steps(
        self, future: OpFuture, start: Address, low: int, high: int
    ) -> OpSteps:
        raise NotImplementedError

    def _subscribe_steps(
        self, future: OpFuture, start: Address, low: int, high: int
    ) -> OpSteps:
        raise NotImplementedError

    def _fail_steps(self, future: OpFuture, address: Address) -> OpSteps:
        raise NotImplementedError

    def _repair_steps(self, future: OpFuture, address: Address) -> OpSteps:
        raise NotImplementedError

    def _replica_refresh_steps(self, future: OpFuture, address: Address) -> OpSteps:
        raise NotImplementedError

    # -- bookkeeping ----------------------------------------------------------

    def _new_future(self, kind: str) -> OpFuture:
        future = OpFuture(
            op_id=next(self._op_ids),
            kind=kind,
            trace=Trace(label=kind),
            submitted_at=self.sim.now,
        )
        if self.retain_ops:
            self.ops.append(future)
        return future

    def _launch(self, future: OpFuture, steps: OpSteps) -> None:
        self._in_flight += 1
        if self._in_flight > self.max_in_flight:
            self.max_in_flight = self._in_flight
        if self.record_events:
            self._log(future, "submit")

        # One resumption closure and one label for the whole operation —
        # allocating them per hop dominated the scheduler's own cost in
        # N=10k profiles.
        label = f"{future.kind}#{future.op_id}"

        if self.faults is None:

            def advance() -> None:
                self._advance(future, steps, advance, label)

            self._advance(future, steps, advance, label)
        else:

            def advance() -> None:
                self._advance_chaos(future, steps, advance, label)

            self._advance_chaos(future, steps, advance, label)

    def _advance(
        self,
        future: OpFuture,
        steps: OpSteps,
        advance: Callable[[], None],
        label: str,
    ) -> None:
        """Execute one atomic protocol step; reschedule or complete.

        ``advance`` is the operation's single reusable resumption callback
        (created in :meth:`_launch`); scheduling it avoids a fresh closure
        and label string per hop.
        """
        finished = False
        failed: Optional[ReproError] = None
        value: object = None
        hop: Optional[Hop] = None
        bus = self.net.bus
        bus.push_trace(future.trace)
        try:
            try:
                hop = next(steps)
            except StopIteration as stop:
                finished, value = True, stop.value
            except ReproError as error:
                failed = error
        finally:
            bus.pop_trace()
        if failed is not None:
            future.error = failed
            self._in_flight -= 1
            if self.record_events:
                self._log(future, "failed")
            future._complete(FAILED, self.sim.now)
            return
        if finished:
            future.result = value
            self._in_flight -= 1
            if self.record_events:
                self._log(future, "done")
            future._complete(SUCCEEDED, self.sim.now)
            return
        if not isinstance(hop, Hop):
            raise TypeError(
                f"hop generators must yield Hop(src, dst), got {hop!r} "
                f"(transport costs are per-link now; see repro.sim.topology)"
            )
        delay = self.topology.sample(hop.src, hop.dst, size=hop.size)
        future.hops += 1
        future.transit += delay
        if hop.src is None:
            future.ingress += delay
        if self.record_events:
            self._log(future, "hop")
        self.sim.schedule(delay, advance, label)

    def _advance_chaos(
        self,
        future: OpFuture,
        steps: OpSteps,
        advance: Callable[[], None],
        label: str,
        throw: Optional[ReproError] = None,
    ) -> None:
        """Chaos-path twin of :meth:`_advance` (a FaultPlan is installed).

        Identical protocol semantics — one atomic step, then reschedule or
        complete — with two seams: hops are handed to :meth:`_transmit`
        (judge, timeout, retry with backoff), and a hop that exhausted its
        retry budget is *thrown into* the generator as ``throw``
        (:class:`~repro.util.errors.DeliveryError`) so protocol code can
        clean up partial state before the future fails.  With an inert
        plan every attempt delivers first try at the inner topology's
        sampled delay, making the run event-for-event identical to the
        fast path (pinned in tests/test_chaos.py).
        """
        finished = False
        failed: Optional[ReproError] = None
        value: object = None
        hop: Optional[Hop] = None
        bus = self.net.bus
        bus.push_trace(future.trace)
        try:
            try:
                hop = steps.throw(throw) if throw is not None else next(steps)
            except StopIteration as stop:
                finished, value = True, stop.value
            except ReproError as error:
                failed = error
        finally:
            bus.pop_trace()
        if failed is not None:
            future.error = failed
            self._in_flight -= 1
            if self.record_events:
                self._log(future, "failed")
            future._complete(FAILED, self.sim.now)
            return
        if finished:
            future.result = value
            self._in_flight -= 1
            if self.record_events:
                self._log(future, "done")
            future._complete(SUCCEEDED, self.sim.now)
            return
        if not isinstance(hop, Hop):
            raise TypeError(
                f"hop generators must yield Hop(src, dst), got {hop!r} "
                f"(transport costs are per-link now; see repro.sim.topology)"
            )
        self._transmit(future, hop, steps, advance, label, 0)

    def _transmit(
        self,
        future: OpFuture,
        hop: Hop,
        steps: OpSteps,
        advance: Callable[[], None],
        label: str,
        attempt: int,
    ) -> None:
        """One at-least-once delivery attempt for ``hop``.

        ``attempt`` 0 is the first transmission; each undelivered attempt
        costs the sender a timeout, then the retransmission waits
        ``retry.wait(attempt+1)`` (exponential backoff), re-judged at send
        time so a healed partition lets later attempts through.  Budget
        exhaustion throws :class:`~repro.util.errors.DeliveryError` into
        the step generator — the op fails distinguishably, never hangs.
        Retransmissions and duplicate deliveries are wire-level copies of
        protocol messages the bus already counted once, so they live in
        :class:`~repro.sim.faults.FaultStats` (the amplification metric),
        not in the per-type message counters.
        """
        faults = self.faults
        delivered, delay, _duplicate = faults.judge(
            hop.src, hop.dst, self.sim.now, size=hop.size
        )
        if delivered:
            # A duplicate arrival re-executes an idempotent receiver step
            # as a no-op; it is counted (FaultStats.duplicates) but not
            # re-scheduled — the op advanced on the first arrival.
            future.hops += 1
            future.transit += delay
            if hop.src is None:
                future.ingress += delay
            if self.record_events:
                self._log(future, "hop")
            self.sim.schedule(delay, advance, label)
            return
        stats = faults.stats
        stats.timeouts += 1
        policy = faults.retry
        if attempt >= policy.budget:
            stats.gave_up += 1
            self._advance_chaos(
                future,
                steps,
                advance,
                label,
                throw=DeliveryError(hop.src, hop.dst, attempt + 1),
            )
            return
        stats.retries += 1
        future.retries += 1
        self.sim.schedule(
            policy.wait(attempt + 1),
            lambda: self._transmit(future, hop, steps, advance, label, attempt + 1),
            label,
        )

    @property
    def fault_stats(self) -> FaultStats:
        """The chaos layer's counters (all zeros without a FaultPlan)."""
        return self.faults.stats if self.faults is not None else FaultStats()

    def liveness_targets(self, address: Address) -> List[Address]:
        """Peers ``address`` heartbeats in a liveness-monitor round.

        The overlay's failure-detection neighbours (for BATON, the
        in-order adjacents: together they cover every peer, so a crash is
        always *somebody's* dead neighbour).  Empty where the overlay
        exposes no monitorable adjacency.
        """
        return []

    def _log(self, future: OpFuture, phase: str) -> None:
        self.event_log.append(
            (self.sim.now, future.op_id, future.kind, phase, future.trace.total)
        )

    def _lift(self, steps: MessageSteps) -> OpSteps:
        """Adopt a message-step generator's hops into this operation.

        The synchronous facades drive these generators to exhaustion in one
        call, ignoring the yielded hops; lifting instead forwards each
        :class:`Hop` to the scheduler, which prices it per link and resumes
        the generator one simulator event later — same code, same messages,
        different clock.
        """
        return (yield from steps)


class AsyncBatonNetwork(AsyncOverlayRuntime):
    """Concurrent-operation facade over a :class:`BatonNetwork`.

    Beyond the shared runtime machinery this adds the BATON-specific
    concurrency surface: routing-table refreshes ride the same clock (the
    wrapped network's :class:`~repro.core.network.UpdateChannel` is given a
    delivery sink that schedules each receiver-side application one sampled
    latency later, so queries issued inside an update window genuinely race
    stale links), peers drain their inbox before structural handshakes, and
    :meth:`reconcile` is the periodic anti-entropy sweep that restores exact
    invariants at quiescence.
    """

    overlay_name = "baton"
    network_cls = BatonNetwork
    capabilities = frozenset(
        {
            "fail",
            "repair",
            "balance",
            "reconcile",
            "replication",
            "multicast",
            "subscribe",
            "locality",
        }
    )

    def __init__(
        self,
        net: Optional[BatonNetwork] = None,
        *,
        sim: Optional[Simulator] = None,
        latency: Optional[LatencyModel] = None,
        topology: Optional[Topology] = None,
        seed: int = 0,
        config: Optional[BatonConfig] = None,
        defer_updates: bool = True,
        record_events: bool = True,
        retain_ops: bool = True,
    ):
        if net is None:
            net = BatonNetwork(config=config, seed=seed)
        super().__init__(
            net,
            sim=sim,
            latency=latency,
            topology=topology,
            record_events=record_events,
            retain_ops=retain_ops,
        )
        self._inflight_updates: dict[Address, List[tuple]] = {}
        self._last_update_arrival: dict[Address, float] = {}
        if defer_updates:
            self.net.updates.set_sink(self._deliver_update)
        # The locality extension's protocol decisions (join probing,
        # replica diversity) read the run's topology through the network;
        # only its deterministic direct_delay/region_of surface is ever
        # consulted, so installing it perturbs nothing when the locality
        # knobs are off.
        self.net.topology = self.topology

    @property
    def domain(self) -> Range:
        return self.net.config.domain

    @property
    def replication_enabled(self) -> bool:
        return bool(self.net.config.replication)

    def pending_repairs(self) -> List[Address]:
        return sorted(self.net.ghosts)

    def liveness_targets(self, address: Address) -> List[Address]:
        peer = self.net.peers.get(address)
        if peer is None:
            return []
        targets = []
        if peer.left_adjacent is not None:
            targets.append(peer.left_adjacent.address)
        if peer.right_adjacent is not None:
            targets.append(peer.right_adjacent.address)
        return targets

    def reconcile(self) -> int:
        """One anti-entropy round: refresh every peer's links to ground truth.

        Concurrent operations read each other's link state mid-refresh, so
        at quiescence third-party snapshots (ranges, child flags, table
        entries) can be stale in ways the synchronous protocols never
        produce — a real deployment runs a periodic maintenance sweep for
        exactly this reason.  Like the restructuring link rebuild this
        substitutes the position map for the peer-to-peer exchange
        (the documented cost-model substitution; compare ``bulk_load``),
        but the traffic is no longer free: each refreshed peer is charged
        one RECONCILE digest message to a live neighbour — the modeled
        cost of the exchange (DESIGN.md, "Durability contract") — so
        maintenance traffic is a first-class, sweepable metric.  Returns
        the number of messages spent.
        """
        from repro.core import restructure as restructure_protocol

        cache: dict = {}
        include_ghosts = bool(self.net.ghosts)
        validate_routes = route_cache_protocol.cache_enabled(self.net)
        messages = 0
        for peer in list(self.net.peers.values()):
            partner = self._reconcile_partner(peer)
            if partner is not None:
                self.net.count_message(peer.address, partner, MsgType.RECONCILE)
                messages += 1
            restructure_protocol.refresh_links_from_map(
                self.net, peer, cache, include_ghosts=include_ghosts
            )
            if validate_routes:
                # The same sweep bounds hot-range cache staleness: dead
                # owners dropped, moved ranges corrected (counted as
                # invalidations; see repro.core.cache).
                route_cache_protocol.reconcile_peer(self.net, peer)
        return messages

    def _reconcile_partner(self, peer) -> Optional[Address]:
        """A live neighbour to exchange the reconcile digest with."""
        for info in (
            peer.parent,
            peer.left_adjacent,
            peer.right_adjacent,
            peer.left_child,
            peer.right_child,
        ):
            if info is not None and info.address in self.net.peers:
                return info.address
        return None

    def repair_all(self) -> List[RepairResult]:
        """Run the §III-C repair for every outstanding crash, priced.

        Mirrors the synchronous retry-in-passes logic
        (:meth:`~repro.core.network.BatonNetwork.repair_all`), but each
        repair goes through :meth:`submit_repair` and the simulator, so
        replica pulls cross priced links as sized hops.  Drains the
        simulator between repairs; callers invoke this at quiescence.
        """
        results: List[RepairResult] = []
        passes = 0
        while self.net.ghosts and passes < len(self.net.ghosts) + 8:
            passes += 1
            progress = False
            for address in sorted(self.net.ghosts):
                if address not in self.net.ghosts:
                    continue
                future = self.submit_repair(address)
                self.drain()
                if future.succeeded and future.result is not None:
                    results.append(future.result)
                    progress = True
            if not progress:
                raise ProtocolError(
                    f"repairs deadlocked on ghosts {sorted(self.net.ghosts)}"
                )
        return results

    # -- update-sink plumbing -------------------------------------------------

    def _deliver_update(
        self, src: Address, dst: Address, deliver: Callable[[], None]
    ) -> None:
        """UpdateChannel sink: apply a table refresh one link delay later.

        The delay is drawn for the actual (src, dst) link, so a refresh
        crossing regions takes longer to land than one next door — queries
        near a remote peer race a wider staleness window.  Deliveries to
        the same receiver keep their send order (an ordered transport, as
        TCP gives a real deployment); without this, two refreshes about the
        same peer could apply newest-first and leave the receiver
        permanently stale.
        """
        pending = self._inflight_updates.setdefault(dst, [])
        entry: list = [None, deliver]

        def fire() -> None:
            try:
                pending.remove(entry)
            except ValueError:
                pass
            deliver()

        # Priced like any other single message (size 1.0, matching Hop's
        # default), so bandwidth-limited links delay refreshes and routed
        # traffic alike — the staleness window they race is consistent.
        arrival = self.sim.now + self.topology.sample(src, dst, size=1.0)
        arrival = max(arrival, self._last_update_arrival.get(dst, 0.0))
        self._last_update_arrival[dst] = arrival
        entry[0] = self.sim.schedule_at(arrival, fire, label="table-update")
        pending.append(entry)

    def _flush_updates_to(self, address: Address) -> None:
        """Deliver every in-flight table refresh addressed to ``address``.

        A peer about to hand its state to a replacement first drains its
        inbox; without this, refreshes still in the air would be applied to
        the detached object and the replacement would inherit stale links
        forever (the synchronous protocols apply them instantly, so this
        also keeps the serialized runs equivalent).
        """
        for event, deliver in self._inflight_updates.pop(address, []):
            if self.sim.cancel(event):
                deliver()

    def _routing_degraded(self) -> bool:
        """Whether stale links can legitimately strand an operation.

        The synchronous notion (unrepaired failures, updates in flight)
        plus concurrency itself: with other operations in the air, links
        observed at one hop may be stale by the next.
        """
        return search_protocol.network_degraded(self.net) or self._in_flight > 1

    # -- hop generators -------------------------------------------------------

    def _route_steps(
        self, future: OpFuture, start: Address, key: int, mtype: MsgType
    ) -> OpSteps:
        """Per-hop :func:`~repro.core.search.route_to_owner`.

        Pays exactly the same messages as the synchronous walk; between
        hops, the simulator may run other operations' events.  With the
        hot-range cache on (locality extension, default off) the entry
        peer first tries its cached shortcut — one priced direct hop,
        verified at the landed peer, invalidated and resumed as a normal
        walk when stale (:mod:`repro.core.cache`).
        """
        net = self.net
        yield Hop(None, start)  # the request reaches its entry peer
        current = start
        cached = net.config.locality.cache_size > 0
        if cached:
            stats = net.cache_stats
            entry_peer = net.peers.get(start)
            cache = entry_peer.route_cache if entry_peer is not None else None
            hint = cache.lookup(key) if cache is not None else None
            if hint is None or hint == start:
                stats.misses += 1
            else:
                try:
                    net.count_message(start, hint, mtype)
                except PeerNotFoundError:
                    stats.misses += 1
                    cache.invalidate(hint)
                else:
                    yield Hop(start, hint)
                    target = net.peers.get(hint)
                    if target is not None and target.range.contains(key):
                        stats.hits += 1
                    else:
                        # Verified-stale (or the owner vanished mid-hop):
                        # drop the entry and walk on from where we landed —
                        # the regular loop below re-reads the peer, so a
                        # vanished carrier fails the op exactly like any
                        # other mid-flight loss.
                        stats.misses += 1
                        cache.invalidate(hint)
                    current = hint
        limit = search_protocol.hop_limit(net)
        for _ in range(limit):
            peer = net.peer(current)  # raises if the carrier vanished mid-op
            if peer.range.contains(key):
                if cached:
                    route_cache_protocol.record_route(net, start, peer)
                return current
            primary, fallback = search_protocol.hop_candidates(peer, key)
            if not primary:
                return current  # extreme node; key beyond the covered domain
            next_hop = search_protocol.first_live_hop(
                net, current, primary + fallback, mtype
            )
            if next_hop is None:
                if self._routing_degraded():
                    return current  # marooned; report best effort
                raise ProtocolError(
                    f"all routes from {peer.position} toward {key} are dead"
                )
            yield Hop(current, next_hop)
            current = next_hop
        if self._routing_degraded():
            return current
        raise ProtocolError(f"search for {key} did not terminate")

    def _search_exact_steps(
        self, future: OpFuture, start: Address, key: int
    ) -> OpSteps:
        owner = yield from self._route_steps(future, start, key, MsgType.SEARCH)
        peer = self.net.peer(owner)
        found = peer.range.contains(key) and key in peer.store
        return SearchResult(found=found, owner=owner, trace=future.trace)

    def _search_range_steps(
        self, future: OpFuture, start: Address, low: int, high: int
    ) -> OpSteps:
        net = self.net
        first = yield from self._route_steps(
            future, start, low, MsgType.RANGE_SEARCH
        )
        owners: List[Address] = []
        keys: List[int] = []
        # As in the synchronous walk: an answer anchored at a marooned peer
        # (degraded routing gave up short of low's owner) is never complete.
        complete = False
        anchored = search_protocol.anchors_range(net.peer(first), low)
        current = first
        limit = search_protocol.hop_limit(net) + net.size
        for _ in range(limit):
            try:
                peer = net.peer(current)
            except PeerNotFoundError:
                break  # carrier vanished between hops: truncated answer
            if peer.range.low >= high:
                complete = anchored
                break
            owners.append(current)
            keys.extend(peer.store.keys_in(low, high))
            if peer.range.high >= high or peer.right_adjacent is None:
                complete = anchored
                break
            next_hop = peer.right_adjacent.address
            try:
                net.count_message(current, next_hop, MsgType.RANGE_SEARCH)
            except PeerNotFoundError:
                break  # partial answer; repair will restore the chain
            yield Hop(current, next_hop)
            current = next_hop
        return RangeSearchResult(
            owners=owners, keys=keys, trace=future.trace, complete=complete
        )

    def _data_op_steps(
        self, future: OpFuture, start: Address, key: int, mtype: MsgType
    ) -> OpSteps:
        net = self.net
        owner_address = yield from self._route_steps(future, start, key, mtype)
        owner = net.peer(owner_address)
        if mtype is MsgType.INSERT:
            if not owner.range.contains(key):
                data_protocol.expand_extreme_range(net, owner, key)
            owner.store.insert(key)
            applied = True
            if net.config.replication:
                from repro.core import replication

                # The write-through is a priced hop of its own: the insert
                # future completes only once the mirror is confirmed.
                yield from self._lift(
                    replication.replicate_insert_steps(net, owner, key)
                )
            if owner.subscriptions:
                from repro.pubsub.subscribe import notify_steps

                # Notification pushes are priced hops of their own: the
                # insert completes once every subscriber has been told.
                yield from self._lift(notify_steps(net, owner, key))
        else:
            applied = owner.store.delete(key)
            if applied and net.config.replication:
                from repro.core import replication

                yield from self._lift(
                    replication.replicate_delete_steps(net, owner, key)
                )
        result = DataOpResult(applied=applied, owner=owner_address, trace=future.trace)
        if mtype is MsgType.INSERT and owner_address in net.peers:
            # (The owner can vanish during the replicate hop; a dead peer
            # has no load left to balance.)
            outcome = balance_protocol.maybe_balance(net, owner_address)
            if outcome is not None:
                result.balance_trace = outcome.trace
                result.balance_moves = outcome.shift_size
        return result

    def _join_steps(self, future: OpFuture, start: Address) -> OpSteps:
        net = self.net
        yield Hop(None, start)  # the join request reaches its entry peer
        newcomer = None
        if join_protocol.probing_active(net):
            # Same protocol as the sync facade: allocate the joiner early so
            # probe replies can be priced against its placement, then let
            # the contact probe candidate entry points (each probe/response
            # leg is a priced simulator event like any other message).
            from repro.core.ids import ROOT
            from repro.core.peer import BatonPeer

            newcomer = BatonPeer(net.alloc.allocate(), ROOT, net.config.domain)
            start = yield from self._lift(
                join_protocol.probe_entry_steps(net, newcomer.address, start)
            )
        current = start
        for _attempt in range(16):
            parent_address = yield from self._find_join_parent_steps(future, current)
            # The accepting parent drains its inbox before committing: the
            # walk's acceptance test may have read table entries whose
            # corrections (a neighbour's new child, a LEAVE notice) were
            # still in flight, and accepting on stale state would violate
            # Theorem 1.  Check and accept then run in the same simulator
            # event, so no other operation can snatch the slot in between.
            self._flush_updates_to(parent_address)
            parent = net.peer(parent_address)
            if not join_protocol.can_accept_join(parent):
                current = parent_address  # fresh state disagrees; keep walking
                yield Hop(current, current)  # local beat: re-examine, move on
                continue
            side = LEFT if parent.left_child is None else RIGHT
            new_peer = join_protocol.add_child(net, parent, side, peer=newcomer)
            net.stats.joins += 1
            return JoinResult(
                address=new_peer.address,
                parent=parent_address,
                find_trace=future.trace,
                update_trace=net.new_trace("join.update"),
            )
        raise ProtocolError("join kept losing acceptance races")

    def _find_join_parent_steps(self, future: OpFuture, start: Address) -> OpSteps:
        """Per-hop Algorithm 1 with mid-flight carrier-loss recovery.

        Mirrors :func:`repro.core.join.find_join_parent` decision for
        decision — including the visited set the request carries so it is
        never re-forwarded into a cycle — with hops yielded to the
        simulator in between.
        """
        net = self.net
        limit = 8 * max(net.size.bit_length(), 1) + 2 * net.size + 64
        current = start
        visited = {start}
        for _ in range(limit):
            try:
                peer = net.peer(current)
            except PeerNotFoundError:
                # The walk's carrier vanished; re-enter somewhere live, as a
                # real joining host would retry through another contact.
                current = net.random_peer_address()
                visited.add(current)
                yield Hop(None, current)  # fresh client ingress
                continue
            if join_protocol.can_accept_join(peer):
                return current
            next_hop = None
            revisit: Optional[Address] = None
            for candidate in join_protocol.forward_targets(net, peer):
                if candidate in visited:
                    if revisit is None:
                        revisit = candidate
                    continue
                if join_protocol.try_message(
                    net, current, candidate, MsgType.JOIN_FIND
                ):
                    next_hop = candidate
                    break
            if next_hop is None and revisit is not None:
                if join_protocol.try_message(
                    net, current, revisit, MsgType.JOIN_FIND
                ):
                    next_hop = revisit
            if next_hop is None:
                if not self._routing_degraded():
                    raise ProtocolError(
                        f"join request stuck at {peer.position}: "
                        "no forwarding target"
                    )
                current = net.random_peer_address()
                visited.add(current)
                yield Hop(None, current)  # marooned: retry via a new contact
            else:
                visited.add(next_hop)
                yield Hop(current, next_hop)
                current = next_hop
        raise ProtocolError("join request did not terminate (routing state corrupt?)")

    def _leave_steps(self, future: OpFuture, address: Address) -> OpSteps:
        net = self.net
        yield Hop(None, address)  # the departure intent is announced
        for _attempt in range(8):
            departing = net.peer(address)  # raises if the peer already vanished
            if net.size == 1:
                net.unregister_peer(address)
                net.stats.leaves += 1
                return self._leave_result(future, address, None)
            self._flush_updates_to(address)
            if leave_protocol.can_depart_simply(departing):
                absorber = departing.parent
                # The handover transfer carries the keys plus any
                # subscription entries the absorber inherits.
                handover = len(departing.store) + len(departing.subscriptions or ())
                leave_protocol.depart_leaf(net, departing, content_target="parent")
                net.stats.leaves += 1
                if absorber is not None:
                    # The key handover is a bulk transfer: the departure is
                    # only complete once the keys land at the parent, and a
                    # bandwidth-limited link charges for every one of them
                    # (the structural splice above stays atomic).
                    yield Hop(
                        address,
                        absorber.address,
                        size=float(max(1, handover)),
                    )
                return self._leave_result(future, address, None)
            replacement_address = yield from self._find_replacement_steps(
                future, departing
            )
            if net.peers.get(address) is not departing:
                # Another operation removed or transplanted us mid-walk; the
                # next attempt re-reads the peer (and fails if it is gone).
                yield Hop(address, address)
                continue
            if replacement_address is None or replacement_address == address:
                yield Hop(address, address)
                continue
            replacement = net.peers.get(replacement_address)
            if replacement is None:
                yield Hop(address, address)  # lost the race; walk again
                continue
            # Drain the replacement's inbox first: its safe-departure test
            # reads its tables, which must not be mid-refresh.
            self._flush_updates_to(replacement_address)
            if not leave_protocol.can_depart_simply(replacement):
                yield Hop(address, address)  # lost the race; walk again
                continue
            repl_parent = replacement.parent
            repl_handover = len(replacement.store) + len(
                replacement.subscriptions or ()
            )
            handover = len(departing.store) + len(departing.subscriptions or ())
            leave_protocol.depart_leaf(net, replacement, content_target="parent")
            # Refreshes emitted by the departure itself can target the
            # departing peer; they must land before its state is handed over.
            self._flush_updates_to(address)
            leave_protocol.transplant(net, departing, replacement)
            net.stats.leaves += 1
            # Two bulk transfers priced after the (atomic) surgeries: the
            # replacement leaf's own keys to its parent, and the departing
            # peer's store to the replacement that now owns its slot.
            if repl_parent is not None:
                yield Hop(
                    replacement_address,
                    repl_parent.address,
                    size=float(max(1, repl_handover)),
                )
            yield Hop(address, replacement_address, size=float(max(1, handover)))
            return self._leave_result(future, address, replacement_address)
        raise ProtocolError(f"leave of address {address} kept losing races")

    def _leave_result(
        self, future: OpFuture, address: Address, replacement: Optional[Address]
    ) -> LeaveResult:
        return LeaveResult(
            departed=address,
            replacement=replacement,
            find_trace=future.trace,
            update_trace=self.net.new_trace("leave.update"),
        )

    def _find_replacement_steps(
        self, future: OpFuture, departing
    ) -> Generator[Hop, None, Optional[Address]]:
        """Per-hop Algorithm 2; None (instead of an error) on dead ends."""
        net = self.net
        try:
            start = leave_protocol.replacement_entry_point(net, departing)
        except (ProtocolError, PeerNotFoundError):
            return None
        yield Hop(departing.address, start)
        limit = 4 * max(net.size.bit_length(), 2) + 32
        current = start
        for _ in range(limit):
            try:
                peer = net.peer(current)
            except PeerNotFoundError:
                return None  # carrier vanished; the caller re-walks
            next_hop: Optional[Address] = None
            if peer.left_child is not None:
                next_hop = peer.left_child.address
            elif peer.right_child is not None:
                next_hop = peer.right_child.address
            else:
                with_children = (
                    peer.left_table.nodes_with_children()
                    + peer.right_table.nodes_with_children()
                )
                if with_children:
                    nearest = min(
                        with_children,
                        key=lambda info: abs(
                            info.position.number - peer.position.number
                        ),
                    )
                    next_hop = nearest.left_child or nearest.right_child
                else:
                    return current
            if next_hop is None:
                return None
            try:
                net.count_message(current, next_hop, MsgType.LEAVE_FIND)
            except PeerNotFoundError:
                return None
            yield Hop(current, next_hop)
            current = next_hop
        return None

    def _multicast_steps(
        self, future: OpFuture, start: Address, low: int, high: int
    ) -> OpSteps:
        from repro.pubsub.multicast import multicast_steps

        yield Hop(None, start)  # the publish reaches its entry peer
        return (
            yield from self._lift(
                multicast_steps(
                    self.net, start, low, high, degraded=self._routing_degraded
                )
            )
        )

    def _subscribe_steps(
        self, future: OpFuture, start: Address, low: int, high: int
    ) -> OpSteps:
        from repro.pubsub.subscribe import subscribe_steps

        yield Hop(None, start)  # the subscriber contacts the overlay
        return (
            yield from self._lift(
                subscribe_steps(
                    self.net, start, low, high, degraded=self._routing_degraded
                )
            )
        )

    def _fail_steps(self, future: OpFuture, address: Address) -> OpSteps:
        yield Hop(None, address)  # the crash is observed one beat later
        if address in self.net.peers:
            self.net.fail(address)
            return address
        return None

    def _repair_steps(self, future: OpFuture, address: Address) -> OpSteps:
        net = self.net
        yield Hop(None, address)  # the failure report reaches the coordinator
        if address not in net.ghosts:
            return None  # already repaired (or never actually crashed)
        result = yield from self._lift(
            failure_protocol.repair_steps(net, address, future.trace)
        )
        net.stats.repairs += 1
        return result

    def _replica_refresh_steps(self, future: OpFuture, address: Address) -> OpSteps:
        from repro.core import replication

        net = self.net
        if not net.config.replication:
            return 0
        peer = net.peers.get(address)
        if peer is None:
            return 0  # vanished between submission rounds
        return (yield from self._lift(replication.refresh_peer_steps(net, peer)))
