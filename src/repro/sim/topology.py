"""Topology-aware transport: per-link delay and bandwidth.

The paper's cost model counts hops as if every link were equal, but BATON's
sideways routing tables only earn their keep on real networks where links
have heterogeneous cost — a hop that skips across subtrees is worth more
when it also skips an ocean.  This module is the transport seam that lets
the experiments ask that question: every peer address is assigned a
*placement* (a region, a coordinate), and each message's transit time is
drawn **per link** via :meth:`Topology.sample`, optionally including a
message-size/bandwidth serialization term.

The contract (see DESIGN.md, "Transport contract"):

* Protocol walks declare every hop as a :class:`Hop` — which pair of peers
  the message travels between, and how big it is.  ``src=None`` marks a
  client-ingress hop (the request entering the overlay from outside);
  ``src == dst`` marks a local beat, charged as the cheapest link and
  never free.
* ``sample(src, dst, size=...)`` is the **only** transport entry point; the
  old arg-less scalar draw is gone.  Scalar models
  (:class:`~repro.sim.latency.LatencyModel`) survive as degenerate
  single-region topologies whose delay ignores the link.
* ``size`` is an honest payload measure: only hops that genuinely carry
  bulk data are sized — a departing node's key handover, a replica
  refresh or repair-time replica pull (DESIGN.md, "Durability contract")
  — and topologies without a bandwidth term ignore it rather than invent
  one.  Routing chatter is never sized to make a topology look busier.
* Placements derive deterministically from ``(topology seed, address)``, so
  a peer's location never depends on the order links are first used, and
  two topologies built from the same seed produce identical delays for
  identical call sequences.

Maintenance traffic crosses these links like everything else: table
refreshes, reconcile digests and replication upkeep are all priced per
link, which is what makes the staleness-vs-maintenance-traffic trade-off
(`experiments/durability.py`) measurable instead of asserted.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.address import Address
from repro.util.rng import SeededRng, derive_seed


@dataclass(frozen=True)
class Hop:
    """One message transit between two peers.

    Step generators yield one ``Hop`` per network hop; the runtime turns it
    into a scheduled delay via :meth:`Topology.sample`.  ``src=None`` marks
    a client-ingress hop (the request entering the overlay at ``dst``);
    ``src == dst`` marks a local beat (a peer re-examining fresh state, no
    wire crossed — topologies charge it the cheapest link).  ``size`` is an
    abstract message size in payload units; topologies with bandwidth add
    ``size / bandwidth`` serialization time on top of propagation delay.
    """

    src: Optional[Address]
    dst: Optional[Address]
    size: float = 1.0


class Topology(abc.ABC):
    """Per-link transport model: what a message between two peers costs.

    Concrete topologies implement :meth:`link_delay` (propagation) and may
    override :meth:`link_bandwidth` (serialization).  Callers use only
    :meth:`sample`.
    """

    def sample(
        self, src: Optional[Address], dst: Optional[Address], *, size: float = 0.0
    ) -> float:
        """One sampled transit time for a ``size``-unit message src -> dst.

        ``None`` endpoints are normalized: a client-ingress hop
        (``src=None``) is charged as if the client were co-located with its
        entry peer, and a fully anonymous hop (both ``None``) costs one
        baseline local link.
        """
        if src is None:
            src = dst
        if dst is None:
            dst = src
        delay = self.link_delay(src, dst)
        if size > 0:
            bandwidth = self.link_bandwidth(src, dst)
            if bandwidth is not None:
                delay += size / bandwidth
        return delay

    @abc.abstractmethod
    def link_delay(self, src: Optional[Address], dst: Optional[Address]) -> float:
        """Propagation delay for one message on the (src, dst) link (>= 0)."""

    def link_bandwidth(
        self, src: Optional[Address], dst: Optional[Address]
    ) -> Optional[float]:
        """Payload units per time unit on this link; None = unconstrained."""
        return None

    def direct_delay(
        self, src: Optional[Address], dst: Optional[Address]
    ) -> float:
        """The *expected* one-message cost of the direct (src, dst) link.

        This is the denominator of the latency-stretch metric (an
        operation's accumulated transit divided by what one direct hop to
        the owner would have cost): deterministic — it must never consume
        the jitter stream, or computing a metric would perturb the run it
        measures — and un-jittered, so stretch 1.0 means "as good as a
        direct link on average".  Stochastic topologies override this with
        a closed-form expectation; the base implementation is only correct
        for deterministic ``link_delay``.
        """
        if src is None:
            src = dst
        if dst is None:
            dst = src
        return self.link_delay(src, dst)


class PlacementTopology(Topology):
    """Base for topologies that assign every address a placement.

    Placements are derived from ``(seed, address)`` by hashing —
    **not** from the order addresses are first seen — so the same peer
    lands in the same place whichever overlay or operation touches it
    first, and replays are exact.  ``None`` (the client side of an ingress
    hop, already normalized away by :meth:`Topology.sample`) gets its own
    stable placement under the label ``"client"``.

    Per-sample jitter comes from a single seeded stream, so two topologies
    built from the same seed produce identical delays for identical call
    sequences — the determinism the runtime's replay guarantees lean on.
    """

    def __init__(self, seed: int = 0, *, jitter: float = 0.2):
        if jitter < 0:
            raise ValueError("jitter cannot be negative")
        self.seed = seed
        self.jitter = jitter
        self._placements: Dict[object, object] = {}
        self._jitter_rng = SeededRng(derive_seed(seed, "jitter"))
        #: Bound draw, so the per-sample hot path skips attribute lookups.
        self._jitter_draw = self._jitter_rng.random

    def placement(self, address: Optional[Address]):
        """The (deterministic) placement of ``address``."""
        key = int(address) if address is not None else "client"
        placed = self._placements.get(key)
        if placed is None:
            placed = self._place(SeededRng(derive_seed(self.seed, "place", key)))
            self._placements[key] = placed
        return placed

    @abc.abstractmethod
    def _place(self, rng: SeededRng):
        """Draw one placement from an address-specific rng."""

    def _jittered(self, base: float) -> float:
        """Multiply ``base`` by (1 + jitter * U[0,1))."""
        if self.jitter == 0:
            return base
        return base * (1.0 + self.jitter * self._jitter_draw())


class ClusteredTopology(PlacementTopology):
    """A multi-region WAN: cheap intra-region links, expensive inter-region.

    Every address is pinned to one of ``regions`` regions.  Intra-region
    links cost ``intra_delay``; inter-region links cost ``inter_delay``
    scaled by a per-*ordered*-pair factor in ``[1 - asymmetry,
    1 + asymmetry]`` drawn once per direction — so the A->B and B->A routes
    genuinely differ, as real WAN paths do.  Every sample is then jittered
    multiplicatively.  Optional ``intra_bandwidth`` / ``inter_bandwidth``
    add a ``size / bandwidth`` term for sized messages.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        regions: int = 4,
        intra_delay: float = 0.5,
        inter_delay: float = 5.0,
        jitter: float = 0.2,
        asymmetry: float = 0.1,
        intra_bandwidth: Optional[float] = None,
        inter_bandwidth: Optional[float] = None,
    ):
        if regions < 1:
            raise ValueError("need at least one region")
        if intra_delay < 0 or inter_delay < 0:
            raise ValueError("delays cannot be negative")
        if not 0.0 <= asymmetry < 1.0:
            raise ValueError("asymmetry must be in [0, 1)")
        for name, value in (
            ("intra_bandwidth", intra_bandwidth),
            ("inter_bandwidth", inter_bandwidth),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        super().__init__(seed, jitter=jitter)
        self.regions = regions
        self.intra_delay = intra_delay
        self.inter_delay = inter_delay
        self.asymmetry = asymmetry
        self.intra_bandwidth = intra_bandwidth
        self.inter_bandwidth = inter_bandwidth
        self._pair_factors: Dict[Tuple[int, int], float] = {}
        # Per-ordered-pair cost matrices, materialized eagerly (factors are
        # seeded per pair, so eager vs. lazy draws are identical).  The hot
        # :meth:`sample` below is then region lookups + list indexing — no
        # dict or method dispatch per call, which matters when every hop of
        # an N=10k run prices a link.
        self._pair_base: List[List[float]] = [
            [
                intra_delay if i == j else inter_delay * self._pair_factor(i, j)
                for j in range(regions)
            ]
            for i in range(regions)
        ]
        self._pair_bandwidth: List[List[Optional[float]]] = [
            [
                intra_bandwidth if i == j else inter_bandwidth
                for j in range(regions)
            ]
            for i in range(regions)
        ]

    def region_of(self, address: Optional[Address]) -> int:
        return self.placement(address)

    def _place(self, rng: SeededRng) -> int:
        return rng.randint(0, self.regions - 1)

    def _pair_factor(self, src_region: int, dst_region: int) -> float:
        key = (src_region, dst_region)
        factor = self._pair_factors.get(key)
        if factor is None:
            rng = SeededRng(derive_seed(self.seed, "pair", src_region, dst_region))
            factor = 1.0 + self.asymmetry * (2.0 * rng.random() - 1.0)
            self._pair_factors[key] = factor
        return factor

    def sample(
        self, src: Optional[Address], dst: Optional[Address], *, size: float = 0.0
    ) -> float:
        # Inlined fast path of Topology.sample + link_delay: one draw per
        # call (identical to the generic path, so replays are unchanged),
        # zero per-call Position/dict churn.
        if src is None:
            src = dst if dst is not None else "client"
        if dst is None:
            dst = src
        placements = self._placements
        src_region = placements.get(src, -1)
        if src_region < 0:
            src_region = self.placement(src if src != "client" else None)
        dst_region = placements.get(dst, -1)
        if dst_region < 0:
            dst_region = self.placement(dst if dst != "client" else None)
        delay = self._pair_base[src_region][dst_region]
        if self.jitter:
            delay *= 1.0 + self.jitter * self._jitter_draw()
        if size > 0:
            bandwidth = self._pair_bandwidth[src_region][dst_region]
            if bandwidth is not None:
                delay += size / bandwidth
        return delay

    def link_delay(self, src, dst) -> float:
        src_region = self.placement(src)
        dst_region = self.placement(dst)
        return self._jittered(self._pair_base[src_region][dst_region])

    def link_bandwidth(self, src, dst) -> Optional[float]:
        return self._pair_bandwidth[self.placement(src)][self.placement(dst)]

    def direct_delay(self, src, dst) -> float:
        """Un-jittered expected cost of the direct link (stretch metric)."""
        return self._pair_base[self.placement(src)][self.placement(dst)]


class CoordinateTopology(PlacementTopology):
    """Peers at seeded points in the unit square; delay grows with distance.

    A flat geographic spread (PlanetLab-style): each address gets uniform
    coordinates, and a link costs ``base_delay + unit_delay * euclidean``,
    jittered.  An optional flat ``bandwidth`` adds the serialization term.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        base_delay: float = 0.2,
        unit_delay: float = 2.0,
        jitter: float = 0.1,
        bandwidth: Optional[float] = None,
    ):
        if base_delay < 0 or unit_delay < 0:
            raise ValueError("delays cannot be negative")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        super().__init__(seed, jitter=jitter)
        self.base_delay = base_delay
        self.unit_delay = unit_delay
        self.bandwidth = bandwidth

    def coordinates_of(self, address: Optional[Address]) -> Tuple[float, float]:
        return self.placement(address)

    def _place(self, rng: SeededRng) -> Tuple[float, float]:
        return (rng.random(), rng.random())

    def link_delay(self, src, dst) -> float:
        x1, y1 = self.placement(src)
        x2, y2 = self.placement(dst)
        distance = math.hypot(x1 - x2, y1 - y2)
        return self._jittered(self.base_delay + self.unit_delay * distance)

    def link_bandwidth(self, src, dst) -> Optional[float]:
        return self.bandwidth

    def direct_delay(self, src, dst) -> float:
        """Un-jittered distance-proportional cost (stretch metric)."""
        x1, y1 = self.placement(src)
        x2, y2 = self.placement(dst)
        return self.base_delay + self.unit_delay * math.hypot(x1 - x2, y1 - y2)


#: Names `make_topology` accepts (the CLI's --topology choices).
TOPOLOGY_CHOICES = ("constant", "uniform", "exponential", "clustered", "coordinate")


def available_topologies() -> List[str]:
    """Topology factory names, in presentation order."""
    return list(TOPOLOGY_CHOICES)


def make_topology(name: str, seed: int = 0, **params) -> Topology:
    """Build a topology by name with seeded sub-streams.

    The scalar names (``constant`` / ``uniform`` / ``exponential``) return
    the degenerate single-region models; ``clustered`` and ``coordinate``
    return placement topologies.  ``params`` are forwarded to the
    constructor (e.g. ``inter_delay=10.0`` for ``clustered``).
    """
    from repro.sim.latency import (
        ConstantLatency,
        ExponentialLatency,
        UniformLatency,
    )

    if name == "constant":
        return ConstantLatency(params.pop("delay", 1.0), **params)
    rng = SeededRng(derive_seed(seed, "topology", name))
    if name == "uniform":
        return UniformLatency(
            params.pop("low", 0.5), params.pop("high", 1.5), rng, **params
        )
    if name == "exponential":
        return ExponentialLatency(params.pop("mean", 1.0), rng, **params)
    if name == "clustered":
        return ClusteredTopology(seed, **params)
    if name == "coordinate":
        return CoordinateTopology(seed, **params)
    known = ", ".join(TOPOLOGY_CHOICES)
    raise ValueError(f"unknown topology {name!r}; available: {known}")
