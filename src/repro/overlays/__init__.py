"""Unified overlay API: one protocol, one registry, three implementations.

The paper's evaluation is comparative — BATON against a Chord-style hashed
ring and against its multiway-tree ancestor — and this package is the seam
that makes the comparison mechanical::

    from repro import overlays

    for name in overlays.available():           # ['baton', 'chord', 'multiway']
        entry = overlays.get(name)
        net = entry.build(1000, seed=7)          # synchronous Overlay
        anet = entry.wrap(net)                   # AsyncOverlayRuntime
        future = anet.submit_search_exact(42)
        anet.drain()

Every registered network satisfies the :class:`Overlay` protocol (same
method names — ``random_peer_address`` everywhere, no more per-overlay
spellings — and the same unified result dataclasses, including the
``complete`` truncation flag on every range answer), and every runtime
shares :class:`~repro.sim.runtime.AsyncOverlayRuntime`'s hop-generator
machinery, so all three execute joins, leaves, searches and inserts as
interleaved simulator events under identical workloads.
"""

from repro.chord.runtime import AsyncChordNetwork
from repro.multiway.runtime import AsyncMultiwayNetwork
from repro.overlays.protocol import (
    ALL_CAPABILITIES,
    BALANCE,
    FAIL,
    MULTICAST,
    RECONCILE,
    REPAIR,
    REPLICATION,
    SUBSCRIBE,
    Overlay,
)
from repro.overlays.registry import OverlayEntry, available, get, register
from repro.sim.runtime import AsyncBatonNetwork, AsyncOverlayRuntime

def _replicated_baton_config():
    from repro.core.network import BatonConfig

    return BatonConfig(replication=True)


register(
    OverlayEntry(
        name="baton",
        description=(
            "BATON balanced binary tree: O(log N) joins/leaves/searches, "
            "order-preserving ranges, fail/repair, load balancing and "
            "range multicast/pub-sub"
        ),
        network_cls=AsyncBatonNetwork.network_cls,
        runtime_cls=AsyncBatonNetwork,
        replicated_config=_replicated_baton_config,
    )
)
register(
    OverlayEntry(
        name="chord",
        description=(
            "Chord hashed ring: O(log N) exact lookups via fingers, "
            "Θ(log² N) membership updates, O(N) range scans"
        ),
        network_cls=AsyncChordNetwork.network_cls,
        runtime_cls=AsyncChordNetwork,
    )
)
register(
    OverlayEntry(
        name="multiway",
        description=(
            "Multiway tree (reference [10]): cheap joins, expensive "
            "multi-child leaves, link-by-link searches without sideways tables"
        ),
        network_cls=AsyncMultiwayNetwork.network_cls,
        runtime_cls=AsyncMultiwayNetwork,
    )
)

__all__ = [
    "Overlay",
    "OverlayEntry",
    "AsyncOverlayRuntime",
    "AsyncBatonNetwork",
    "AsyncChordNetwork",
    "AsyncMultiwayNetwork",
    "available",
    "get",
    "register",
    "FAIL",
    "REPAIR",
    "BALANCE",
    "RECONCILE",
    "REPLICATION",
    "MULTICAST",
    "SUBSCRIBE",
    "ALL_CAPABILITIES",
]
