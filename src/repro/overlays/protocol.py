"""The ``Overlay`` protocol: the surface every overlay network shares.

BATON, Chord and the multiway tree are three answers to the same question —
how should N peers partition a key space and route to it? — and the
experiments ask them identical questions.  This module names the contract
they all satisfy, so harnesses, workloads and the async runtime can be
written once against it (see DESIGN.md for the full contract, including
the message-accounting honesty rules implementations must follow).

Required surface (structural, checked by the conformance suite):

* ``build(n, seed=0, config=None)`` — classmethod constructor;
* ``size`` / ``addresses()`` / ``random_peer_address()`` — population;
* ``join(via=None)`` / ``leave(address)`` — membership, returning
  :class:`~repro.core.results.JoinResult` / ``LeaveResult``;
* ``search_exact`` / ``search_range`` / ``insert`` / ``delete`` — data
  operations returning the unified result types (range answers carry the
  ``complete`` truncation flag);
* ``bulk_load(keys)`` — untimed initial placement.

Optional capabilities — abrupt ``fail``/``repair``, load ``balance``,
``reconcile`` anti-entropy, ``replication``, and the dissemination pair
``multicast``/``subscribe`` — are advertised on the registry entry
(:class:`~repro.overlays.registry.OverlayEntry`) and on the async runtime
(:meth:`~repro.sim.runtime.AsyncOverlayRuntime.supports`) rather than
stubbed with no-ops, so comparisons never silently measure a missing
feature.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, runtime_checkable

from repro.core.results import (
    DataOpResult,
    JoinResult,
    LeaveResult,
    RangeSearchResult,
    SearchResult,
)
from repro.net.address import Address
from repro.net.bus import MessageBus

#: Names an overlay may advertise in its ``capabilities`` set.
FAIL = "fail"
REPAIR = "repair"
BALANCE = "balance"
RECONCILE = "reconcile"
REPLICATION = "replication"
MULTICAST = "multicast"
SUBSCRIBE = "subscribe"

ALL_CAPABILITIES = frozenset(
    {FAIL, REPAIR, BALANCE, RECONCILE, REPLICATION, MULTICAST, SUBSCRIBE}
)


@runtime_checkable
class Overlay(Protocol):
    """Structural type for a synchronous overlay network.

    ``isinstance(net, Overlay)`` checks attribute presence only (the
    standard :func:`typing.runtime_checkable` semantics); behavioural
    conformance — result types, the ``complete`` flag, message accounting —
    is pinned by ``tests/test_overlay_protocol.py``.
    """

    bus: MessageBus

    @property
    def size(self) -> int: ...

    def addresses(self) -> List[Address]: ...

    def random_peer_address(self) -> Address: ...

    def join(self, via: Optional[Address] = None) -> JoinResult: ...

    def leave(self, address: Address) -> LeaveResult: ...

    def search_exact(
        self, key: int, via: Optional[Address] = None
    ) -> SearchResult: ...

    def search_range(
        self, low: int, high: int, via: Optional[Address] = None
    ) -> RangeSearchResult: ...

    def insert(self, key: int, via: Optional[Address] = None) -> DataOpResult: ...

    def delete(self, key: int, via: Optional[Address] = None) -> DataOpResult: ...

    def bulk_load(self, keys: Sequence[int]) -> int: ...
