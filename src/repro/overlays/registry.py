"""The overlay registry: names to (network, runtime) pairs.

Experiments, the CLI, benchmarks and the concurrent workload driver all
select overlays by name — ``overlays.get("baton")`` — so adding a fourth
overlay is one :func:`register` call, not a sweep through every harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.latency import LatencyModel
from repro.sim.runtime import AsyncOverlayRuntime
from repro.sim.topology import Topology


@dataclass(frozen=True)
class OverlayEntry:
    """One registered overlay: its sync network and async runtime classes."""

    name: str
    description: str
    network_cls: type
    runtime_cls: type

    @property
    def capabilities(self) -> frozenset:
        """Optional operations this overlay supports (from its runtime)."""
        return self.runtime_cls.capabilities

    def build(self, n_peers: int, seed: int = 0, **kwargs):
        """Grow a synchronous network of ``n_peers``."""
        return self.network_cls.build(n_peers, seed=seed, **kwargs)

    def build_async(
        self,
        n_peers: int,
        seed: int = 0,
        *,
        latency: Optional[LatencyModel] = None,
        topology: Optional[Topology] = None,
        **kwargs,
    ) -> AsyncOverlayRuntime:
        """Grow a synchronous network and wrap it for concurrent traffic.

        ``topology`` selects the per-link transport model; ``latency`` is
        the historical spelling for the scalar (single-region) case.
        """
        return self.runtime_cls.build(
            n_peers, seed=seed, latency=latency, topology=topology, **kwargs
        )

    def wrap(
        self,
        net,
        *,
        sim=None,
        latency: Optional[LatencyModel] = None,
        topology: Optional[Topology] = None,
        **kwargs,
    ) -> AsyncOverlayRuntime:
        """Wrap an existing synchronous network in the async runtime."""
        return self.runtime_cls(
            net, sim=sim, latency=latency, topology=topology, **kwargs
        )


_REGISTRY: Dict[str, OverlayEntry] = {}


def register(entry: OverlayEntry) -> OverlayEntry:
    """Add an overlay to the registry; names must be unique."""
    if entry.name in _REGISTRY:
        raise ValueError(f"overlay {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry
    return entry


def get(name: str) -> OverlayEntry:
    """Look up one overlay by name (KeyError lists what exists)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available()) or "<none>"
        raise KeyError(f"unknown overlay {name!r}; available: {known}") from None


def available() -> List[str]:
    """Registered overlay names, sorted."""
    return sorted(_REGISTRY)
