"""The overlay registry: names to (network, runtime) pairs.

Experiments, the CLI, benchmarks and the concurrent workload driver all
select overlays by name — ``overlays.get("baton")`` — so adding a fourth
overlay is one :func:`register` call, not a sweep through every harness.

Each entry **advertises** what its overlay can do (DESIGN.md, "The
``Overlay`` protocol"): the ``capabilities`` set — ``fail`` / ``repair`` /
``balance`` / ``reconcile`` / ``replication`` / ``multicast`` /
``subscribe`` — comes straight from the runtime class and is never
stubbed with no-ops.  Harnesses that need an
optional feature check the entry (or ``runtime.supports(...)``) and asking
an overlay for a feature it does not advertise raises
:class:`~repro.util.errors.CapabilityError` — so a comparison can never
silently measure a missing feature.  The same honesty applies to the
data-durability extension (DESIGN.md, "Durability contract"):
``build_async(..., replication=True)`` only works for entries advertising
``replication`` and registered with a ``replicated_config`` factory —
today that is BATON alone; Chord and the multiway baseline refuse rather
than pretend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.latency import LatencyModel
from repro.sim.runtime import AsyncOverlayRuntime
from repro.sim.topology import Topology
from repro.util.errors import CapabilityError


@dataclass(frozen=True)
class OverlayEntry:
    """One registered overlay: its sync network and async runtime classes."""

    name: str
    description: str
    network_cls: type
    runtime_cls: type
    #: Builds a network config with data replication turned on, for
    #: overlays that advertise the ``replication`` capability (None
    #: everywhere else — the capability check refuses first).
    replicated_config: Optional[Callable[[], object]] = None

    @property
    def capabilities(self) -> frozenset:
        """Optional operations this overlay supports (from its runtime)."""
        return self.runtime_cls.capabilities

    def build(self, n_peers: int, seed: int = 0, **kwargs):
        """Grow a synchronous network of ``n_peers``."""
        return self.network_cls.build(n_peers, seed=seed, **kwargs)

    def build_async(
        self,
        n_peers: int,
        seed: int = 0,
        *,
        latency: Optional[LatencyModel] = None,
        topology: Optional[Topology] = None,
        replication: bool = False,
        **kwargs,
    ) -> AsyncOverlayRuntime:
        """Grow a synchronous network and wrap it for concurrent traffic.

        ``topology`` selects the per-link transport model; ``latency`` is
        the historical spelling for the scalar (single-region) case.
        ``replication=True`` turns on the data-durability extension and is
        refused (:class:`CapabilityError`) by overlays that do not
        advertise the capability.

        Protocol-grown base networks go through the snapshot cache when
        it is enabled (``repro.experiments.snapshot``): the synchronous
        build is deterministic in ``(overlay, n_peers, seed, config)``,
        while ``topology`` and every runtime kwarg are wrap-time choices
        that never touch the built state — so chaos/multicast cells that
        drive one base differently share a single build.
        """
        if replication:
            if (
                "replication" not in self.capabilities
                or self.replicated_config is None
            ):
                raise CapabilityError(
                    f"the {self.name} overlay does not support replication"
                )
            if kwargs.get("config") is not None:
                raise ValueError(
                    "pass either config= or replication=True, not both "
                    "(set replication on your config instead)"
                )
            kwargs["config"] = self.replicated_config()
        if self.runtime_cls.network_cls is None:
            raise TypeError(
                f"{self.runtime_cls.__name__} has no network_cls to build"
            )
        net = self._build_base(
            n_peers,
            seed,
            config=kwargs.pop("config", None),
            bulk=kwargs.pop("bulk", False),
            keys=kwargs.pop("keys", None),
        )
        return self.runtime_cls(
            net, latency=latency, topology=topology, **kwargs
        )

    def _build_base(self, n_peers: int, seed: int, *, config, bulk, keys):
        """The synchronous network under :meth:`build_async`, snapshot-
        cached when eligible (protocol-grown, describable config)."""
        build_kwargs = {"bulk": True, "keys": keys} if bulk else {}

        def builder():
            return self.runtime_cls.network_cls.build(
                n_peers, seed=seed, config=config, **build_kwargs
            )

        from repro.experiments import snapshot

        if bulk or not snapshot.enabled():
            # Bulk construction is already restore-priced; caching it
            # would trade disk for nothing (DESIGN.md, "Parallelism
            # contract").
            return builder()
        try:
            parts = {
                "builder": f"{self.name}-sync",
                "n_peers": n_peers,
                "seed": seed,
                "config": snapshot.describe(config),
            }
        except TypeError:
            return builder()  # an undescribable config is never keyed
        return snapshot.cached(parts, builder)

    def wrap(
        self,
        net,
        *,
        sim=None,
        latency: Optional[LatencyModel] = None,
        topology: Optional[Topology] = None,
        **kwargs,
    ) -> AsyncOverlayRuntime:
        """Wrap an existing synchronous network in the async runtime."""
        return self.runtime_cls(
            net, sim=sim, latency=latency, topology=topology, **kwargs
        )


_REGISTRY: Dict[str, OverlayEntry] = {}


def register(entry: OverlayEntry) -> OverlayEntry:
    """Add an overlay to the registry; names must be unique."""
    if entry.name in _REGISTRY:
        raise ValueError(f"overlay {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry
    return entry


def get(name: str) -> OverlayEntry:
    """Look up one overlay by name (KeyError lists what exists)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available()) or "<none>"
        raise KeyError(f"unknown overlay {name!r}; available: {known}") from None


def available() -> List[str]:
    """Registered overlay names, sorted."""
    return sorted(_REGISTRY)
