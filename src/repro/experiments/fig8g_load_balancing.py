"""Figure 8(g): average messages spent on load balancing.

Paper's reading: balancing traffic grows linearly with the number of
inserts for skewed (Zipf 1.0) data and stays near zero for uniform data;
the skewed overhead is still tiny per insertion (the paper reports roughly
one balancing message per ~1500 insertions at its scale).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.balancing import BalancingRun, run_balancing
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    default_scale,
    mean,
)

EXPECTATION = (
    "zipf balancing messages grow ~linearly with #inserts and dominate "
    "uniform; per-insert overhead stays small (amortized O(log N))"
)


def run(
    scale: Optional[ExperimentScale] = None,
    runs: Optional[List[BalancingRun]] = None,
) -> ExperimentResult:
    scale = scale or default_scale()
    runs = runs if runs is not None else run_balancing(scale)
    result = ExperimentResult(
        figure="Fig 8g",
        title="Load balancing messages, uniform vs Zipf(1.0)",
        columns=[
            "distribution",
            "N",
            "inserts",
            "balance_events",
            "balance_msgs",
            "msgs_per_insert",
        ],
        expectation=EXPECTATION,
    )
    for distribution in ("uniform", "zipf"):
        group = [r for r in runs if r.distribution == distribution]
        if not group:
            continue
        inserts = group[0].inserts
        result.add_row(
            distribution=distribution,
            N=group[0].n_peers,
            inserts=inserts,
            balance_events=mean([r.balance_events for r in group]),
            balance_msgs=mean([r.balance_messages for r in group]),
            msgs_per_insert=mean([r.balance_messages / r.inserts for r in group]),
        )
    # Timeline rows demonstrate the linear growth the paper plots.
    for run_ in runs:
        if run_.distribution != "zipf" or run_.seed != scale.seeds[0]:
            continue
        for inserted, cumulative in run_.timeline:
            result.add_row(
                distribution="zipf_timeline",
                N=run_.n_peers,
                inserts=inserted,
                balance_events="",
                balance_msgs=cumulative,
                msgs_per_insert=cumulative / inserted,
            )
    return result


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
