"""Experiment drivers reproducing every panel of Figure 8 (§V).

Each ``fig8*`` module exposes ``run(scale) -> ExperimentResult`` and a
``main()`` that prints the measured series next to the paper's expected
shape; :mod:`repro.experiments.runall` executes the lot.  Scales are
controlled by :class:`~repro.experiments.harness.ExperimentScale` — the
default is laptop-sized, ``REPRO_FULL_SCALE=1`` restores the paper's
1000–10000-peer sweeps (see DESIGN.md's substitution table).
"""

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    default_scale,
    quick_scale,
)

__all__ = [
    "ExperimentResult",
    "ExperimentScale",
    "default_scale",
    "quick_scale",
]
