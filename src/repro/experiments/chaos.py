"""Chaos suite: the four correlated-disaster scenarios across overlays.

Each cell runs one :mod:`repro.workloads.chaos` scenario on one overlay
over a :class:`~repro.sim.topology.ClusteredTopology` (wrapped in the
scenario's :class:`~repro.sim.faults.FaultPlan` where it has one), with
light background churn/insert traffic and the standard query stream, and
reports the four chaos metrics:

* ``avail_during`` — fraction of queries submitted inside the fault
  window that were fully answered;
* ``recover_t`` — heal/strike point to the first sustained streak of
  successful probes (-1: never within the run);
* ``amplification`` — wire traffic over protocol messages
  (retransmissions + duplicate deliveries make it exceed 1);
* ``retries`` / ``timeouts`` / ``gave_up`` — the at-least-once runtime's
  reaction counters (summed over seeds).

Overlays are filtered by capability honestly: the region-outage scenario
needs ``fail`` + ``repair`` (BATON only today); the others run on every
registered overlay, so the table is a three-way comparison under
adversity.  ``unresolved`` must read 0 in every row — an op that
exhausts its retry budget fails its future, it never hangs — and the
suite asserts it.

Expected shape: lossy links keep availability above 90% at the default
loss rate (the retry budget absorbs ~5% per-hop loss easily) at a few
percent amplification; the partition dents availability only for ops
spanning the cut and heals within a probe interval or two of the
reconcile storm; the region outage is the hardest cell — availability
drops while the monitor accumulates suspicion, and recovery tracks
detection latency (monitor interval x threshold) plus repair time; the
flash crowd stresses routing freshness rather than the channel, so its
interesting column is availability under join-churn racing a hot-range
spike.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import overlays
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    default_scale,
    loaded_keys,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.sim.topology import ClusteredTopology
from repro.util.rng import derive_seed
from repro.workloads.chaos import SCENARIO_NAMES, build_scenario
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "zero unresolved ops everywhere (budget exhaustion fails, never hangs); "
    "lossy links hold >0.9 availability at the default loss rate with a few "
    "percent amplification; partition availability dips only for cross-cut "
    "ops and recovery follows the heal-time reconcile storm; region-outage "
    "recovery tracks monitor detection latency plus repair; the flash crowd "
    "separates overlays by routing freshness under join churn"
)

QUERY_RATE = 4.0
CHURN_RATE = 0.2
INSERT_RATE = 0.2
REGIONS = 4


def _grid(
    scale: ExperimentScale,
    scenarios: Sequence[str],
    overlay_names: Optional[Sequence[str]],
    n_peers: Optional[int],
):
    """The (scenario, overlay) walk shared by cells() and assemble().

    Yields ``(scenario_name, overlay_name, runnable)`` in row order;
    capability-filtered pairs appear with ``runnable=False`` so assemble
    can note the skip without consuming outputs.
    """
    names = list(overlay_names) if overlay_names else overlays.available()
    duration = max(24.0, scale.n_queries / QUERY_RATE)
    for scenario_name in scenarios:
        probe = build_scenario(scenario_name, duration=duration, n_peers=n_peers)
        for name in names:
            entry = overlays.get(name)
            yield scenario_name, name, probe.requires <= entry.capabilities


def cells(
    scale: ExperimentScale,
    scenarios: Sequence[str] = SCENARIO_NAMES,
    overlay_names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
) -> List[Cell]:
    if n_peers is None:
        n_peers = scale.sizes[0]
    duration = max(24.0, scale.n_queries / QUERY_RATE)
    return [
        cell(
            chaos_cell,
            group="chaos",
            overlay=name,
            scenario_name=scenario_name,
            n_peers=n_peers,
            seed=seed,
            duration=duration,
            data_per_node=scale.data_per_node,
        )
        for scenario_name, name, runnable in _grid(
            scale, scenarios, overlay_names, n_peers
        )
        if runnable
        for seed in scale.seeds
    ]


def assemble(
    scale: ExperimentScale,
    outputs: List[Dict[str, float]],
    scenarios: Sequence[str] = SCENARIO_NAMES,
    overlay_names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
) -> ExperimentResult:
    """One row per (scenario, overlay), averaged over the scale's seeds."""
    if n_peers is None:
        n_peers = scale.sizes[0]
    duration = max(24.0, scale.n_queries / QUERY_RATE)
    result = ExperimentResult(
        figure="Chaos",
        title=(
            f"Availability and recovery under correlated disaster "
            f"(N={n_peers}, clustered topology, {REGIONS} regions, "
            f"window {duration:.0f} units)"
        ),
        columns=[
            "scenario",
            "overlay",
            "avail_during",
            "recover_t",
            "amplification",
            "drops",
            "dups",
            "refusals",
            "retries",
            "timeouts",
            "gave_up",
            "unresolved",
            "repairs",
            "success",
        ],
        expectation=EXPECTATION,
    )
    per_point = len(scale.seeds)
    index = 0
    for scenario_name, name, runnable in _grid(
        scale, scenarios, overlay_names, n_peers
    ):
        if not runnable:
            probe = build_scenario(
                scenario_name, duration=duration, n_peers=n_peers
            )
            result.notes.append(
                f"{scenario_name} skipped on {name} (needs "
                f"{'+'.join(sorted(probe.requires))})"
            )
            continue
        group = outputs[index : index + per_point]
        index += per_point
        recoveries = [
            c["recover_t"]
            for c in group
            if c["recover_t"] is not None and c["recover_t"] >= 0
        ]
        availabilities = [
            c["avail_during"]
            for c in group
            if c["avail_during"] is not None
        ]
        result.add_row(
            scenario=scenario_name,
            overlay=name,
            avail_during=mean(availabilities),
            recover_t=mean(recoveries) if recoveries else -1.0,
            amplification=mean([c["amplification"] for c in group]),
            drops=sum(c["drops"] for c in group),
            dups=sum(c["dups"] for c in group),
            refusals=sum(c["refusals"] for c in group),
            retries=sum(c["retries"] for c in group),
            timeouts=sum(c["timeouts"] for c in group),
            gave_up=sum(c["gave_up"] for c in group),
            unresolved=sum(c["unresolved"] for c in group),
            repairs=sum(c["repairs"] for c in group),
            success=mean([c["success"] for c in group]),
        )
    return result


def run(
    scale: Optional[ExperimentScale] = None,
    scenarios: Sequence[str] = SCENARIO_NAMES,
    overlay_names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
    jobs: int = 1,
) -> ExperimentResult:
    scale = scale or default_scale()
    outputs = run_cells(
        cells(scale, scenarios, overlay_names, n_peers), jobs=jobs
    )
    return assemble(scale, outputs, scenarios, overlay_names, n_peers)


def chaos_cell(
    overlay: str,
    scenario_name: str,
    n_peers: int,
    seed: int,
    duration: float,
    data_per_node: int,
) -> Dict[str, float]:
    """One (overlay, scenario, seed) run, reduced to the chaos metrics."""
    entry = overlays.get(overlay)
    scenario = build_scenario(scenario_name, duration=duration, n_peers=n_peers)
    inner = ClusteredTopology(
        seed=derive_seed(seed, "chaos-topology"), regions=REGIONS
    )
    topology = scenario.fault_plan(inner, seed) or inner
    anet = entry.build_async(
        n_peers,
        seed=seed,
        topology=topology,
        record_events=False,
        retain_ops=False,
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    anet.net.bulk_load(keys)
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=CHURN_RATE,
        query_rate=QUERY_RATE,
        insert_rate=INSERT_RATE,
        range_fraction=0.2,
        min_peers=8,
    )
    report = run_concurrent_workload(
        anet,
        keys,
        config,
        seed=derive_seed(seed, "chaos-driver"),
        scenario=scenario,
    )
    if report.unresolved_ops:
        raise AssertionError(
            f"{report.unresolved_ops} op(s) left hanging in "
            f"{scenario_name}/{overlay} seed {seed} — every OpFuture must "
            f"resolve (the at-least-once contract)"
        )
    return {
        "avail_during": report.availability_during,
        "recover_t": report.recover_time,
        "amplification": report.message_amplification,
        "drops": report.drops,
        "dups": report.duplicates,
        "refusals": report.partition_refusals,
        "retries": report.retries,
        "timeouts": report.timeouts,
        "gave_up": report.ops_gave_up,
        "unresolved": report.unresolved_ops,
        "repairs": report.repairs_applied,
        "success": report.query_success_rate,
    }


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
