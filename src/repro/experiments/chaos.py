"""Chaos suite: the four correlated-disaster scenarios across overlays.

Each cell runs one :mod:`repro.workloads.chaos` scenario on one overlay
over a :class:`~repro.sim.topology.ClusteredTopology` (wrapped in the
scenario's :class:`~repro.sim.faults.FaultPlan` where it has one), with
light background churn/insert traffic and the standard query stream, and
reports the four chaos metrics:

* ``avail_during`` — fraction of queries submitted inside the fault
  window that were fully answered;
* ``recover_t`` — heal/strike point to the first sustained streak of
  successful probes (-1: never within the run);
* ``amplification`` — wire traffic over protocol messages
  (retransmissions + duplicate deliveries make it exceed 1);
* ``retries`` / ``timeouts`` / ``gave_up`` — the at-least-once runtime's
  reaction counters (summed over seeds).

Overlays are filtered by capability honestly: the region-outage scenario
needs ``fail`` + ``repair`` (BATON only today); the others run on every
registered overlay, so the table is a three-way comparison under
adversity.  ``unresolved`` must read 0 in every row — an op that
exhausts its retry budget fails its future, it never hangs — and the
suite asserts it.

Expected shape: lossy links keep availability above 90% at the default
loss rate (the retry budget absorbs ~5% per-hop loss easily) at a few
percent amplification; the partition dents availability only for ops
spanning the cut and heals within a probe interval or two of the
reconcile storm; the region outage is the hardest cell — availability
drops while the monitor accumulates suspicion, and recovery tracks
detection latency (monitor interval x threshold) plus repair time; the
flash crowd stresses routing freshness rather than the channel, so its
interesting column is availability under join-churn racing a hot-range
spike.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import overlays
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    default_scale,
    loaded_keys,
    mean,
)
from repro.sim.topology import ClusteredTopology
from repro.util.rng import derive_seed
from repro.workloads.chaos import SCENARIO_NAMES, build_scenario
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "zero unresolved ops everywhere (budget exhaustion fails, never hangs); "
    "lossy links hold >0.9 availability at the default loss rate with a few "
    "percent amplification; partition availability dips only for cross-cut "
    "ops and recovery follows the heal-time reconcile storm; region-outage "
    "recovery tracks monitor detection latency plus repair; the flash crowd "
    "separates overlays by routing freshness under join churn"
)

QUERY_RATE = 4.0
CHURN_RATE = 0.2
INSERT_RATE = 0.2
REGIONS = 4


def run(
    scale: Optional[ExperimentScale] = None,
    scenarios: Sequence[str] = SCENARIO_NAMES,
    overlay_names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
) -> ExperimentResult:
    """One row per (scenario, overlay), averaged over the scale's seeds."""
    scale = scale or default_scale()
    if n_peers is None:
        n_peers = scale.sizes[0]
    duration = max(24.0, scale.n_queries / QUERY_RATE)
    names = list(overlay_names) if overlay_names else overlays.available()
    result = ExperimentResult(
        figure="Chaos",
        title=(
            f"Availability and recovery under correlated disaster "
            f"(N={n_peers}, clustered topology, {REGIONS} regions, "
            f"window {duration:.0f} units)"
        ),
        columns=[
            "scenario",
            "overlay",
            "avail_during",
            "recover_t",
            "amplification",
            "drops",
            "dups",
            "refusals",
            "retries",
            "timeouts",
            "gave_up",
            "unresolved",
            "repairs",
            "success",
        ],
        expectation=EXPECTATION,
    )
    for scenario_name in scenarios:
        probe = build_scenario(scenario_name, duration=duration, n_peers=n_peers)
        for name in names:
            entry = overlays.get(name)
            if not probe.requires <= entry.capabilities:
                result.notes.append(
                    f"{scenario_name} skipped on {name} (needs "
                    f"{'+'.join(sorted(probe.requires))})"
                )
                continue
            cells = [
                one_cell(name, scenario_name, n_peers, seed, duration, scale)
                for seed in scale.seeds
            ]
            recoveries = [
                c.recover_time
                for c in cells
                if c.recover_time is not None and c.recover_time >= 0
            ]
            result.add_row(
                scenario=scenario_name,
                overlay=name,
                avail_during=mean(
                    [
                        c.availability_during
                        for c in cells
                        if c.availability_during is not None
                    ]
                ),
                recover_t=mean(recoveries) if recoveries else -1.0,
                amplification=mean([c.message_amplification for c in cells]),
                drops=sum(c.drops for c in cells),
                dups=sum(c.duplicates for c in cells),
                refusals=sum(c.partition_refusals for c in cells),
                retries=sum(c.retries for c in cells),
                timeouts=sum(c.timeouts for c in cells),
                gave_up=sum(c.ops_gave_up for c in cells),
                unresolved=sum(c.unresolved_ops for c in cells),
                repairs=sum(c.repairs_applied for c in cells),
                success=mean([c.query_success_rate for c in cells]),
            )
    return result


def one_cell(
    overlay: str,
    scenario_name: str,
    n_peers: int,
    seed: int,
    duration: float,
    scale: ExperimentScale,
):
    """One (overlay, scenario, seed) run; returns the ConcurrentReport."""
    entry = overlays.get(overlay)
    scenario = build_scenario(scenario_name, duration=duration, n_peers=n_peers)
    inner = ClusteredTopology(
        seed=derive_seed(seed, "chaos-topology"), regions=REGIONS
    )
    topology = scenario.fault_plan(inner, seed) or inner
    anet = entry.build_async(
        n_peers,
        seed=seed,
        topology=topology,
        record_events=False,
        retain_ops=False,
    )
    keys = loaded_keys(n_peers, scale.data_per_node, seed)
    anet.net.bulk_load(keys)
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=CHURN_RATE,
        query_rate=QUERY_RATE,
        insert_rate=INSERT_RATE,
        range_fraction=0.2,
        min_peers=8,
    )
    report = run_concurrent_workload(
        anet,
        keys,
        config,
        seed=derive_seed(seed, "chaos-driver"),
        scenario=scenario,
    )
    if report.unresolved_ops:
        raise AssertionError(
            f"{report.unresolved_ops} op(s) left hanging in "
            f"{scenario_name}/{overlay} seed {seed} — every OpFuture must "
            f"resolve (the at-least-once contract)"
        )
    return report


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
