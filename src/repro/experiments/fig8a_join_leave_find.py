"""Figure 8(a): messages to find the join node / the replacement node.

Paper's reading: BATON stays low and nearly flat as N grows (a JOIN reaches
a leaf in one adjacent hop and then climbs only the frontier); Chord's
join-lookup grows with log N and sits above BATON; the multiway tree's
leave is far more expensive than its join because a departing node must
consult all its children.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    default_scale,
)
from repro.experiments.membership import MembershipCosts, aggregate, measure_membership

EXPECTATION = (
    "BATON join/leave find ≈ flat and low; Chord above BATON and growing "
    "with N; multiway leave ≫ multiway join"
)


def run(
    scale: Optional[ExperimentScale] = None,
    cells: Optional[List[MembershipCosts]] = None,
) -> ExperimentResult:
    scale = scale or default_scale()
    cells = cells if cells is not None else measure_membership(scale)
    result = ExperimentResult(
        figure="Fig 8a",
        title="Finding join node and replacement node (avg messages)",
        columns=["system", "N", "join_find", "leave_find"],
        expectation=EXPECTATION,
    )
    for system in ("baton", "chord", "multiway"):
        for n_peers in scale.sizes:
            cell = aggregate(cells, system, n_peers)
            result.add_row(
                system=system,
                N=n_peers,
                join_find=cell.join_find,
                leave_find=cell.leave_find,
            )
    result.notes.append(
        "Chord leave_find is ~0 by design: the successor is known locally, "
        "no search happens (the paper plots Chord's join side)."
    )
    return result


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
