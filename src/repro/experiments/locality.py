"""Locality: what topology awareness buys on a clustered WAN.

The paper's evaluation counts hops; PR 8's ``hetero_links`` showed what
those hops *cost* on a clustered multi-region WAN.  This experiment
measures the other side of the ledger: how much of that cost the locality
extensions (DESIGN.md, "Locality contract") win back.

Grid: (N, join mode, cache) cells on the same
:class:`~repro.sim.topology.ClusteredTopology`, identical query
workloads.  ``join=aware`` grows the overlay through topology-aware joins
(each joiner probes ``JOIN_PROBES`` candidate entry points — priced
messages — and attaches where its region-neighbourhood link cost is
lowest); ``join=uniform`` is the paper's Algorithm 1.  ``cache=1`` gives
every peer a bounded hot-range route cache
(:mod:`repro.core.cache`); queries enter through a handful of fixed
gateway peers and concentrate on a hot key range — the session regime
where a per-peer cache can warm up — in **every** cell, so the columns
compare network configurations, never workloads.

Reported per cell: latency stretch p50/p99 (op transit over the direct
entry->owner link — the topology-blindness metric), cache hit rate and
invalidations, query latency, messages per query, and the build-time join
cost (probing is paid for, so ``join=aware`` rows show more messages per
join).

Expected shape: the cache collapses stretch p50 toward 1 (a warm hit is
one direct message, verified at the owner); aware join trims the residual
walk cost by keeping tree neighbours region-local; probing's price is
visible in build messages per join, bounded by 2·(probes-1)+1 extra
messages.  Churn invalidates cached routes but never corrupts answers —
misses, not wrong results.
"""

from __future__ import annotations

from typing import List, Optional

from repro import overlays
from repro.core.cache import DEFAULT_CACHE_SIZE
from repro.core.network import BatonConfig, BatonNetwork, LocalityConfig
from repro.experiments import snapshot
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    default_scale,
    loaded_keys,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.sim.topology import ClusteredTopology
from repro.util.rng import derive_seed
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "the hot-range cache collapses stretch p50 toward 1 (a warm hit is one "
    "direct, verified message instead of an O(log N) walk) and reports its "
    "hit rate; topology-aware join trims the remaining walk cost by "
    "keeping tree neighbours region-local, paying a bounded, visible "
    "probing surcharge at build time; churn turns cached routes into "
    "misses, never into wrong answers"
)

QUERY_RATE = 8.0
#: Queries per cell, floored: a cache entry is recorded when a walk
#: *completes*, and on this WAN a walk takes tens of time units — every
#: query submitted inside that first window runs cold.  The window must
#: be a small fraction of the run for the steady-state hit rate to show
#: (hit ceiling is roughly 1 - latency/duration), so short scales get
#: their query count raised rather than silently reporting warm-up.
MIN_QUERIES = 2000
REGIONS = 4
INTRA_DELAY = 1.0
INTER_DELAY = 10.0
#: Candidate entry points a topology-aware joiner prices (contact + 3).
JOIN_PROBES = 4
#: Fixed session entry points for the query workload.
GATEWAYS = 8
#: Background churn so cache coherence is exercised, not assumed.
CHURN_RATE = 0.2


def hot_keys(keys: list[int], data_per_node: int) -> list[int]:
    """A contiguous hot slice of the loaded keys, a few owners wide.

    Exact queries draw from this slice, so a handful of owners see almost
    all the traffic — the skew every caching story assumes (ART's cached
    coverage, web-workload Zipf tails).  Sized in units of per-node load
    (one node's fair share of keys) so the owner count behind the slice
    stays small at every N; deterministic — same keys, same slice.
    """
    ordered = sorted(keys)
    width = min(len(ordered), max(24, data_per_node))
    offset = (len(ordered) - width) // 2
    return ordered[offset : offset + width]


def cells(
    scale: ExperimentScale,
    sizes: Optional[tuple[int, ...]] = None,
    with_churn: bool = True,
) -> List[Cell]:
    if sizes is None:
        sizes = (scale.sizes[0],)
    duration = max(scale.n_queries, MIN_QUERIES) / QUERY_RATE
    return [
        cell(
            locality_cell,
            group="locality",
            n_peers=n_peers,
            seed=seed,
            data_per_node=scale.data_per_node,
            duration=duration,
            aware_join=join_mode == "aware",
            cache=cache,
            with_churn=with_churn,
        )
        for n_peers in sizes
        for join_mode in ("uniform", "aware")
        for cache in (False, True)
        for seed in scale.seeds
    ]


def assemble(
    scale: ExperimentScale,
    outputs: List[dict],
    sizes: Optional[tuple[int, ...]] = None,
) -> ExperimentResult:
    """One row per (N, join mode, cache), identical workloads per N."""
    if sizes is None:
        sizes = (scale.sizes[0],)
    result = ExperimentResult(
        figure="Locality",
        title=(
            f"Latency stretch vs locality features (clustered WAN, "
            f"{REGIONS} regions, inter delay {INTER_DELAY}, "
            f"{GATEWAYS} gateways, hot-range queries)"
        ),
        columns=[
            "n_peers",
            "join",
            "cache",
            "queries",
            "success",
            "hit_rate",
            "invalidations",
            "p50",
            "stretch_p50",
            "stretch_p99",
            "msgs_per_query",
            "build_msgs_per_join",
        ],
        expectation=EXPECTATION,
    )
    per_point = len(scale.seeds)
    index = 0
    for n_peers in sizes:
        for join_mode in ("uniform", "aware"):
            for cache in (False, True):
                group = outputs[index : index + per_point]
                index += per_point
                result.add_row(
                    n_peers=n_peers,
                    join=join_mode,
                    cache=int(cache),
                    queries=sum(c["queries"] for c in group),
                    success=mean([c["success"] for c in group]),
                    hit_rate=mean([c["hit_rate"] for c in group]),
                    invalidations=sum(c["invalidations"] for c in group),
                    p50=mean([c["p50"] for c in group]),
                    stretch_p50=mean([c["stretch_p50"] for c in group]),
                    stretch_p99=mean([c["stretch_p99"] for c in group]),
                    msgs_per_query=mean([c["msgs_per_query"] for c in group]),
                    build_msgs_per_join=mean(
                        [c["build_msgs_per_join"] for c in group]
                    ),
                )
    return result


def run(
    scale: Optional[ExperimentScale] = None,
    sizes: Optional[tuple[int, ...]] = None,
    with_churn: bool = True,
    jobs: int = 1,
) -> ExperimentResult:
    scale = scale or default_scale()
    outputs = run_cells(cells(scale, sizes, with_churn), jobs=jobs)
    return assemble(scale, outputs, sizes)


def build_locality_net(
    n_peers: int, seed: int, data_per_node: int, aware_join: bool, cache: bool
):
    """Grow the overlay on its WAN; returns (net, build msgs per join).

    The overlay grows through real joins (not bulk construction) so the
    join mode can actually shape which region each peer attaches in; the
    topology is installed *before* growth, exactly as a deployment would
    bootstrap against the physical network it lives on.  Snapshot-cached:
    the topology travels inside the snapshot (``net.topology``), and
    probing reads only its deterministic ``direct_delay`` during growth,
    so a restored (net, topology) pair drives exactly like a fresh one.
    """
    parts = {
        "builder": "locality",
        "n_peers": n_peers,
        "seed": seed,
        "data_per_node": data_per_node,
        "aware_join": aware_join,
        "cache": cache,
        "topology": (
            "clustered",
            REGIONS,
            INTRA_DELAY,
            INTER_DELAY,
            0.2,  # jitter
            0.1,  # asymmetry
            JOIN_PROBES if aware_join else 0,
        ),
    }
    return snapshot.cached(
        parts,
        lambda: _grow_locality_net(
            n_peers, seed, data_per_node, aware_join, cache
        ),
    )


def _grow_locality_net(
    n_peers: int, seed: int, data_per_node: int, aware_join: bool, cache: bool
):
    locality = LocalityConfig(
        join_probes=JOIN_PROBES if aware_join else 0,
        cache_size=DEFAULT_CACHE_SIZE if cache else 0,
    )
    topology = ClusteredTopology(
        derive_seed(seed, "locality"),
        regions=REGIONS,
        intra_delay=INTRA_DELAY,
        inter_delay=INTER_DELAY,
        jitter=0.2,
        asymmetry=0.1,
    )
    net = BatonNetwork(config=BatonConfig(locality=locality), seed=seed)
    net.topology = topology  # probing prices candidates during growth
    root = net.bootstrap()
    keys = loaded_keys(n_peers, data_per_node, seed)
    net.peer(root).store.extend(keys)
    build_start = net.bus.stats.total
    for _ in range(n_peers - 1):
        net.join()
    build_msgs_per_join = (
        (net.bus.stats.total - build_start) / (n_peers - 1)
        if n_peers > 1
        else 0.0
    )
    return net, build_msgs_per_join


def locality_cell(
    n_peers: int,
    seed: int,
    data_per_node: int,
    duration: float,
    aware_join: bool,
    cache: bool,
    with_churn: bool = True,
) -> dict:
    """One seeded cell: grow (or restore) the overlay, then query it."""
    net, build_msgs_per_join = build_locality_net(
        n_peers, seed, data_per_node, aware_join, cache
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    anet = overlays.get("baton").wrap(
        net, topology=net.topology, record_events=False, retain_ops=False
    )
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=CHURN_RATE if with_churn else 0.0,
        query_rate=QUERY_RATE,
        range_fraction=0.0,
        client_gateways=GATEWAYS,
        maintenance_interval=duration / 4,
    )
    report = run_concurrent_workload(
        anet,
        hot_keys(keys, data_per_node),
        config,
        seed=derive_seed(seed, "locality-driver"),
    )
    return {
        "queries": report.query_total,
        "success": report.query_success_rate,
        "hit_rate": report.cache_hit_rate,
        "invalidations": report.cache_invalidations,
        "p50": report.query_latency_p50,
        "stretch_p50": report.latency_stretch_p50,
        "stretch_p99": report.latency_stretch_p99,
        "msgs_per_query": report.messages_per_query,
        "build_msgs_per_join": build_msgs_per_join,
    }


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
