"""Concurrent dynamics: query success and latency versus churn intensity.

Extends Figure 8(i) from "extra messages per query during a churn burst" to
the regime D3-Tree and ART are evaluated in: a sustained stream of joins
and leaves racing a stream of queries, all in flight together on the
event-driven runtime.  For each churn rate the experiment reports the
query success rate (answered fully: exact hit / complete range) and the
submit-to-answer latency percentiles in units of mean hop latency.

Since the runtime is overlay-agnostic (:mod:`repro.overlays`), the same
sweep runs against any registered overlay (``overlay="chord"`` /
``"multiway"``), and :func:`run_comparison` drives all three through
identical workloads for the paper's head-to-head claims under churn.

Expected shape: success stays near 1 and latency flat at low churn; as
churn intensity approaches the query rate, queries pay more recovery hops
(latency tail grows) and a small fraction are lost outright with their
carrier peers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import overlays
from repro.core.invariants import collect_violations
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_loaded,
    default_scale,
    loaded_keys,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.sim.latency import ExponentialLatency
from repro.util.rng import SeededRng, derive_seed
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "success rate near 1 and flat latency at low churn; latency tail and "
    "lost queries grow as churn intensity approaches the query rate; "
    "violations zero after repair/reconcile except rare residual Theorem-1 "
    "imbalance under heavy churn (a leaf departs on a safe-departure check "
    "whose correction was lost to a stale link; the next join heals it)"
)

COMPARISON_EXPECTATION = (
    "BATON answers queries in O(log N) hops with complete ranges; Chord "
    "matches exact-query latency but pays O(N) messages per range scan; "
    "the multiway tree pays long link-by-link walks, so its latencies are "
    "highest and its queries are the most fragile under churn (a walk dies "
    "with any peer it is traversing)"
)

CHURN_RATES = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)
COMPARISON_CHURN_RATES = (0.0, 1.0)
QUERY_RATE = 8.0
TARGET_PEERS = 1000


def target_peers(scale: ExperimentScale) -> int:
    """The sweep population: the canonical N when the scale reaches it."""
    return (
        TARGET_PEERS if max(scale.sizes) >= TARGET_PEERS else scale.sizes[0]
    )


def cells(
    scale: ExperimentScale,
    churn_rates: tuple[float, ...] = CHURN_RATES,
    n_peers: Optional[int] = None,
    overlay: str = "baton",
) -> List[Cell]:
    if n_peers is None:
        n_peers = target_peers(scale)
    duration = scale.n_queries / QUERY_RATE
    return [
        cell(
            dynamics_cell,
            group="concurrent",
            overlay=overlay,
            n_peers=n_peers,
            seed=seed,
            data_per_node=scale.data_per_node,
            churn_rate=churn_rate,
            duration=duration,
        )
        for churn_rate in churn_rates
        for seed in scale.seeds
    ]


def assemble(
    scale: ExperimentScale,
    outputs: List[Dict[str, float]],
    churn_rates: tuple[float, ...] = CHURN_RATES,
    n_peers: Optional[int] = None,
    overlay: str = "baton",
) -> ExperimentResult:
    if n_peers is None:
        n_peers = target_peers(scale)
    result = ExperimentResult(
        figure="Concurrent dynamics",
        title=(
            f"Churn racing queries on the event runtime "
            f"({overlay}, N={n_peers}, query rate {QUERY_RATE}/unit)"
        ),
        columns=[
            "churn_rate",
            "queries",
            "success",
            "p50",
            "p90",
            "p99",
            "msgs_per_query",
            "max_in_flight",
            "violations",
        ],
        expectation=EXPECTATION,
    )
    per_point = len(scale.seeds)
    index = 0
    for churn_rate in churn_rates:
        group = outputs[index : index + per_point]
        index += per_point
        result.add_row(
            churn_rate=churn_rate,
            queries=sum(int(out["queries"]) for out in group),
            success=mean([out["success"] for out in group]),
            p50=mean([out["p50"] for out in group]),
            p90=mean([out["p90"] for out in group]),
            p99=mean([out["p99"] for out in group]),
            msgs_per_query=mean([out["msgs_per_query"] for out in group]),
            max_in_flight=max(int(out["max_in_flight"]) for out in group),
            violations=sum(int(out["violations"]) for out in group),
        )
    return result


def run(
    scale: Optional[ExperimentScale] = None,
    churn_rates: tuple[float, ...] = CHURN_RATES,
    n_peers: Optional[int] = None,
    overlay: str = "baton",
    jobs: int = 1,
) -> ExperimentResult:
    scale = scale or default_scale()
    outputs = run_cells(
        cells(scale, churn_rates, n_peers, overlay), jobs=jobs
    )
    return assemble(scale, outputs, churn_rates, n_peers, overlay)


def comparison_cells(
    scale: ExperimentScale,
    churn_rates: tuple[float, ...] = COMPARISON_CHURN_RATES,
    names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
) -> List[Cell]:
    names = list(names) if names is not None else overlays.available()
    if n_peers is None:
        # Same population as the BATON-only dynamics experiment above, so
        # the baton rows of the two tables are directly comparable.
        n_peers = target_peers(scale)
    duration = scale.n_queries / QUERY_RATE
    return [
        cell(
            dynamics_cell,
            group="comparison",
            overlay=name,
            n_peers=n_peers,
            seed=seed,
            data_per_node=scale.data_per_node,
            churn_rate=churn_rate,
            duration=duration,
        )
        for name in names
        for churn_rate in churn_rates
        for seed in scale.seeds
    ]


def assemble_comparison(
    scale: ExperimentScale,
    outputs: List[Dict[str, float]],
    churn_rates: tuple[float, ...] = COMPARISON_CHURN_RATES,
    names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
) -> ExperimentResult:
    """Three-way concurrent comparison: every overlay, identical workloads.

    One row per (overlay, churn rate); the churn/query/insert arrival
    processes, seeds and latency model are shared, so the rows differ only
    in how each overlay's protocol copes.
    """
    names = list(names) if names is not None else overlays.available()
    if n_peers is None:
        n_peers = target_peers(scale)
    result = ExperimentResult(
        figure="Concurrent comparison",
        title=(
            f"BATON vs. baselines under concurrent churn "
            f"(N={n_peers}, query rate {QUERY_RATE}/unit)"
        ),
        columns=[
            "overlay",
            "churn_rate",
            "queries",
            "success",
            "p50",
            "p90",
            "p99",
            "msgs_per_query",
        ],
        expectation=COMPARISON_EXPECTATION,
    )
    per_point = len(scale.seeds)
    index = 0
    for name in names:
        for churn_rate in churn_rates:
            group = outputs[index : index + per_point]
            index += per_point
            result.add_row(
                overlay=name,
                churn_rate=churn_rate,
                queries=sum(int(out["queries"]) for out in group),
                success=mean([out["success"] for out in group]),
                p50=mean([out["p50"] for out in group]),
                p90=mean([out["p90"] for out in group]),
                p99=mean([out["p99"] for out in group]),
                msgs_per_query=mean([out["msgs_per_query"] for out in group]),
            )
    return result


def run_comparison(
    scale: Optional[ExperimentScale] = None,
    churn_rates: tuple[float, ...] = COMPARISON_CHURN_RATES,
    names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
    jobs: int = 1,
) -> ExperimentResult:
    scale = scale or default_scale()
    outputs = run_cells(
        comparison_cells(scale, churn_rates, names, n_peers), jobs=jobs
    )
    return assemble_comparison(scale, outputs, churn_rates, names, n_peers)


def dynamics_cell(
    overlay: str,
    n_peers: int,
    seed: int,
    data_per_node: int,
    churn_rate: float,
    duration: float,
) -> Dict[str, float]:
    """One seeded concurrent run, reduced to the aggregated report fields."""
    net = build_loaded(overlay, n_peers, seed, data_per_node)
    rng = SeededRng(derive_seed(seed, "concurrent-dynamics"))
    anet = overlays.get(overlay).wrap(
        net,
        latency=ExponentialLatency(mean=1.0, rng=rng.child("latency")),
        record_events=False,
        retain_ops=False,
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=churn_rate,
        query_rate=QUERY_RATE,
        range_fraction=0.2,
        min_peers=max(8, n_peers // 2),
    )
    report = run_concurrent_workload(
        anet, keys, config, seed=derive_seed(seed, "driver")
    )
    violations = len(collect_violations(net)) if overlay == "baton" else 0
    return {
        "queries": report.query_total,
        "success": report.query_success_rate,
        "p50": report.query_latency_p50,
        "p90": report.query_latency_p90,
        "p99": report.query_latency_p99,
        "msgs_per_query": report.messages_per_query,
        "max_in_flight": report.max_in_flight,
        "violations": violations,
    }


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    comparison = run_comparison()
    print()
    print(comparison.to_text())
    return result


if __name__ == "__main__":
    main()
