"""Dissemination showdown: range multicast vs unicast vs flood.

The pub/sub extension (DESIGN.md, "Dissemination contract") claims the
tree multicast delivers one message to every owner of a key interval in
|owners| + O(log N) messages — one route to the interval plus one
delegation per additional owner — where per-owner unicast pays a full
O(log N) route per owner and link-flooding pays ~2·|links| regardless of
the interval.  This experiment measures all three on the same bulk-built
BATON overlays and prices every hop on a WAN
:class:`~repro.sim.topology.ClusteredTopology` (the deterministic
per-link ``direct_delay``), so the table shows both message optimality
(``tree_msgs / owners`` → 1) and the wide-area fan-out cost.

The ``lossy`` cell reruns the pub/sub traffic (publishes, subscription
installs, insert notifications) through the event-driven runtime under a
:class:`~repro.sim.faults.FaultPlan` that drops and duplicates 5% of
hops: retransmissions and wire duplicates show up in ``amplification``
and ``wire_dups``, while the per-message dissemination ids keep the
number of *double applications* at zero — duplicate arrivals land in
``dup_suppressed`` instead (the exactly-once-application half of the
contract).

Overlays are filtered by capability honestly: Chord scatters a key
interval across unrelated peers and the multiway baseline has no
sideways tables to delegate through; neither advertises ``multicast`` /
``subscribe``, so their cells are skip notes, not fabricated numbers.
"""

from __future__ import annotations

from typing import List, Optional

from repro import overlays
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    default_scale,
    loaded_keys,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.pubsub import flood_steps, multicast_steps, range_owners, unicast_steps
from repro.sim.faults import FaultPlan
from repro.sim.topology import ClusteredTopology
from repro.util.rng import SeededRng, derive_seed
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "tree multicast matches or beats unicast on total messages (it ties "
    "only in the degenerate one-owner cell, where both are a bare route) "
    "and beats flood everywhere; optimality -> 1 as the interval widens; "
    "depth stays O(log N); the lossy cell shows amplification > 1 "
    "with zero double applications — every duplicate arrival is "
    "suppressed by the dissemination ids"
)

#: Interval widths as fractions of the key domain.
SPANS = (0.02, 0.10)
REGIONS = 4
#: Lossy-cell channel: drop and duplicate this fraction of hops.
LOSS_RATE = 0.05
DUP_RATE = 0.05
PUBLISH_RATE = 1.0
SUBSCRIBE_RATE = 0.5
INSERT_RATE = 2.0
QUERY_RATE = 2.0
CHURN_RATE = 0.2


def showdown_sizes(scale: ExperimentScale) -> tuple[int, ...]:
    """Quick scale stays tiny; otherwise the paper's end points."""
    if scale.sizes[-1] <= 200:
        return (scale.sizes[-1],)
    return (1000, 10_000)


def cells(scale: ExperimentScale) -> List[Cell]:
    """The showdown grid plus the lossy-channel cell, in row order."""
    sizes = showdown_sizes(scale)
    plan = [
        cell(
            _showdown_cell,
            group="multicast",
            n_peers=n_peers,
            span_fraction=span_fraction,
            seed=seed,
        )
        for n_peers in sizes
        for span_fraction in SPANS
        for seed in scale.seeds
    ]
    plan.append(
        cell(
            _lossy_cell,
            group="multicast",
            n_peers=scale.sizes[0],
            seed=scale.seeds[0],
            data_per_node=scale.data_per_node,
            n_queries=scale.n_queries,
        )
    )
    return plan


def assemble(
    scale: ExperimentScale, outputs: List[dict]
) -> ExperimentResult:
    """The showdown grid plus the lossy-channel cell."""
    sizes = showdown_sizes(scale)
    result = ExperimentResult(
        figure="Multicast",
        title=(
            "Range dissemination: tree multicast vs per-owner unicast vs "
            f"flood (WAN pricing: clustered topology, {REGIONS} regions)"
        ),
        columns=[
            "cell",
            "overlay",
            "n_peers",
            "span_pct",
            "owners",
            "tree_msgs",
            "uni_msgs",
            "flood_msgs",
            "optimality",
            "depth",
            "wan_tree",
            "wan_uni",
            "wan_flood",
            "notifs",
            "dup_suppressed",
            "wire_dups",
            "amplification",
        ],
        expectation=EXPECTATION,
    )
    for name in overlays.available():
        capabilities = overlays.get(name).capabilities
        if "multicast" not in capabilities or "subscribe" not in capabilities:
            result.notes.append(
                f"{name} skipped (does not advertise multicast+subscribe; "
                "hash partitioning / missing sideways tables cannot route "
                "a range fan-out)"
            )
    per_point = len(scale.seeds)
    index = 0
    for n_peers in sizes:
        for span_fraction in SPANS:
            group = outputs[index : index + per_point]
            index += per_point
            result.add_row(
                cell="showdown",
                overlay="baton",
                n_peers=n_peers,
                span_pct=f"{span_fraction:.0%}",
                owners=mean([c["owners"] for c in group]),
                tree_msgs=mean([c["tree_msgs"] for c in group]),
                uni_msgs=mean([c["uni_msgs"] for c in group]),
                flood_msgs=mean([c["flood_msgs"] for c in group]),
                optimality=mean([c["optimality"] for c in group]),
                depth=max(c["depth"] for c in group),
                wan_tree=mean([c["wan_tree"] for c in group]),
                wan_uni=mean([c["wan_uni"] for c in group]),
                wan_flood=mean([c["wan_flood"] for c in group]),
                notifs="",
                dup_suppressed="",
                wire_dups="",
                amplification="",
            )
    result.add_row(**outputs[index])
    result.notes.append(
        "lossy cell: FaultPlan drops/duplicates 5% of hops; every "
        "duplicate arrival was suppressed by the dissemination ids — "
        "zero notifications or multicasts applied twice"
    )
    return result


def run(
    scale: Optional[ExperimentScale] = None, jobs: int = 1
) -> ExperimentResult:
    scale = scale or default_scale()
    return assemble(scale, run_cells(cells(scale), jobs=jobs))


def _showdown_cell(n_peers: int, span_fraction: float, seed: int) -> dict:
    """One (size, span, seed) comparison on a quiescent network."""
    net = build_baton(n_peers, seed, data_per_node=0, bulk=True)
    domain = net.config.domain
    span = max(2, int(domain.width * span_fraction))
    rng = SeededRng(derive_seed(seed, "multicast-span", n_peers))
    low = rng.randint(domain.low, domain.high - span - 1)
    high = low + span
    wan = ClusteredTopology(
        seed=derive_seed(seed, "multicast-wan"), regions=REGIONS
    )
    owners = {peer.address for peer in range_owners(net, low, high)}

    start = net.random_peer_address()
    tree, wan_tree = _priced_drive(
        multicast_steps(net, start, low, high), wan
    )
    uni, wan_uni = _priced_drive(unicast_steps(net, start, low, high), wan)
    flood, wan_flood = _priced_drive(flood_steps(net, start, low, high), wan)
    for res, label in ((tree, "tree"), (uni, "unicast"), (flood, "flood")):
        if set(res.delivered) != owners:
            raise AssertionError(
                f"{label} dissemination missed owners at N={n_peers} "
                f"seed {seed}: {len(res.delivered)}/{len(owners)}"
            )
    return {
        "owners": len(owners),
        "tree_msgs": tree.messages,
        "uni_msgs": uni.messages,
        "flood_msgs": flood.messages,
        "optimality": tree.messages / max(1, len(owners)),
        "depth": tree.depth,
        "wan_tree": wan_tree,
        "wan_uni": wan_uni,
        "wan_flood": wan_flood,
    }


def _priced_drive(steps, topology) -> tuple:
    """Drive a sync step generator, pricing each real hop on ``topology``.

    Client-ingress hops (``src is None``) are free — the WAN columns
    compare overlay traffic, and no strategy differs on the ingress leg.
    """
    total = 0.0
    while True:
        try:
            hop = next(steps)
        except StopIteration as stop:
            return stop.value, total
        if hop.src is not None:
            total += topology.direct_delay(hop.src, hop.dst) * hop.size


def _lossy_cell(
    n_peers: int, seed: int, data_per_node: int, n_queries: int
) -> dict:
    """Pub/sub traffic through the chaos runtime on a lossy channel."""
    duration = max(16.0, n_queries / 8.0)
    inner = ClusteredTopology(
        seed=derive_seed(seed, "multicast-lossy-topology"), regions=REGIONS
    )
    plan = FaultPlan(
        inner,
        seed=derive_seed(seed, "multicast-lossy-plan"),
        drop_rate=LOSS_RATE,
        duplicate_rate=DUP_RATE,
    )
    entry = overlays.get("baton")
    anet = entry.build_async(
        n_peers,
        seed=seed,
        topology=plan,
        record_events=False,
        retain_ops=False,
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    anet.net.bulk_load(keys)
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=CHURN_RATE,
        query_rate=QUERY_RATE,
        insert_rate=INSERT_RATE,
        publish_rate=PUBLISH_RATE,
        subscribe_rate=SUBSCRIBE_RATE,
    )
    report = run_concurrent_workload(
        anet, keys, config, seed=derive_seed(seed, "multicast-lossy-driver")
    )
    if report.unresolved_ops:
        raise AssertionError(
            f"{report.unresolved_ops} op(s) left hanging in the lossy cell"
        )
    return {
        "cell": "lossy",
        "overlay": "baton",
        "n_peers": n_peers,
        "span_pct": f"{ConcurrentConfig().pubsub_span / anet.domain.width:.0%}",
        "owners": "",
        "tree_msgs": "",
        "uni_msgs": "",
        "flood_msgs": "",
        "optimality": "",
        "depth": report.multicast_depth_max,
        "wan_tree": "",
        "wan_uni": "",
        "wan_flood": "",
        "notifs": report.notifications,
        "dup_suppressed": report.pubsub_duplicates_suppressed,
        "wire_dups": report.duplicates,
        "amplification": report.message_amplification,
    }


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
