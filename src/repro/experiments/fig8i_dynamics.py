"""Figure 8(i): effect of network dynamics (concurrent joins and leaves).

Paper's reading: while the network digests a burst of simultaneous
membership changes, routing knowledge is transiently stale, queries get
forwarded to wrong (or gone) destinations, and each query pays extra
messages; the more concurrent events, the more extra messages.

Mechanics here: ``k`` peers depart abruptly while ``k`` join, queries run
inside the window (stale links to the departed peers cost a wasted message
plus recovery hops — §III-D's fault-tolerant routing), then repairs run and
the structural invariants are re-verified.  The discrete-event engine
(:mod:`repro.sim`) schedules the interleaving so event order is a seeded,
reproducible shuffle of joins, departures and queries.
"""

from __future__ import annotations

from typing import Optional

from repro.core.invariants import collect_violations
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    default_scale,
    loaded_keys,
    mean,
)
from repro.sim.engine import Simulator
from repro.sim.latency import ExponentialLatency
from repro.util.rng import SeededRng
from repro.workloads.generators import exact_queries, uniform_keys

EXPECTATION = (
    "extra messages per query grow with the number of concurrent "
    "joins/leaves; zero violations after repairs"
)

CONCURRENCY_LEVELS = (2, 4, 8, 16, 32)


def run(
    scale: Optional[ExperimentScale] = None,
    levels: tuple[int, ...] = CONCURRENCY_LEVELS,
) -> ExperimentResult:
    scale = scale or default_scale()
    n_peers = scale.sizes[0]
    result = ExperimentResult(
        figure="Fig 8i",
        title=f"Network dynamics: concurrent joins/leaves (N={n_peers})",
        columns=["concurrent", "baseline", "during", "extra", "violations"],
        expectation=EXPECTATION,
    )
    for k in levels:
        baselines = []
        durings = []
        violations = 0
        for seed in scale.seeds:
            loaded = loaded_keys(n_peers, scale.data_per_node, seed)
            net = build_baton(n_peers, seed, scale.data_per_node)
            queries = exact_queries(loaded, scale.n_queries, seed=seed + 97)
            baselines.append(
                mean([net.search_exact(q).trace.total for q in queries])
            )
            during = _churn_window(net, k, queries, seed)
            durings.append(during)
            net.repair_all()
            violations += len(collect_violations(net))
        result.add_row(
            concurrent=k,
            baseline=mean(baselines),
            during=mean(durings),
            extra=mean(durings) - mean(baselines),
            violations=violations,
        )
    return result


def _churn_window(net, k: int, queries, seed: int) -> float:
    """Interleave k failures, k joins and the query stream on a DES timeline."""
    rng = SeededRng(seed + 131)
    latency = ExponentialLatency(mean=1.0, rng=rng.child("latency"))
    sim = Simulator()
    costs: list[int] = []

    def do_fail() -> None:
        live = [a for a in net.addresses()]
        if len(live) > 2:
            net.fail(rng.choice(live))

    def do_join() -> None:
        net.join()

    def make_query(key: int):
        def do_query() -> None:
            costs.append(net.search_exact(key).trace.total)

        return do_query

    # Client-side scheduling delays: no peer link is involved, so the
    # degenerate (None, None) link prices one baseline hop.
    for _ in range(k):
        sim.schedule(latency.sample(None, None), do_fail, label="fail")
        sim.schedule(latency.sample(None, None), do_join, label="join")
    window_span = 2.0  # churn events land within ~2 mean latencies
    for i, key in enumerate(queries):
        sim.schedule(
            rng.uniform(0, window_span) + latency.sample(None, None),
            make_query(key),
            label="query",
        )
    sim.run()
    return mean(costs)


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
