"""Figure 8(i): effect of network dynamics (concurrent joins and leaves).

Paper's reading: while the network digests a burst of simultaneous
membership changes, routing knowledge is transiently stale, queries get
forwarded to wrong (or gone) destinations, and each query pays extra
messages; the more concurrent events, the more extra messages.

Mechanics here: ``k`` peers depart abruptly while ``k`` join, queries run
inside the window (stale links to the departed peers cost a wasted message
plus recovery hops — §III-D's fault-tolerant routing), then repairs run and
the structural invariants are re-verified.  The discrete-event engine
(:mod:`repro.sim`) schedules the interleaving so event order is a seeded,
reproducible shuffle of joins, departures and queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.invariants import collect_violations
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    default_scale,
    loaded_keys,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.sim.engine import Simulator
from repro.sim.latency import ExponentialLatency
from repro.util.rng import SeededRng
from repro.workloads.generators import exact_queries

EXPECTATION = (
    "extra messages per query grow with the number of concurrent "
    "joins/leaves; zero violations after repairs"
)

CONCURRENCY_LEVELS = (2, 4, 8, 16, 32)


def grid_cell(
    k: int, n_peers: int, seed: int, data_per_node: int, n_queries: int
) -> Dict[str, float]:
    """One (concurrency level, seed) point: baseline, churn window, repair."""
    loaded = loaded_keys(n_peers, data_per_node, seed)
    net = build_baton(n_peers, seed, data_per_node)
    queries = exact_queries(loaded, n_queries, seed=seed + 97)
    baseline = mean([net.search_exact(q).trace.total for q in queries])
    during = _churn_window(net, k, queries, seed)
    net.repair_all()
    return {
        "baseline": baseline,
        "during": during,
        "violations": len(collect_violations(net)),
    }


def cells(
    scale: ExperimentScale,
    levels: tuple[int, ...] = CONCURRENCY_LEVELS,
) -> List[Cell]:
    return [
        cell(
            grid_cell,
            group="fig8i",
            k=k,
            n_peers=scale.sizes[0],
            seed=seed,
            data_per_node=scale.data_per_node,
            n_queries=scale.n_queries,
        )
        for k in levels
        for seed in scale.seeds
    ]


def assemble(
    scale: ExperimentScale,
    outputs: List[Dict[str, float]],
    levels: tuple[int, ...] = CONCURRENCY_LEVELS,
) -> ExperimentResult:
    n_peers = scale.sizes[0]
    result = ExperimentResult(
        figure="Fig 8i",
        title=f"Network dynamics: concurrent joins/leaves (N={n_peers})",
        columns=["concurrent", "baseline", "during", "extra", "violations"],
        expectation=EXPECTATION,
    )
    per_point = len(scale.seeds)
    index = 0
    for k in levels:
        group = outputs[index : index + per_point]
        index += per_point
        baselines = [out["baseline"] for out in group]
        durings = [out["during"] for out in group]
        result.add_row(
            concurrent=k,
            baseline=mean(baselines),
            during=mean(durings),
            extra=mean(durings) - mean(baselines),
            violations=sum(int(out["violations"]) for out in group),
        )
    return result


def run(
    scale: Optional[ExperimentScale] = None,
    levels: tuple[int, ...] = CONCURRENCY_LEVELS,
    jobs: int = 1,
) -> ExperimentResult:
    scale = scale or default_scale()
    return assemble(
        scale, run_cells(cells(scale, levels), jobs=jobs), levels
    )


def _churn_window(net, k: int, queries, seed: int) -> float:
    """Interleave k failures, k joins and the query stream on a DES timeline."""
    rng = SeededRng(seed + 131)
    latency = ExponentialLatency(mean=1.0, rng=rng.child("latency"))
    sim = Simulator()
    costs: list[int] = []

    def do_fail() -> None:
        live = [a for a in net.addresses()]
        if len(live) > 2:
            net.fail(rng.choice(live))

    def do_join() -> None:
        net.join()

    def make_query(key: int):
        def do_query() -> None:
            costs.append(net.search_exact(key).trace.total)

        return do_query

    # Client-side scheduling delays: no peer link is involved, so the
    # degenerate (None, None) link prices one baseline hop.
    for _ in range(k):
        sim.schedule(latency.sample(None, None), do_fail, label="fail")
        sim.schedule(latency.sample(None, None), do_join, label="join")
    window_span = 2.0  # churn events land within ~2 mean latencies
    for i, key in enumerate(queries):
        sim.schedule(
            rng.uniform(0, window_span) + latency.sample(None, None),
            make_query(key),
            label="query",
        )
    sim.run()
    return mean(costs)


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
