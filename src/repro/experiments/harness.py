"""Shared experiment plumbing: scales, network builders, result tables."""

from __future__ import annotations

import hashlib
import os
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chord.network import ChordNetwork
from repro.core.network import (
    BatonConfig,
    BatonNetwork,
    LoadBalanceConfig,
    LocalityConfig,
)
from repro.experiments import snapshot
from repro.multiway.network import MultiwayNetwork
from repro.workloads.generators import uniform_keys


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment runs.

    The paper sweeps N from 1000 to 10000 peers with 1000·N loaded keys and
    1000 queries of each kind, averaged over 10 membership sequences.  The
    default scale keeps the same doublings at laptop size; the full scale
    (``REPRO_FULL_SCALE=1``) restores the paper's parameters.
    """

    sizes: tuple[int, ...]
    seeds: tuple[int, ...]
    data_per_node: int
    n_queries: int
    n_trials: int  # membership events measured per (size, seed)

    @property
    def label(self) -> str:
        return f"sizes={list(self.sizes)} seeds={len(self.seeds)}"


def quick_scale() -> ExperimentScale:
    """Tiny scale for smoke tests and CI."""
    return ExperimentScale(
        sizes=(60, 120), seeds=(0,), data_per_node=10, n_queries=30, n_trials=10
    )


def default_scale() -> ExperimentScale:
    """Laptop scale by default; the paper's scale under REPRO_FULL_SCALE=1."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return ExperimentScale(
            sizes=(1000, 2500, 5000, 10000),
            seeds=tuple(range(10)),
            data_per_node=1000,
            n_queries=1000,
            n_trials=100,
        )
    return ExperimentScale(
        sizes=(250, 500, 1000, 2000),
        seeds=(0, 1, 2),
        data_per_node=50,
        n_queries=200,
        n_trials=40,
    )


@dataclass
class ExperimentResult:
    """A measured series plus the paper's qualitative expectation."""

    figure: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    expectation: str = ""
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str, where: Optional[Dict[str, object]] = None) -> List:
        """Extract one column, optionally filtered by other column values."""
        out = []
        for row in self.rows:
            if where and any(row.get(k) != v for k, v in where.items()):
                continue
            out.append(row[name])
        return out

    #: Columns excluded from :meth:`fingerprint` — wall-clock and RSS
    #: readings that legitimately differ run to run.  Everything else is
    #: covered by the parallel-equals-sequential identity pin.
    volatile: List[str] = field(default_factory=list)

    def canonical_text(self) -> str:
        """A deterministic rendering for identity comparison.

        Volatile columns (wall-clock timings) render as ``~`` so the
        text is stable across runs; every measured value renders at full
        precision (``to_text`` rounds floats for display — too lossy to
        pin byte-identity on).
        """
        lines = [f"### {self.figure}: {self.title}"]
        lines.append("columns: " + ", ".join(self.columns))
        if self.volatile:
            lines.append("volatile: " + ", ".join(self.volatile))
        for row in self.rows:
            rendered = [
                "~" if col in self.volatile else repr(row.get(col))
                for col in self.columns
            ]
            lines.append(" | ".join(rendered))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def fingerprint(self) -> str:
        """SHA-256 of :meth:`canonical_text` — the identity tests' pin."""
        return hashlib.sha256(self.canonical_text().encode("utf-8")).hexdigest()

    def to_text(self) -> str:
        """Render as an aligned text table with header and expectation."""
        lines = [f"=== {self.figure}: {self.title} ===", f"scale: see harness"]
        if self.expectation:
            lines.append(f"expected shape: {self.expectation}")
        widths = {
            col: max(
                len(col), *(len(_fmt(row.get(col))) for row in self.rows), 1
            )
            if self.rows
            else len(col)
            for col in self.columns
        }
        header = "  ".join(col.ljust(widths[col]) for col in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in self.columns)
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for empty input (an experiment with no events)."""
    return statistics.fmean(values) if values else 0.0


# ---------------------------------------------------------------------------
# Network builders
# ---------------------------------------------------------------------------


def loaded_keys(n_peers: int, data_per_node: int, seed: int) -> List[int]:
    """The uniform dataset a builder loads for a given (size, seed) cell.

    Drivers regenerate the same list to aim queries at present keys.
    """
    return uniform_keys(n_peers * data_per_node, seed=seed + 7)


def build_baton(
    n_peers: int,
    seed: int,
    data_per_node: int,
    balance_enabled: bool = False,
    capacity: Optional[int] = None,
    replication: bool = False,
    bulk: bool = False,
    locality: Optional[LocalityConfig] = None,
) -> BatonNetwork:
    """A BATON overlay grown around its data.

    The paper loads 1000·N values "in batches" while the network forms, so
    every join's median split halves actual *content* and ranges equalize
    by load — that is what keeps the root from owning a fat slice of the
    domain (Figure 8(f)).  We reproduce that by seeding the bootstrap peer
    with the whole dataset before the joins run.

    ``bulk=True`` skips the simulated joins and computes the same loaded,
    balanced end state directly (:mod:`repro.core.bulk_build`) — the only
    way to reach N=100k in seconds, and the default on scale surfaces.

    Protocol-grown builds are routed through the snapshot cache when it
    is enabled: the fingerprint covers every input that shapes the built
    state (the dataset is derived from ``(n_peers, data_per_node,
    seed)``, so those three cover ``keys``).  ``bulk=True`` builds skip
    the cache on purpose — direct construction already costs about what
    a restore does, so a snapshot would only burn disk (DESIGN.md,
    "Parallelism contract").
    """
    config = BatonConfig(
        balance=LoadBalanceConfig(
            capacity=capacity or max(4 * data_per_node, 16),
            enabled=balance_enabled,
        ),
        replication=replication,
        locality=locality or LocalityConfig(),
    )
    if bulk:
        return _build_baton(n_peers, seed, data_per_node, config, bulk=True)
    parts = {
        "builder": "baton",
        "n_peers": n_peers,
        "seed": seed,
        "data_per_node": data_per_node,
        "config": snapshot.describe(config),
    }
    return snapshot.cached(
        parts,
        lambda: _build_baton(n_peers, seed, data_per_node, config, bulk=False),
    )


def _build_baton(
    n_peers: int,
    seed: int,
    data_per_node: int,
    config: BatonConfig,
    bulk: bool,
) -> BatonNetwork:
    if bulk:
        keys = (
            loaded_keys(n_peers, data_per_node, seed) if data_per_node else None
        )
        return BatonNetwork.build(
            n_peers, seed=seed, config=config, bulk=True, keys=keys
        )
    net = BatonNetwork(config=config, seed=seed)
    root = net.bootstrap()
    if data_per_node:
        net.peer(root).store.extend(loaded_keys(n_peers, data_per_node, seed))
    for _ in range(n_peers - 1):
        net.join()
    return net


def build_baton_equalized(
    n_peers: int, seed: int, data_per_node: int
) -> BatonNetwork:
    """A BATON overlay whose data arrived through routed, balanced inserts.

    Construction alone leaves interior nodes with fat ranges (the root keeps
    about a quarter of its subtree's span after its two splits); what
    flattens the distribution in the paper's experiments is §IV-D load
    balancing running while the 1000·N values stream in.  This builder
    reproduces that regime: capacity 2× the fair share, every insert routed.
    The access-load experiment (Figure 8(f)) depends on it.
    """
    parts = {
        "builder": "baton-equalized",
        "n_peers": n_peers,
        "seed": seed,
        "data_per_node": data_per_node,
    }
    return snapshot.cached(
        parts, lambda: _build_baton_equalized(n_peers, seed, data_per_node)
    )


def _build_baton_equalized(
    n_peers: int, seed: int, data_per_node: int
) -> BatonNetwork:
    capacity = max(8, 2 * data_per_node)
    net = build_baton(
        n_peers, seed, data_per_node=0, balance_enabled=True, capacity=capacity
    )
    for key in loaded_keys(n_peers, data_per_node, seed):
        net.insert(key)
    return net


def build_chord(n_peers: int, seed: int, data_per_node: int) -> ChordNetwork:
    """A Chord ring preloaded with the same uniform data."""
    parts = {
        "builder": "chord",
        "n_peers": n_peers,
        "seed": seed,
        "data_per_node": data_per_node,
    }
    return snapshot.cached(
        parts, lambda: _build_chord(n_peers, seed, data_per_node)
    )


def _build_chord(n_peers: int, seed: int, data_per_node: int) -> ChordNetwork:
    net = ChordNetwork.build(n_peers, seed=seed)
    if data_per_node:
        net.bulk_load(loaded_keys(n_peers, data_per_node, seed))
    return net


def build_multiway(n_peers: int, seed: int, data_per_node: int) -> MultiwayNetwork:
    """A multiway tree grown around its data (same rationale as BATON)."""
    parts = {
        "builder": "multiway",
        "n_peers": n_peers,
        "seed": seed,
        "data_per_node": data_per_node,
    }
    return snapshot.cached(
        parts, lambda: _build_multiway(n_peers, seed, data_per_node)
    )


def _build_multiway(
    n_peers: int, seed: int, data_per_node: int
) -> MultiwayNetwork:
    net = MultiwayNetwork(seed=seed)
    root = net.bootstrap()
    if data_per_node:
        net.nodes[root].store.extend(loaded_keys(n_peers, data_per_node, seed))
    for _ in range(n_peers - 1):
        net.join()
    return net


def build_loaded(
    overlay: str,
    n_peers: int,
    seed: int,
    data_per_node: int,
    bulk: bool = False,
    locality: Optional[LocalityConfig] = None,
):
    """A loaded network of any registered overlay, by name.

    The three known overlays keep their historical construction regimes
    (BATON and multiway grow around their data so median splits see real
    content; Chord hashes, so bulk placement is equivalent).  An overlay
    registered later falls back to build-then-bulk-load.  ``bulk=True``
    selects BATON's direct construction path (ignored by overlays that
    have no such path).
    """
    if overlay == "baton":
        return build_baton(
            n_peers, seed, data_per_node, bulk=bulk, locality=locality
        )
    if locality is not None:
        raise ValueError(
            f"the {overlay} overlay has no locality extension; "
            "drop the locality config or pick baton"
        )
    builders = {"chord": build_chord, "multiway": build_multiway}
    builder = builders.get(overlay)
    if builder is not None:
        return builder(n_peers, seed, data_per_node)
    parts = {
        "builder": overlay,
        "n_peers": n_peers,
        "seed": seed,
        "data_per_node": data_per_node,
    }

    def _build_generic():
        from repro import overlays

        net = overlays.get(overlay).build(n_peers, seed=seed)
        if data_per_node:
            net.bulk_load(loaded_keys(n_peers, data_per_node, seed))
        return net

    return snapshot.cached(parts, _build_generic)
