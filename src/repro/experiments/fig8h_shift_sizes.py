"""Figure 8(h): distribution of forced-restructuring shift sizes.

Paper's reading: the number of nodes that must shift position during a
forced insertion/deletion decays (strongly) with size — most balancing
episodes move only a handful of nodes, long shifts are rare.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.balancing import BalancingRun, run_balancing, shift_histogram
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    default_scale,
)

EXPECTATION = (
    "shift-size histogram decays with size (strongly exponential in the "
    "paper): small shifts dominate, long shifts are rare"
)

#: Histogram buckets for shift sizes.
BUCKETS = [(1, 2), (3, 4), (5, 8), (9, 16), (17, 32), (33, 64), (65, 10**9)]


def run(
    scale: Optional[ExperimentScale] = None,
    runs: Optional[List[BalancingRun]] = None,
) -> ExperimentResult:
    scale = scale or default_scale()
    runs = runs if runs is not None else run_balancing(scale, distributions=("zipf",))
    histogram = shift_histogram(runs)
    total = sum(histogram.values())
    result = ExperimentResult(
        figure="Fig 8h",
        title="Size of the load-balancing (restructuring) process",
        columns=["shift_size", "count", "fraction"],
        expectation=EXPECTATION,
    )
    for low, high in BUCKETS:
        count = sum(c for size, c in histogram.items() if low <= size <= high)
        label = f"{low}-{high}" if high < 10**9 else f"{low}+"
        result.add_row(
            shift_size=label,
            count=count,
            fraction=count / total if total else 0.0,
        )
    result.notes.append(f"{total} forced restructurings observed")
    return result


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
