"""Figure 8(c): messages per insert and per delete.

Paper's reading: both systems route updates like exact-match queries, so
BATON sits slightly above Chord (its tree height carries the 1.44 factor)
and far below the multiway tree's hop-by-hop walks.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    build_chord,
    build_multiway,
    default_scale,
    mean,
)
from repro.workloads.generators import uniform_keys

EXPECTATION = (
    "BATON slightly above Chord (1.44·log N vs log N), both ≪ multiway; "
    "all grow logarithmically with N"
)


def run(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        figure="Fig 8c",
        title="Insert and delete operations (avg messages)",
        columns=["system", "N", "insert", "delete"],
        expectation=EXPECTATION,
    )
    builders = {
        "baton": build_baton,
        "chord": build_chord,
        "multiway": build_multiway,
    }
    for system, build in builders.items():
        for n_peers in scale.sizes:
            insert_costs = []
            delete_costs = []
            for seed in scale.seeds:
                net = build(n_peers, seed, scale.data_per_node)
                fresh = uniform_keys(scale.n_queries, seed=seed + 101)
                for key in fresh:
                    insert_costs.append(net.insert(key).trace.total)
                for key in fresh:
                    delete_costs.append(net.delete(key).trace.total)
            result.add_row(
                system=system,
                N=n_peers,
                insert=mean(insert_costs),
                delete=mean(delete_costs),
            )
    return result


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
