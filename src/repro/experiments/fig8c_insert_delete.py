"""Figure 8(c): messages per insert and per delete.

Paper's reading: both systems route updates like exact-match queries, so
BATON sits slightly above Chord (its tree height carries the 1.44 factor)
and far below the multiway tree's hop-by-hop walks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    build_chord,
    build_multiway,
    default_scale,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.workloads.generators import uniform_keys

EXPECTATION = (
    "BATON slightly above Chord (1.44·log N vs log N), both ≪ multiway; "
    "all grow logarithmically with N"
)

SYSTEMS = ("baton", "chord", "multiway")


def grid_cell(
    system: str, n_peers: int, seed: int, data_per_node: int, n_queries: int
) -> Dict[str, List[int]]:
    """One (system, size, seed) point: fresh inserts, then their deletes."""
    builders = {
        "baton": build_baton,
        "chord": build_chord,
        "multiway": build_multiway,
    }
    net = builders[system](n_peers, seed, data_per_node)
    fresh = uniform_keys(n_queries, seed=seed + 101)
    insert_costs = [net.insert(key).trace.total for key in fresh]
    delete_costs = [net.delete(key).trace.total for key in fresh]
    return {"insert": insert_costs, "delete": delete_costs}


def cells(scale: ExperimentScale) -> List[Cell]:
    return [
        cell(
            grid_cell,
            group="fig8c",
            system=system,
            n_peers=n_peers,
            seed=seed,
            data_per_node=scale.data_per_node,
            n_queries=scale.n_queries,
        )
        for system in SYSTEMS
        for n_peers in scale.sizes
        for seed in scale.seeds
    ]


def assemble(
    scale: ExperimentScale, outputs: List[Dict[str, List[int]]]
) -> ExperimentResult:
    """Average per-seed cost lists into one row per (system, N)."""
    result = ExperimentResult(
        figure="Fig 8c",
        title="Insert and delete operations (avg messages)",
        columns=["system", "N", "insert", "delete"],
        expectation=EXPECTATION,
    )
    per_point = len(scale.seeds)
    index = 0
    for system in SYSTEMS:
        for n_peers in scale.sizes:
            group = outputs[index : index + per_point]
            index += per_point
            result.add_row(
                system=system,
                N=n_peers,
                insert=mean([c for out in group for c in out["insert"]]),
                delete=mean([c for out in group for c in out["delete"]]),
            )
    return result


def run(
    scale: Optional[ExperimentScale] = None, jobs: int = 1
) -> ExperimentResult:
    scale = scale or default_scale()
    return assemble(scale, run_cells(cells(scale), jobs=jobs))


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
