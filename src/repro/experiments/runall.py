"""Run every Figure-8 experiment and print (or save) the results.

Usage::

    python -m repro.experiments.runall            # laptop scale
    REPRO_FULL_SCALE=1 python -m repro.experiments.runall
    python -m repro.experiments.runall --quick    # smoke scale
    python -m repro.experiments.runall --jobs 4   # process-pool fan-out

Every driver exposes its grid as pure ``(fn, params)`` cells
(:mod:`repro.experiments.parallel`); ``run_all`` concatenates all of them
into one flat plan, hands it to the scheduler once — so a single pool
serves the whole suite and late, expensive cells backfill idle workers —
and then reassembles each figure from its group's outputs.  Output is
byte-identical at every ``--jobs`` value: results are collected by
submission index, never by completion order, and the wall-clock profile's
cells are marked serial so they run alone in the parent after the pool
drains.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments import harness
from repro.experiments import (
    balancing,
    chaos,
    concurrent_dynamics,
    durability,
    fig8a_join_leave_find,
    fig8b_table_updates,
    fig8c_insert_delete,
    fig8d_exact_query,
    fig8e_range_query,
    fig8f_access_load,
    fig8g_load_balancing,
    fig8h_shift_sizes,
    fig8i_dynamics,
    hetero_links,
    locality,
    membership,
    multicast,
    scale_profile,
    snapshot,
)
from repro.experiments.harness import ExperimentResult
from repro.experiments.parallel import Cell, default_jobs, run_grouped


def run_all(
    scale=None, quick: bool = False, jobs: int = 1
) -> List[ExperimentResult]:
    """Execute every driver, sharing trial data where figures overlap."""
    if scale is None:
        scale = harness.quick_scale() if quick else harness.default_scale()
    levels = (2, 4) if quick else fig8i_dynamics.CONCURRENCY_LEVELS
    churn_rates = (0.0, 2.0) if quick else concurrent_dynamics.CHURN_RATES
    comparison_rates = (
        (0.0,) if quick else concurrent_dynamics.COMPARISON_CHURN_RATES
    )
    inter_delays = (1.0, 10.0) if quick else hetero_links.INTER_DELAYS
    durability_churn = (1.0,) if quick else durability.CHURN_RATES
    durability_intervals = (
        (0.0, 6.0) if quick else durability.MAINTENANCE_INTERVALS
    )
    # Quick mode keeps one cheap channel scenario and one correlated one.
    chaos_scenarios = (
        ("lossy_links", "partition_heal") if quick else chaos.SCENARIO_NAMES
    )

    # One flat plan: each driver contributes its grid under its own group
    # tag, the scheduler runs everything through one shared pool, and the
    # serial profile cells close the suite in the parent process.
    plan: List[Cell] = []
    plan += membership.cells(scale)
    plan += balancing.cells(scale)
    plan += fig8c_insert_delete.cells(scale)
    plan += fig8d_exact_query.cells(scale)
    plan += fig8e_range_query.cells(scale)
    plan += fig8f_access_load.cells(scale)
    plan += fig8i_dynamics.cells(scale, levels)
    plan += concurrent_dynamics.cells(scale, churn_rates)
    plan += concurrent_dynamics.comparison_cells(scale, comparison_rates)
    plan += hetero_links.cells(scale, inter_delays)
    # The locality grid: what the hot-range cache and topology-aware
    # joins win back on the same clustered WAN.
    plan += locality.cells(scale)
    plan += durability.cells(
        scale,
        churn_rates=durability_churn,
        maintenance_intervals=durability_intervals,
    )
    # The chaos suite: correlated disaster (region outage, partition,
    # flash crowd, lossy links) across every capable overlay.
    plan += chaos.cells(scale, chaos_scenarios)
    # The dissemination showdown: range multicast vs unicast vs flood,
    # WAN-priced, plus the lossy pub/sub cell (exactly-once application).
    plan += multicast.cells(scale)
    # Wall-clock profile of the runtime itself; the full grid reaches the
    # paper's N=10k under REPRO_FULL_SCALE=1 (sizes come from the scale).
    plan += scale_profile.cells(scale)

    outputs = run_grouped(plan, jobs=jobs)

    results: List[ExperimentResult] = []
    membership_costs = outputs["membership"]
    results.append(fig8a_join_leave_find.run(scale, cells=membership_costs))
    results.append(fig8b_table_updates.run(scale, cells=membership_costs))
    results.append(fig8c_insert_delete.assemble(scale, outputs["fig8c"]))
    results.append(fig8d_exact_query.assemble(scale, outputs["fig8d"]))
    results.append(fig8e_range_query.assemble(scale, outputs["fig8e"]))
    results.append(fig8f_access_load.assemble(scale, outputs["fig8f"]))
    balancing_runs = outputs["balancing"]
    results.append(fig8g_load_balancing.run(scale, runs=balancing_runs))
    results.append(
        fig8h_shift_sizes.run(
            scale, runs=[r for r in balancing_runs if r.distribution == "zipf"]
        )
    )
    results.append(fig8i_dynamics.assemble(scale, outputs["fig8i"], levels))
    results.append(
        concurrent_dynamics.assemble(scale, outputs["concurrent"], churn_rates)
    )
    results.append(
        concurrent_dynamics.assemble_comparison(
            scale, outputs["comparison"], comparison_rates
        )
    )
    results.append(
        hetero_links.assemble(scale, outputs["hetero"], inter_delays)
    )
    results.append(locality.assemble(scale, outputs["locality"]))
    results.append(
        durability.assemble(
            scale,
            outputs["durability"],
            churn_rates=durability_churn,
            maintenance_intervals=durability_intervals,
        )
    )
    results.append(chaos.assemble(scale, outputs["chaos"], chaos_scenarios))
    results.append(multicast.assemble(scale, outputs["multicast"]))
    results.append(scale_profile.assemble(scale, outputs["profile"]))
    return results


def canonical_report(results: List[ExperimentResult]) -> str:
    """The suite's canonical form: volatile columns masked, full precision.

    This is the artifact CI diffs between the sequential and pooled runs —
    byte equality here is the deterministic-reassembly contract.
    """
    return "\n".join(result.canonical_text() for result in results)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smoke-test scale")
    parser.add_argument("--out", default=None, help="also write results to a file")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the cell fan-out "
        "(default: REPRO_JOBS or 1; output is identical at any value)",
    )
    parser.add_argument(
        "--canonical-out",
        default=None,
        help="write the canonical (volatile-masked) report to this path "
        "for byte-for-byte comparison across --jobs values",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--snapshot-cache",
        dest="snapshot_cache",
        action="store_true",
        default=True,
        help="reuse built-network snapshots keyed by build config (default)",
    )
    cache_group.add_argument(
        "--no-snapshot-cache",
        dest="snapshot_cache",
        action="store_false",
        help="always build networks from scratch",
    )
    args = parser.parse_args(argv)

    snapshot.configure(enabled=args.snapshot_cache)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    started = time.time()
    results = run_all(quick=args.quick, jobs=jobs)
    body = "\n\n".join(result.to_text() for result in results)
    elapsed = time.time() - started
    footer = f"\n\nall experiments completed in {elapsed:.1f}s"
    print(body + footer)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(body + footer + "\n")
    if args.canonical_out:
        with open(args.canonical_out, "w") as handle:
            handle.write(canonical_report(results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
