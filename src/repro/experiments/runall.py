"""Run every Figure-8 experiment and print (or save) the results.

Usage::

    python -m repro.experiments.runall            # laptop scale
    REPRO_FULL_SCALE=1 python -m repro.experiments.runall
    python -m repro.experiments.runall --quick    # smoke scale
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments import harness
from repro.experiments import (
    chaos,
    concurrent_dynamics,
    durability,
    fig8a_join_leave_find,
    fig8b_table_updates,
    fig8c_insert_delete,
    fig8d_exact_query,
    fig8e_range_query,
    fig8f_access_load,
    fig8g_load_balancing,
    fig8h_shift_sizes,
    fig8i_dynamics,
    hetero_links,
    locality,
    multicast,
    scale_profile,
)
from repro.experiments.balancing import run_balancing
from repro.experiments.harness import ExperimentResult
from repro.experiments.membership import measure_membership


def run_all(scale=None, quick: bool = False) -> List[ExperimentResult]:
    """Execute every driver, sharing trial data where figures overlap."""
    if scale is None:
        scale = harness.quick_scale() if quick else harness.default_scale()
    results: List[ExperimentResult] = []

    membership_cells = measure_membership(scale)
    results.append(fig8a_join_leave_find.run(scale, cells=membership_cells))
    results.append(fig8b_table_updates.run(scale, cells=membership_cells))
    results.append(fig8c_insert_delete.run(scale))
    results.append(fig8d_exact_query.run(scale))
    results.append(fig8e_range_query.run(scale))
    results.append(fig8f_access_load.run(scale))

    balancing_runs = run_balancing(scale)
    results.append(fig8g_load_balancing.run(scale, runs=balancing_runs))
    results.append(
        fig8h_shift_sizes.run(
            scale, runs=[r for r in balancing_runs if r.distribution == "zipf"]
        )
    )
    levels = (2, 4) if quick else fig8i_dynamics.CONCURRENCY_LEVELS
    results.append(fig8i_dynamics.run(scale, levels=levels))
    churn_rates = (
        (0.0, 2.0) if quick else concurrent_dynamics.CHURN_RATES
    )
    results.append(concurrent_dynamics.run(scale, churn_rates=churn_rates))
    comparison_rates = (
        (0.0,) if quick else concurrent_dynamics.COMPARISON_CHURN_RATES
    )
    results.append(
        concurrent_dynamics.run_comparison(scale, churn_rates=comparison_rates)
    )
    inter_delays = (1.0, 10.0) if quick else hetero_links.INTER_DELAYS
    results.append(hetero_links.run(scale, inter_delays=inter_delays))
    # The locality grid: what the hot-range cache and topology-aware
    # joins win back on the same clustered WAN.
    results.append(locality.run(scale))
    durability_churn = (1.0,) if quick else durability.CHURN_RATES
    durability_intervals = (0.0, 6.0) if quick else durability.MAINTENANCE_INTERVALS
    results.append(
        durability.run(
            scale,
            churn_rates=durability_churn,
            maintenance_intervals=durability_intervals,
        )
    )
    # The chaos suite: correlated disaster (region outage, partition,
    # flash crowd, lossy links) across every capable overlay.  Quick mode
    # keeps one cheap channel scenario and one correlated one.
    chaos_scenarios = (
        ("lossy_links", "partition_heal") if quick else chaos.SCENARIO_NAMES
    )
    results.append(chaos.run(scale, scenarios=chaos_scenarios))
    # The dissemination showdown: range multicast vs unicast vs flood,
    # WAN-priced, plus the lossy pub/sub cell (exactly-once application).
    results.append(multicast.run(scale))
    # Wall-clock profile of the runtime itself; the full grid reaches the
    # paper's N=10k under REPRO_FULL_SCALE=1 (sizes come from the scale).
    results.append(scale_profile.run(scale))
    return results


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smoke-test scale")
    parser.add_argument("--out", default=None, help="also write results to a file")
    args = parser.parse_args(argv)

    started = time.time()
    results = run_all(quick=args.quick)
    body = "\n\n".join(result.to_text() for result in results)
    elapsed = time.time() - started
    footer = f"\n\nall experiments completed in {elapsed:.1f}s"
    print(body + footer)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(body + footer + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
