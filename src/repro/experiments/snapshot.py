"""Built-network snapshot cache: restore instead of rebuild.

BATON's construction is deterministic — the same (overlay, N, seed,
config, dataset) always grows the same network (§III invariants; the
property :mod:`repro.core.bulk_build` exploits).  That makes a built
network a perfectly cacheable artifact: serialize the post-build state
once, then every experiment cell sharing that base restores it instead
of re-simulating thousands of joins.  At N=10k a protocol build is ~14s
of wall-clock per cell; a restore is a fraction of a second.

Keying and safety:

* The cache key is a SHA-256 **fingerprint of the build inputs** —
  builder name, population, seed, data volume, and a canonical rendering
  of the config (``BatonConfig``/``LocalityConfig``/topology parameters).
  Anything that changes the built state must be in the fingerprint;
  anything that only affects *drives* (``record_events``, workload rates,
  wrap-time transports) must not be, so unrelated cells share snapshots.
* Every payload embeds :data:`SNAPSHOT_SCHEMA` and its own key header.
  A stale schema, a mismatched header (hash collision, hand-edited
  file), or a corrupt/truncated blob is counted and treated as a miss —
  the cell falls back to a clean build, never an error.
* A hit always re-deserializes from the stored bytes, so every caller
  gets a *fresh* network object — two cells never share mutable state.

The cache is off unless :func:`configure` enables it (the experiment
CLIs do; library callers opt in).  ``REPRO_SNAPSHOT_CACHE=0`` is a
global kill switch, ``REPRO_SNAPSHOT_DIR`` overrides the on-disk
location (default ``~/.cache/repro/snapshots``, XDG-aware).  Pool
workers inherit the parent's settings via :func:`exported_config` /
:func:`apply_config` (see ``experiments/parallel.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

try:  # POSIX: per-key build locks make concurrent misses single-flight
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Format marker embedded in every snapshot payload; bump whenever the
#: built-network object layout changes incompatibly (old snapshots then
#: read as stale and rebuild cleanly).
SNAPSHOT_SCHEMA = 1

#: Cap on the number of blobs kept in process memory (each N=10k network
#: pickles to a few MB; the in-memory tier exists so a sequential sweep
#: over one base network never touches the disk twice).
MEMORY_LIMIT = 64


class SnapshotStats:
    """Counters for cache behaviour (reset by :func:`configure`)."""

    __slots__ = ("hits", "misses", "stale", "corrupt", "stores", "coalesced")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.corrupt = 0
        self.stores = 0
        self.coalesced = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


stats = SnapshotStats()

_enabled = False
_root: Optional[Path] = None
_memory: Dict[str, bytes] = {}

_MISS = object()


def default_root() -> Path:
    """Where snapshots live on disk unless overridden.

    ``REPRO_SNAPSHOT_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro/
    snapshots`` (``~/.cache`` when XDG is unset).
    """
    env = os.environ.get("REPRO_SNAPSHOT_DIR")
    if env:
        return Path(env)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / "snapshots"


def configure(
    enabled: bool = True, root: Optional[os.PathLike] = None
) -> None:
    """Turn the cache on or off for this process.

    ``root=None`` with ``enabled=True`` selects :func:`default_root`;
    the ``REPRO_SNAPSHOT_CACHE=0`` kill switch overrides ``enabled``.
    Resets the in-memory tier and the counters.
    """
    global _enabled, _root
    if os.environ.get("REPRO_SNAPSHOT_CACHE", "").strip() == "0":
        enabled = False
    _enabled = bool(enabled)
    _root = Path(root) if root is not None else (
        default_root() if _enabled else None
    )
    _memory.clear()
    stats.reset()


def enabled() -> bool:
    return _enabled


def exported_config() -> Dict[str, Optional[str]]:
    """The settings a pool worker needs to mirror the parent's cache."""
    return {"enabled": _enabled, "root": str(_root) if _root else None}


def apply_config(config: Optional[Mapping[str, Any]]) -> None:
    """Adopt a parent process's exported settings (worker initializer)."""
    global _enabled, _root
    if config is None:
        return
    _enabled = bool(config.get("enabled"))
    _root = Path(config["root"]) if config.get("root") else None
    _memory.clear()
    stats.reset()


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def describe(obj: Any) -> Any:
    """A canonical, order-stable rendering of a build input.

    Handles primitives, sequences, mappings, sets and (recursively)
    dataclasses such as ``BatonConfig``.  Anything else must be reduced
    to those by the caller — an unrecognized object raises rather than
    silently keying on ``repr`` (which could embed a memory address and
    defeat the cache, or worse, collide).
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, describe(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, Mapping):
        return tuple(sorted((str(k), describe(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple)):
        return tuple(describe(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return tuple(sorted(repr(describe(item)) for item in obj))
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r} for the snapshot "
        "cache; reduce it to primitives/dataclasses first"
    )


def header(parts: Mapping[str, Any]) -> str:
    """The canonical key text embedded in (and verified against) payloads."""
    return repr(("repro-snapshot", SNAPSHOT_SCHEMA, describe(parts)))


def fingerprint(parts: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical key text — the snapshot's filename stem."""
    return hashlib.sha256(header(parts).encode("utf-8")).hexdigest()


def snapshot_path(parts: Mapping[str, Any]) -> Optional[Path]:
    """Where a snapshot for ``parts`` would live on disk (None if no root)."""
    if _root is None:
        return None
    return _root / f"{fingerprint(parts)}.snap"


# ---------------------------------------------------------------------------
# Cached builds
# ---------------------------------------------------------------------------


def cached(parts: Mapping[str, Any], builder: Callable[[], Any]) -> Any:
    """``builder()``, memoized on the fingerprint of ``parts``.

    A hit deserializes a fresh copy from the stored bytes; a miss (or a
    stale/corrupt payload) runs the builder and stores the result.  An
    unpicklable build result is returned uncached.

    Concurrent misses on the same key are **single-flight**: a miss
    takes a per-key ``flock`` before building, so when a cold pool fans
    identical cells out, one worker builds while its siblings block on
    the lock and then restore the freshly stored snapshot (counted as
    ``coalesced`` hits) — the cold-start stampede never duplicates a
    build.
    """
    if not _enabled:
        return builder()
    head = header(parts)
    key = hashlib.sha256(head.encode("utf-8")).hexdigest()
    blob = _memory.get(key)
    disk_file_seen = False
    if blob is None:
        blob = _read_disk(key)
        disk_file_seen = blob is not None
    if blob is not None:
        value = _decode(blob, head)
        if value is not _MISS:
            stats.hits += 1
            if disk_file_seen and len(_memory) < MEMORY_LIMIT:
                _memory[key] = blob
            return value
    lock_handle = _lock(key)
    try:
        if lock_handle is not None and not disk_file_seen:
            # The file was absent before we queued for the lock; a
            # sibling worker may have built and stored it while we
            # waited.  Serve their snapshot instead of duplicating the
            # build.  (A file that *was* present but decoded corrupt or
            # stale is not re-read — it needs the rebuild below.)
            blob = _read_disk(key)
            if blob is not None:
                value = _decode(blob, head)
                if value is not _MISS:
                    stats.hits += 1
                    stats.coalesced += 1
                    if len(_memory) < MEMORY_LIMIT:
                        _memory[key] = blob
                    return value
        stats.misses += 1
        value = builder()
        _store(key, head, value)
        return value
    finally:
        _unlock(lock_handle)


def _read_disk(key: str) -> Optional[bytes]:
    if _root is None:
        return None
    try:
        return (_root / f"{key}.snap").read_bytes()
    except OSError:
        return None


def _lock(key: str):
    """A blocking exclusive per-key build lock (None when unavailable)."""
    if _root is None or fcntl is None:
        return None
    try:
        _root.mkdir(parents=True, exist_ok=True)
        handle = open(_root / f"{key}.lock", "a+b")
    except OSError:
        return None
    try:
        fcntl.flock(handle, fcntl.LOCK_EX)
    except OSError:
        handle.close()
        return None
    return handle


def _unlock(handle) -> None:
    if handle is None:
        return
    try:
        fcntl.flock(handle, fcntl.LOCK_UN)
    except OSError:
        pass
    handle.close()


def _decode(blob: bytes, head: str) -> Any:
    try:
        payload = pickle.loads(blob)
    except Exception:
        # Truncated write, disk rot, or a class that moved: fall back to
        # a clean build (the store below overwrites the bad file).
        stats.corrupt += 1
        return _MISS
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != SNAPSHOT_SCHEMA
        or payload.get("header") != head
    ):
        stats.stale += 1
        return _MISS
    return payload.get("value", _MISS)


def _store(key: str, head: str, value: Any) -> None:
    try:
        blob = pickle.dumps(
            {"schema": SNAPSHOT_SCHEMA, "header": head, "value": value},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    except Exception:
        return  # not snapshotable; the build result is still valid
    if len(_memory) < MEMORY_LIMIT:
        _memory[key] = blob
    if _root is None:
        return
    try:
        _root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=_root, suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, _root / f"{key}.snap")
        stats.stores += 1
    except OSError:
        pass  # read-only or full disk: the in-memory tier still works
