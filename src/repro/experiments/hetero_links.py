"""Heterogeneous links: the three overlays when hops stop being equal.

The paper's evaluation counts hops as if every link cost the same, which
flattens exactly the question BATON's sideways tables are built for: a hop
that skips across subtrees is worth more when the alternative path crosses
an ocean.  This experiment places every peer in a clustered multi-region
WAN (:class:`~repro.sim.topology.ClusteredTopology`) and sweeps the
inter-region base delay, driving identical concurrent query workloads
against BATON, Chord and the multiway tree — the measurement the old
scalar latency model was structurally unable to produce.

Expected shape: every overlay's query latency grows with inter-region
cost, scaled by how many links its walks cross.  BATON and Chord route in
O(log N) hops, so their p50 grows gently; the multiway tree's link-by-link
walks cross far more (and therefore more inter-region) links, so its
curves climb fastest and its tail detaches first.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import overlays
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_loaded,
    default_scale,
    loaded_keys,
    mean,
)
from repro.sim.topology import ClusteredTopology
from repro.util.rng import derive_seed
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "latency grows with inter-region cost for every overlay, scaled by the "
    "number of links a walk crosses: BATON and Chord (O(log N) hops) climb "
    "gently, the multiway tree's link-by-link walks climb fastest; BATON "
    "answers ranges along the adjacent chain so it keeps complete answers "
    "while paying tree-depth hops only once; latency stretch (op transit "
    "over the direct entry->owner link) exposes the same ordering "
    "independently of the raw delay scale — topology-blind routing pays "
    "the same multiple however expensive the links get"
)

INTER_DELAYS = (1.0, 2.0, 5.0, 10.0, 20.0)
QUERY_RATE = 8.0
REGIONS = 4
INTRA_DELAY = 1.0


def run(
    scale: Optional[ExperimentScale] = None,
    inter_delays: tuple[float, ...] = INTER_DELAYS,
    names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
) -> ExperimentResult:
    """One row per (overlay, inter-region delay), identical workloads."""
    scale = scale or default_scale()
    names = list(names) if names is not None else overlays.available()
    if n_peers is None:
        n_peers = scale.sizes[0]
    duration = scale.n_queries / QUERY_RATE
    result = ExperimentResult(
        figure="Hetero links",
        title=(
            f"Query latency vs inter-region link cost "
            f"(clustered WAN, {REGIONS} regions, N={n_peers}, "
            f"intra delay {INTRA_DELAY})"
        ),
        columns=[
            "overlay",
            "inter_delay",
            "queries",
            "success",
            "p50",
            "p99",
            "transit_p99",
            "stretch_p50",
            "stretch_p99",
            "msgs_per_query",
        ],
        expectation=EXPECTATION,
    )
    for name in names:
        for inter_delay in inter_delays:
            successes, p50s, p99s, transit_p99s, msgs = [], [], [], [], []
            stretch_p50s, stretch_p99s = [], []
            queries = 0
            for seed in scale.seeds:
                report = _one_run(
                    name, n_peers, seed, scale.data_per_node, inter_delay, duration
                )
                successes.append(report.query_success_rate)
                p50s.append(report.query_latency_p50)
                p99s.append(report.query_latency_p99)
                transit_p99s.append(report.query_transit_p99)
                stretch_p50s.append(report.latency_stretch_p50)
                stretch_p99s.append(report.latency_stretch_p99)
                msgs.append(report.messages_per_query)
                queries += report.query_total
            result.add_row(
                overlay=name,
                inter_delay=inter_delay,
                queries=queries,
                success=mean(successes),
                p50=mean(p50s),
                p99=mean(p99s),
                transit_p99=mean(transit_p99s),
                stretch_p50=mean(stretch_p50s),
                stretch_p99=mean(stretch_p99s),
                msgs_per_query=mean(msgs),
            )
    return result


def _one_run(
    overlay: str,
    n_peers: int,
    seed: int,
    data_per_node: int,
    inter_delay: float,
    duration: float,
):
    """One seeded run on a clustered WAN; query-only (the latency signal)."""
    net = build_loaded(overlay, n_peers, seed, data_per_node)
    topology = ClusteredTopology(
        derive_seed(seed, "hetero-links"),
        regions=REGIONS,
        intra_delay=INTRA_DELAY,
        inter_delay=inter_delay,
        jitter=0.2,
        asymmetry=0.1,
    )
    anet = overlays.get(overlay).wrap(
        net, topology=topology, record_events=False, retain_ops=False
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=0.0,
        query_rate=QUERY_RATE,
        range_fraction=0.2,
    )
    return run_concurrent_workload(
        anet, keys, config, seed=derive_seed(seed, "hetero-driver")
    )


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
