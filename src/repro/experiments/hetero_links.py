"""Heterogeneous links: the three overlays when hops stop being equal.

The paper's evaluation counts hops as if every link cost the same, which
flattens exactly the question BATON's sideways tables are built for: a hop
that skips across subtrees is worth more when the alternative path crosses
an ocean.  This experiment places every peer in a clustered multi-region
WAN (:class:`~repro.sim.topology.ClusteredTopology`) and sweeps the
inter-region base delay, driving identical concurrent query workloads
against BATON, Chord and the multiway tree — the measurement the old
scalar latency model was structurally unable to produce.

Expected shape: every overlay's query latency grows with inter-region
cost, scaled by how many links its walks cross.  BATON and Chord route in
O(log N) hops, so their p50 grows gently; the multiway tree's link-by-link
walks cross far more (and therefore more inter-region) links, so its
curves climb fastest and its tail detaches first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import overlays
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_loaded,
    default_scale,
    loaded_keys,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.sim.topology import ClusteredTopology
from repro.util.rng import derive_seed
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "latency grows with inter-region cost for every overlay, scaled by the "
    "number of links a walk crosses: BATON and Chord (O(log N) hops) climb "
    "gently, the multiway tree's link-by-link walks climb fastest; BATON "
    "answers ranges along the adjacent chain so it keeps complete answers "
    "while paying tree-depth hops only once; latency stretch (op transit "
    "over the direct entry->owner link) exposes the same ordering "
    "independently of the raw delay scale — topology-blind routing pays "
    "the same multiple however expensive the links get"
)

INTER_DELAYS = (1.0, 2.0, 5.0, 10.0, 20.0)
QUERY_RATE = 8.0
REGIONS = 4
INTRA_DELAY = 1.0
#: Session gateways for the ``cached=True`` grid (see below).
GATEWAYS = 8


def cells(
    scale: ExperimentScale,
    inter_delays: tuple[float, ...] = INTER_DELAYS,
    names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
    cached: bool = False,
) -> List[Cell]:
    names = list(names) if names is not None else overlays.available()
    if cached:
        names = names + ["baton+cache"]
    if n_peers is None:
        n_peers = scale.sizes[0]
    duration = scale.n_queries / QUERY_RATE
    return [
        cell(
            grid_cell,
            group="hetero",
            overlay=name,
            n_peers=n_peers,
            seed=seed,
            data_per_node=scale.data_per_node,
            inter_delay=inter_delay,
            duration=duration,
            gateways=GATEWAYS if cached else 0,
        )
        for name in names
        for inter_delay in inter_delays
        for seed in scale.seeds
    ]


def assemble(
    scale: ExperimentScale,
    outputs: List[Dict[str, float]],
    inter_delays: tuple[float, ...] = INTER_DELAYS,
    names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
    cached: bool = False,
) -> ExperimentResult:
    """One row per (overlay, inter-region delay), identical workloads.

    ``cached=True`` adds a ``baton+cache`` variant (hot-range route cache,
    locality extension) and pins every variant's query entry points to
    the same ``GATEWAYS`` fixed session peers — the regime where a
    per-peer cache can warm up — so the added rows stay comparable to
    their neighbours.  The default grid keeps the historical uniform
    entry draw.
    """
    names = list(names) if names is not None else overlays.available()
    if cached:
        names = names + ["baton+cache"]
    if n_peers is None:
        n_peers = scale.sizes[0]
    result = ExperimentResult(
        figure="Hetero links",
        title=(
            f"Query latency vs inter-region link cost "
            f"(clustered WAN, {REGIONS} regions, N={n_peers}, "
            f"intra delay {INTRA_DELAY})"
        ),
        columns=[
            "overlay",
            "inter_delay",
            "queries",
            "success",
            "p50",
            "p99",
            "transit_p99",
            "stretch_p50",
            "stretch_p99",
            "hit_rate",
            "msgs_per_query",
        ],
        expectation=EXPECTATION,
    )
    if cached:
        result.notes.append(
            f"cached grid: every variant's queries enter through the same "
            f"{GATEWAYS} fixed gateway peers (the cache's session regime); "
            "baton+cache adds the hot-range route cache on top"
        )
    per_point = len(scale.seeds)
    index = 0
    for name in names:
        for inter_delay in inter_delays:
            group = outputs[index : index + per_point]
            index += per_point
            result.add_row(
                overlay=name,
                inter_delay=inter_delay,
                queries=sum(int(out["queries"]) for out in group),
                success=mean([out["success"] for out in group]),
                p50=mean([out["p50"] for out in group]),
                p99=mean([out["p99"] for out in group]),
                transit_p99=mean([out["transit_p99"] for out in group]),
                stretch_p50=mean([out["stretch_p50"] for out in group]),
                stretch_p99=mean([out["stretch_p99"] for out in group]),
                hit_rate=mean([out["hit_rate"] for out in group]),
                msgs_per_query=mean([out["msgs_per_query"] for out in group]),
            )
    return result


def run(
    scale: Optional[ExperimentScale] = None,
    inter_delays: tuple[float, ...] = INTER_DELAYS,
    names: Optional[Sequence[str]] = None,
    n_peers: Optional[int] = None,
    cached: bool = False,
    jobs: int = 1,
) -> ExperimentResult:
    scale = scale or default_scale()
    outputs = run_cells(
        cells(scale, inter_delays, names, n_peers, cached), jobs=jobs
    )
    return assemble(scale, outputs, inter_delays, names, n_peers, cached)


def grid_cell(
    overlay: str,
    n_peers: int,
    seed: int,
    data_per_node: int,
    inter_delay: float,
    duration: float,
    gateways: int = 0,
) -> Dict[str, float]:
    """One seeded run on a clustered WAN; query-only (the latency signal).

    ``overlay`` may carry a ``+cache`` suffix (the locality hot-range
    route cache; BATON only) — the underlying overlay and workload are
    otherwise identical to the plain variant's.
    """
    locality = None
    if overlay.endswith("+cache"):
        overlay = overlay[: -len("+cache")]
        from repro.core.cache import DEFAULT_CACHE_SIZE
        from repro.core.network import LocalityConfig

        locality = LocalityConfig(cache_size=DEFAULT_CACHE_SIZE)
    net = build_loaded(overlay, n_peers, seed, data_per_node, locality=locality)
    topology = ClusteredTopology(
        derive_seed(seed, "hetero-links"),
        regions=REGIONS,
        intra_delay=INTRA_DELAY,
        inter_delay=inter_delay,
        jitter=0.2,
        asymmetry=0.1,
    )
    anet = overlays.get(overlay).wrap(
        net, topology=topology, record_events=False, retain_ops=False
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=0.0,
        query_rate=QUERY_RATE,
        range_fraction=0.2,
        client_gateways=gateways,
    )
    report = run_concurrent_workload(
        anet, keys, config, seed=derive_seed(seed, "hetero-driver")
    )
    return {
        "queries": report.query_total,
        "success": report.query_success_rate,
        "p50": report.query_latency_p50,
        "p99": report.query_latency_p99,
        "transit_p99": report.query_transit_p99,
        "stretch_p50": report.latency_stretch_p50,
        "stretch_p99": report.latency_stretch_p99,
        "hit_rate": report.cache_hit_rate,
        "msgs_per_query": report.messages_per_query,
    }


def main() -> ExperimentResult:
    result = run(cached=True)
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
