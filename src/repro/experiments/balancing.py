"""Shared load-balancing measurement for Figures 8(g) and 8(h).

One routed-insert stream per (distribution, seed) with §IV-D balancing
enabled; 8(g) reads the message overhead, 8(h) the shift-size histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments.harness import ExperimentScale, build_baton
from repro.experiments.parallel import Cell, cell, run_cells
from repro.workloads.generators import UniformKeys, ZipfianKeys


@dataclass
class BalancingRun:
    """Everything one insert stream produced."""

    distribution: str
    n_peers: int
    seed: int
    inserts: int
    routing_messages: int = 0
    balance_messages: int = 0
    balance_events: int = 0
    shift_sizes: List[int] = field(default_factory=list)
    #: cumulative balance messages sampled every ``sample_every`` inserts
    timeline: List[tuple[int, int]] = field(default_factory=list)


def balancing_cell(
    distribution: str, n_peers: int, seed: int, inserts_per_node: int
) -> BalancingRun:
    """One routed insert stream: (distribution, seed) with balancing on."""
    n_inserts = n_peers * inserts_per_node
    sample_every = max(1, n_inserts // 20)
    # Capacity sized so a perfectly balanced network never triggers:
    # 4x the fair share of the stream.
    capacity = max(16, 4 * inserts_per_node)
    net = build_baton(
        n_peers, seed, data_per_node=0, balance_enabled=True, capacity=capacity
    )
    if distribution == "uniform":
        gen = UniformKeys(seed=seed + 17)
    else:
        gen = ZipfianKeys(theta=1.0, seed=seed + 17)
    run = BalancingRun(
        distribution=distribution,
        n_peers=n_peers,
        seed=seed,
        inserts=n_inserts,
    )
    for i in range(n_inserts):
        outcome = net.insert(gen.draw())
        run.routing_messages += outcome.trace.total
        if outcome.balance_trace is not None:
            run.balance_messages += outcome.balance_trace.total
            run.balance_events += 1
        if (i + 1) % sample_every == 0:
            run.timeline.append((i + 1, run.balance_messages))
    run.shift_sizes = list(net.stats.restructure_shift_sizes)
    return run


def cells(
    scale: ExperimentScale,
    distributions: tuple[str, ...] = ("uniform", "zipf"),
    inserts_per_node: int = 40,
) -> List[Cell]:
    """The balancing grid as schedulable cells."""
    return [
        cell(
            balancing_cell,
            group="balancing",
            distribution=distribution,
            n_peers=scale.sizes[0],
            seed=seed,
            inserts_per_node=inserts_per_node,
        )
        for distribution in distributions
        for seed in scale.seeds
    ]


def run_balancing(
    scale: ExperimentScale,
    distributions: tuple[str, ...] = ("uniform", "zipf"),
    inserts_per_node: int = 40,
    jobs: int = 1,
) -> List[BalancingRun]:
    """Route a full insert stream through BATON with balancing on."""
    return run_cells(
        cells(scale, distributions, inserts_per_node), jobs=jobs
    )


def shift_histogram(runs: List[BalancingRun]) -> Dict[int, int]:
    """Histogram of restructuring shift sizes across runs."""
    histogram: Dict[int, int] = {}
    for run in runs:
        for size in run.shift_sizes:
            histogram[size] = histogram.get(size, 0) + 1
    return histogram
