"""Figure 8(d): messages per exact-match query.

Paper's reading: BATON answers in O(log N) hops, marginally above Chord
(tree height carries the 1.44 balance factor) and far below the multiway
tree — which pays long horizontal walks for its minimal routing state.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    build_chord,
    build_multiway,
    default_scale,
    loaded_keys,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.workloads.generators import exact_queries

EXPECTATION = (
    "BATON ≈ Chord (slightly above, 1.44 factor), both ≪ multiway; all "
    "logarithmic in N; every query answered correctly"
)

SYSTEMS = ("baton", "chord", "multiway")


def grid_cell(
    system: str, n_peers: int, seed: int, data_per_node: int, n_queries: int
) -> Dict[str, object]:
    """One (system, size, seed) point: exact queries over loaded keys."""
    builders = {
        "baton": build_baton,
        "chord": build_chord,
        "multiway": build_multiway,
    }
    loaded = loaded_keys(n_peers, data_per_node, seed)
    net = builders[system](n_peers, seed, data_per_node)
    costs: List[int] = []
    hits = 0
    total = 0
    for key in exact_queries(loaded, n_queries, seed=seed + 31):
        search = net.search_exact(key)
        costs.append(search.trace.total)
        hits += int(search.found)
        total += 1
    return {"costs": costs, "hits": hits, "total": total}


def cells(scale: ExperimentScale) -> List[Cell]:
    return [
        cell(
            grid_cell,
            group="fig8d",
            system=system,
            n_peers=n_peers,
            seed=seed,
            data_per_node=scale.data_per_node,
            n_queries=scale.n_queries,
        )
        for system in SYSTEMS
        for n_peers in scale.sizes
        for seed in scale.seeds
    ]


def assemble(
    scale: ExperimentScale, outputs: List[Dict[str, object]]
) -> ExperimentResult:
    result = ExperimentResult(
        figure="Fig 8d",
        title="Exact match query (avg messages)",
        columns=["system", "N", "messages", "hit_rate"],
        expectation=EXPECTATION,
    )
    per_point = len(scale.seeds)
    index = 0
    for system in SYSTEMS:
        for n_peers in scale.sizes:
            group = outputs[index : index + per_point]
            index += per_point
            hits = sum(out["hits"] for out in group)
            total = sum(out["total"] for out in group)
            result.add_row(
                system=system,
                N=n_peers,
                messages=mean([c for out in group for c in out["costs"]]),
                hit_rate=hits / total if total else 0.0,
            )
    return result


def run(
    scale: Optional[ExperimentScale] = None, jobs: int = 1
) -> ExperimentResult:
    scale = scale or default_scale()
    return assemble(scale, run_cells(cells(scale), jobs=jobs))


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
