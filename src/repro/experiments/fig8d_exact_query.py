"""Figure 8(d): messages per exact-match query.

Paper's reading: BATON answers in O(log N) hops, marginally above Chord
(tree height carries the 1.44 balance factor) and far below the multiway
tree — which pays long horizontal walks for its minimal routing state.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    build_chord,
    build_multiway,
    default_scale,
    loaded_keys,
    mean,
)
from repro.workloads.generators import exact_queries, uniform_keys

EXPECTATION = (
    "BATON ≈ Chord (slightly above, 1.44 factor), both ≪ multiway; all "
    "logarithmic in N; every query answered correctly"
)


def run(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        figure="Fig 8d",
        title="Exact match query (avg messages)",
        columns=["system", "N", "messages", "hit_rate"],
        expectation=EXPECTATION,
    )
    builders = {
        "baton": build_baton,
        "chord": build_chord,
        "multiway": build_multiway,
    }
    for system, build in builders.items():
        for n_peers in scale.sizes:
            costs = []
            hits = 0
            total = 0
            for seed in scale.seeds:
                loaded = loaded_keys(n_peers, scale.data_per_node, seed)
                net = build(n_peers, seed, scale.data_per_node)
                for key in exact_queries(loaded, scale.n_queries, seed=seed + 31):
                    search = net.search_exact(key)
                    costs.append(search.trace.total)
                    hits += int(search.found)
                    total += 1
            result.add_row(
                system=system,
                N=n_peers,
                messages=mean(costs),
                hit_rate=hits / total if total else 0.0,
            )
    return result


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
