"""Figure 8(e): messages per range query.

Paper's reading: BATON finds the first intersecting node in O(log N) hops
and then pays O(1) per additional covered node — O(log N + X) total.  The
multiway tree also supports ranges but spends more on both phases.  Chord
is absent from the paper's panel because hashing destroys order; we include
its only honest option — a full ring walk — as the O(N) cliff that
motivates the whole line of work.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    build_chord,
    build_multiway,
    default_scale,
    loaded_keys,
    mean,
)
from repro.workloads.generators import range_queries, uniform_keys

EXPECTATION = (
    "BATON ≈ O(log N + X) lowest; multiway above BATON; Chord (ring walk) "
    "= O(N), off the chart — the paper omits it for this reason"
)


def run(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        figure="Fig 8e",
        title="Range query (avg messages)",
        columns=["system", "N", "messages", "answer_nodes"],
        expectation=EXPECTATION,
    )
    builders = {
        "baton": build_baton,
        "multiway": build_multiway,
        "chord_ring_walk": build_chord,
    }
    for system, build in builders.items():
        for n_peers in scale.sizes:
            costs = []
            answer_nodes = []
            for seed in scale.seeds:
                loaded = loaded_keys(n_peers, scale.data_per_node, seed)
                net = build(n_peers, seed, scale.data_per_node)
                queries = range_queries(
                    scale.n_queries, selectivity=0.002, seed=seed + 53
                )
                for low, high in queries:
                    answer = net.search_range(low, high)
                    costs.append(answer.trace.total)
                    answer_nodes.append(
                        answer.nodes_visited
                        if hasattr(answer, "nodes_visited")
                        else len(answer.owners)
                    )
            result.add_row(
                system=system,
                N=n_peers,
                messages=mean(costs),
                answer_nodes=mean(answer_nodes),
            )
    return result


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
