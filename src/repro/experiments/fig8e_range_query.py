"""Figure 8(e): messages per range query.

Paper's reading: BATON finds the first intersecting node in O(log N) hops
and then pays O(1) per additional covered node — O(log N + X) total.  The
multiway tree also supports ranges but spends more on both phases.  Chord
is absent from the paper's panel because hashing destroys order; we include
its only honest option — a full ring walk — as the O(N) cliff that
motivates the whole line of work.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    build_chord,
    build_multiway,
    default_scale,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.workloads.generators import range_queries

EXPECTATION = (
    "BATON ≈ O(log N + X) lowest; multiway above BATON; Chord (ring walk) "
    "= O(N), off the chart — the paper omits it for this reason"
)

SYSTEMS = ("baton", "multiway", "chord_ring_walk")


def grid_cell(
    system: str, n_peers: int, seed: int, data_per_node: int, n_queries: int
) -> Dict[str, List[float]]:
    """One (system, size, seed) point: range queries over the loaded net."""
    builders = {
        "baton": build_baton,
        "multiway": build_multiway,
        "chord_ring_walk": build_chord,
    }
    net = builders[system](n_peers, seed, data_per_node)
    costs: List[int] = []
    answer_nodes: List[int] = []
    queries = range_queries(n_queries, selectivity=0.002, seed=seed + 53)
    for low, high in queries:
        answer = net.search_range(low, high)
        costs.append(answer.trace.total)
        answer_nodes.append(
            answer.nodes_visited
            if hasattr(answer, "nodes_visited")
            else len(answer.owners)
        )
    return {"costs": costs, "answer_nodes": answer_nodes}


def cells(scale: ExperimentScale) -> List[Cell]:
    return [
        cell(
            grid_cell,
            group="fig8e",
            system=system,
            n_peers=n_peers,
            seed=seed,
            data_per_node=scale.data_per_node,
            n_queries=scale.n_queries,
        )
        for system in SYSTEMS
        for n_peers in scale.sizes
        for seed in scale.seeds
    ]


def assemble(
    scale: ExperimentScale, outputs: List[Dict[str, List[float]]]
) -> ExperimentResult:
    result = ExperimentResult(
        figure="Fig 8e",
        title="Range query (avg messages)",
        columns=["system", "N", "messages", "answer_nodes"],
        expectation=EXPECTATION,
    )
    per_point = len(scale.seeds)
    index = 0
    for system in SYSTEMS:
        for n_peers in scale.sizes:
            group = outputs[index : index + per_point]
            index += per_point
            result.add_row(
                system=system,
                N=n_peers,
                messages=mean([c for out in group for c in out["costs"]]),
                answer_nodes=mean(
                    [c for out in group for c in out["answer_nodes"]]
                ),
            )
    return result


def run(
    scale: Optional[ExperimentScale] = None, jobs: int = 1
) -> ExperimentResult:
    scale = scale or default_scale()
    return assemble(scale, run_cells(cells(scale), jobs=jobs))


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
